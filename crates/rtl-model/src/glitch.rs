//! Combinational hazard (glitch) modeling.
//!
//! A gate-level simulation sees wires settle through intermediate values:
//! when the inputs of the address decoder or a data multiplexer change,
//! unequal path delays make some output bits toggle momentarily before the
//! cone settles. Those hazard transitions dissipate real energy that a
//! cycle-boundary view (the layer-1 TLM energy model) cannot observe —
//! they are the main reason layer 1 *under*estimates against the
//! gate-level reference (Table 2).
//!
//! The model: when a wire group is about to change, each *stable* bit
//! (same value before and after the cycle) may glitch with probability
//! `rate × changed_bits / width` — hazards are caused by activity on the
//! cone's inputs, so more switching means more glitching. The draw is a
//! deterministic hash of (salt, cycle, old, new), keeping runs exactly
//! reproducible.

/// Configuration of the hazard model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlitchConfig {
    /// Master enable; disabled means an ideal zero-hazard netlist.
    pub enabled: bool,
    /// Base glitch probability for a stable bit when *every* other bit in
    /// the group changes (scaled down by actual activity).
    pub rate: f64,
    /// Salt mixed into the hash (distinct per wire group).
    pub salt: u64,
}

impl GlitchConfig {
    /// The default hazard intensity calibrated so the layer-1 model's
    /// cycle-boundary transition count misses high-single-digit percent of
    /// gate-level energy, as in the paper's Table 2.
    pub const DEFAULT_RATE: f64 = 0.08;

    /// Enabled, default rate.
    pub fn on(salt: u64) -> Self {
        GlitchConfig {
            enabled: true,
            rate: Self::DEFAULT_RATE,
            salt,
        }
    }

    /// Disabled (ideal netlist).
    pub fn off() -> Self {
        GlitchConfig {
            enabled: false,
            rate: 0.0,
            salt: 0,
        }
    }

    /// Computes the hazard mask for a group transition `old → new` in
    /// `cycle`: a subset of the bits that are stable across the transition
    /// which momentarily toggle. Returns 0 when disabled or nothing
    /// changes.
    pub fn hazard_mask(&self, cycle: u64, old: u64, new: u64, width: u32) -> u64 {
        if !self.enabled {
            return 0;
        }
        let changed = old ^ new;
        if changed == 0 {
            return 0;
        }
        let activity = changed.count_ones() as f64 / width as f64;
        let p = self.rate * activity;
        // Threshold for a 16-bit per-bit hash draw.
        let threshold = (p * 65536.0) as u64;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let stable = !changed & mask;
        let mut hazards = 0u64;
        let mut bits = stable;
        while bits != 0 {
            let b = bits.trailing_zeros() as u64;
            let h = splitmix64(
                self.salt
                    ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ old.rotate_left(17)
                    ^ new.rotate_left(31)
                    ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9),
            );
            if (h & 0xFFFF) < threshold {
                hazards |= 1 << b;
            }
            bits &= bits - 1;
        }
        hazards
    }
}

impl Default for GlitchConfig {
    fn default() -> Self {
        GlitchConfig::on(0x917c_4e11)
    }
}

/// SplitMix64 finalizer — a cheap, well-mixed deterministic hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_never_glitches() {
        let g = GlitchConfig::off();
        assert_eq!(g.hazard_mask(1, 0, u64::MAX, 64), 0);
    }

    #[test]
    fn no_input_change_no_hazard() {
        let g = GlitchConfig::on(7);
        assert_eq!(g.hazard_mask(5, 0xABCD, 0xABCD, 32), 0);
    }

    #[test]
    fn hazards_hit_only_stable_bits() {
        let g = GlitchConfig {
            enabled: true,
            rate: 1.0, // maximum intensity for the test
            salt: 3,
        };
        for cycle in 0..100 {
            let old = 0x0F0F_0F0F_u64;
            let new = 0xFF0F_0F00_u64;
            let m = g.hazard_mask(cycle, old, new, 32);
            assert_eq!(m & (old ^ new), 0, "hazard on a changing bit");
        }
    }

    #[test]
    fn hazard_rate_tracks_activity() {
        let g = GlitchConfig {
            enabled: true,
            rate: 0.5,
            salt: 11,
        };
        let mut low_activity = 0u32;
        let mut high_activity = 0u32;
        for cycle in 0..2000 {
            low_activity += g.hazard_mask(cycle, 0, 0b1, 32).count_ones();
            high_activity += g.hazard_mask(cycle, 0, 0x0000_FFFF, 32).count_ones();
        }
        assert!(
            high_activity > 4 * low_activity,
            "high {high_activity} vs low {low_activity}"
        );
    }

    #[test]
    fn deterministic_per_inputs() {
        let g = GlitchConfig::default();
        let a = g.hazard_mask(42, 0x1234, 0x4321, 36);
        let b = g.hazard_mask(42, 0x1234, 0x4321, 36);
        assert_eq!(a, b);
    }

    #[test]
    fn nonzero_at_default_rate_over_many_cycles() {
        let g = GlitchConfig::default();
        let total: u32 = (0..5000)
            .map(|c| {
                g.hazard_mask(c, 0xAAAA_AAAA, 0x5555_5555 ^ (c & 0xFF), 32)
                    .count_ones()
            })
            .sum();
        assert!(total > 0);
    }
}
