//! Slave-side models for the RTL reference.

use hierbus_ec::{Address, SlaveConfig};

/// A slave as seen by the cycle-true bus: static configuration (range,
/// wait states, rights) plus word-level storage access. Wait-state
/// insertion itself is performed by the bus channels from
/// [`SlaveConfig::waits`], which is how the paper's layer-1 model drives
/// its timing too.
pub trait RtlSlaveModel {
    /// The slave control interface: address range, wait states, rights.
    fn config(&self) -> SlaveConfig;

    /// Opt-in downcasting hook so post-run analyses (e.g. memory
    /// equality checks across model layers) can reach the concrete
    /// model. Models that support it override this with `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Reads the word containing `addr` (the bus presents full words; the
    /// master extracts lanes per the merge pattern).
    fn read_word(&mut self, addr: Address) -> u32;

    /// Writes `data` to the word containing `addr`, honouring the byte
    /// enables `ben` (bit *n* = byte lane *n*).
    fn write_word(&mut self, addr: Address, data: u32, ben: u8);
}

/// A sparse word-addressed memory with a deterministic fill pattern for
/// never-written words, so reads of "uninitialised" locations still
/// produce repeatable, non-trivial data-bus activity.
#[derive(Debug, Clone)]
pub struct SimpleMem {
    config: SlaveConfig,
    words: hierbus_ec::FastIdMap<u64, u32>,
}

impl SimpleMem {
    /// Creates a memory slave with the given configuration.
    pub fn new(config: SlaveConfig) -> Self {
        SimpleMem {
            config,
            words: hierbus_ec::FastIdMap::default(),
        }
    }

    /// The deterministic background pattern of a word never written.
    pub fn fill_pattern(addr: Address) -> u32 {
        (addr.word_offset() as u32).wrapping_mul(0x9E37_79B9) ^ 0x5A5A_5A5A
    }

    /// Pre-loads consecutive words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word aligned.
    pub fn load(&mut self, addr: Address, words: &[u32]) {
        assert!(addr.is_aligned(4), "load base {addr} must be word aligned");
        for (i, &w) in words.iter().enumerate() {
            self.words.insert(addr.word_offset() + i as u64, w);
        }
    }

    /// Number of explicitly written words.
    pub fn written_words(&self) -> usize {
        self.words.len()
    }

    /// Reads back a word without bus semantics (test/inspection aid).
    pub fn peek(&self, addr: Address) -> u32 {
        *self
            .words
            .get(&addr.word_offset())
            .unwrap_or(&Self::fill_pattern(addr))
    }

    /// All explicitly written words as `(word_offset, value)`, sorted —
    /// the committed-memory fingerprint for cross-layer equality checks.
    pub fn snapshot(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.words.iter().map(|(&k, &w)| (k, w)).collect();
        v.sort_unstable();
        v
    }
}

impl RtlSlaveModel for SimpleMem {
    fn config(&self) -> SlaveConfig {
        self.config
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn read_word(&mut self, addr: Address) -> u32 {
        *self
            .words
            .get(&addr.word_offset())
            .unwrap_or(&Self::fill_pattern(addr))
    }

    fn write_word(&mut self, addr: Address, data: u32, ben: u8) {
        let key = addr.word_offset();
        let old = *self.words.get(&key).unwrap_or(&Self::fill_pattern(addr));
        let mut merged = old;
        for lane in 0..4 {
            if ben & (1 << lane) != 0 {
                let mask = 0xFFu32 << (8 * lane);
                merged = (merged & !mask) | (data & mask);
            }
        }
        self.words.insert(key, merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::{AccessRights, AddressRange, WaitProfile};

    fn mem() -> SimpleMem {
        SimpleMem::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        ))
    }

    #[test]
    fn unwritten_words_use_fill_pattern() {
        let mut m = mem();
        let a = Address::new(0x40);
        assert_eq!(m.read_word(a), SimpleMem::fill_pattern(a));
        // Two different addresses give different patterns.
        assert_ne!(m.read_word(a), m.read_word(Address::new(0x44)));
    }

    #[test]
    fn full_word_write_read_roundtrip() {
        let mut m = mem();
        m.write_word(Address::new(0x10), 0xDEAD_BEEF, 0b1111);
        assert_eq!(m.read_word(Address::new(0x10)), 0xDEAD_BEEF);
        assert_eq!(m.written_words(), 1);
    }

    #[test]
    fn byte_enables_merge_lanes() {
        let mut m = mem();
        m.write_word(Address::new(0x20), 0x4433_2211, 0b1111);
        m.write_word(Address::new(0x20), 0xAABB_CCDD, 0b0101);
        assert_eq!(m.read_word(Address::new(0x20)), 0x44BB_22DD);
    }

    #[test]
    fn partial_write_to_untouched_word_keeps_pattern_lanes() {
        let mut m = mem();
        let a = Address::new(0x80);
        let pattern = SimpleMem::fill_pattern(a);
        m.write_word(a, 0x0000_00EE, 0b0001);
        let expect = (pattern & 0xFFFF_FF00) | 0xEE;
        assert_eq!(m.read_word(a), expect);
    }

    #[test]
    fn load_preloads_consecutive_words() {
        let mut m = mem();
        m.load(Address::new(0x100), &[1, 2, 3]);
        assert_eq!(m.read_word(Address::new(0x100)), 1);
        assert_eq!(m.read_word(Address::new(0x104)), 2);
        assert_eq!(m.read_word(Address::new(0x108)), 3);
    }
}
