//! The gate-level power estimator (Diesel substitute).
//!
//! Diesel estimates dissipated energy per wire from macro-cell
//! characterization, signal slopes and layout parasitics. This module
//! reproduces the estimation *principle* on a synthetic layout database:
//! every interface wire gets a capacitance drawn deterministically from a
//! class-dependent range (address/data buses are long, heavily loaded
//! wires; control wires are short), and every transition dissipates
//! `½·C·V²` scaled by a slope factor that differs for rising, falling and
//! partial-swing (glitch) transitions.
//!
//! The estimator also implements the paper's characterization step: after
//! running the training sequences, [`GateLevelPowerEstimator::class_stats`]
//! yields *(signal class, total energy, total transitions)* triples from
//! which the TLM energy models derive their average energy per transition
//! — "we abstracted all different transitions and use the average energy
//! per transition for each signal" (§3.3).

use hierbus_ec::SignalClass;
use hierbus_sim::signal::VectorUpdate;
use hierbus_sim::SplitMix64;

/// Whether a wire-group update happened at the final settle of a cycle or
/// during combinational hazard activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionPhase {
    /// The cycle's final, functionally meaningful transition.
    Settled,
    /// A hazard: the wire toggled and will toggle back within the cycle.
    Glitch,
}

/// Electrical parameters of the estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Energy multiplier for rising transitions (slope asymmetry).
    pub rise_factor: f64,
    /// Energy multiplier for falling transitions.
    pub fall_factor: f64,
    /// Energy multiplier for glitch transitions (partial voltage swing).
    pub glitch_factor: f64,
    /// Seed for the synthetic layout (capacitance) database.
    pub layout_seed: u64,
}

impl PowerConfig {
    /// Parameters modeling the 1.8 V smart-card core supply.
    pub const SMART_CARD: PowerConfig = PowerConfig {
        vdd: 1.8,
        rise_factor: 1.05,
        fall_factor: 0.95,
        glitch_factor: 0.85,
        layout_seed: 0x5eed_1a70,
    };
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig::SMART_CARD
    }
}

/// Per-wire capacitances of the synthetic layout, in picofarads.
///
/// Deterministic for a given seed, so every run of the workspace sees the
/// same "chip".
#[derive(Debug, Clone)]
pub struct WireDb {
    /// `caps[class][bit]` in pF.
    caps: [Vec<f64>; 6],
}

impl WireDb {
    /// Builds the database from a seed.
    ///
    /// Capacitance ranges per class (pF): address bus 0.45–0.85, data
    /// buses 0.35–0.75, control 0.10–0.30 — long top-level bus routes
    /// versus short control nets.
    pub fn synthesize(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut caps: [Vec<f64>; 6] = Default::default();
        for class in SignalClass::ALL {
            let (lo, hi) = match class {
                SignalClass::AddrBus => (0.45, 0.85),
                SignalClass::ReadData | SignalClass::WriteData => (0.35, 0.75),
                SignalClass::AddrCtl | SignalClass::ReadCtl | SignalClass::WriteCtl => (0.10, 0.30),
            };
            caps[class.index()] = (0..class.wires()).map(|_| rng.range_f64(lo, hi)).collect();
        }
        WireDb { caps }
    }

    /// Capacitance of one wire in pF.
    ///
    /// # Panics
    ///
    /// Panics if `bit` exceeds the class width.
    pub fn capacitance(&self, class: SignalClass, bit: u32) -> f64 {
        self.caps[class.index()][bit as usize]
    }

    /// Mean capacitance of a class in pF.
    pub fn mean_capacitance(&self, class: SignalClass) -> f64 {
        let c = &self.caps[class.index()];
        c.iter().sum::<f64>() / c.len() as f64
    }
}

/// Accumulated per-class estimation state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ClassAccum {
    energy_pj: f64,
    transitions: u64,
    glitch_transitions: u64,
}

/// The gate-level estimator: feed it every wire-group update, read back
/// energies, transition statistics and the characterization table.
///
/// Energies are in picojoules throughout (pF × V² = pJ).
#[derive(Debug, Clone)]
pub struct GateLevelPowerEstimator {
    config: PowerConfig,
    db: WireDb,
    /// `half_cv2[class][bit] = (0.5 · C) · V²` in pJ, hoisted out of the
    /// per-transition loop. `t · slope_factor` is bit-identical to the
    /// unhoisted `0.5 · C · V² · slope_factor` because `f64`
    /// multiplication chains associate left.
    half_cv2: [Vec<f64>; 6],
    accum: [ClassAccum; 6],
    /// Energy accumulated since the last cycle boundary.
    cycle_energy: f64,
    /// Per-cycle energy trace (only filled when tracing is enabled).
    trace: Option<Vec<f64>>,
}

impl GateLevelPowerEstimator {
    /// Creates an estimator with a fresh synthetic layout.
    pub fn new(config: PowerConfig) -> Self {
        let db = WireDb::synthesize(config.layout_seed);
        let v2 = config.vdd * config.vdd;
        let half_cv2 = std::array::from_fn(|i| {
            let class = SignalClass::ALL[i];
            (0..class.wires())
                .map(|b| 0.5 * db.capacitance(class, b) * v2)
                .collect()
        });
        GateLevelPowerEstimator {
            db,
            config,
            half_cv2,
            accum: Default::default(),
            cycle_energy: 0.0,
            trace: None,
        }
    }

    /// Enables the per-cycle energy trace (costs one `Vec` push per cycle).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The layout database in use.
    pub fn wire_db(&self) -> &WireDb {
        &self.db
    }

    /// Accounts one wire-group update.
    pub fn observe(&mut self, class: SignalClass, update: VectorUpdate, phase: TransitionPhase) {
        if update.is_quiet() {
            return;
        }
        let (rise_f, fall_f) = match phase {
            TransitionPhase::Settled => (self.config.rise_factor, self.config.fall_factor),
            TransitionPhase::Glitch => (
                self.config.rise_factor * self.config.glitch_factor,
                self.config.fall_factor * self.config.glitch_factor,
            ),
        };
        let table = &self.half_cv2[class.index()];
        let mut energy = 0.0;
        let mut count = 0u64;
        let mut bits = update.rises;
        while bits != 0 {
            let b = bits.trailing_zeros();
            energy += table[b as usize] * rise_f;
            count += 1;
            bits &= bits - 1;
        }
        let mut bits = update.falls;
        while bits != 0 {
            let b = bits.trailing_zeros();
            energy += table[b as usize] * fall_f;
            count += 1;
            bits &= bits - 1;
        }
        let acc = &mut self.accum[class.index()];
        acc.energy_pj += energy;
        acc.transitions += count;
        if phase == TransitionPhase::Glitch {
            acc.glitch_transitions += count;
        }
        self.cycle_energy += energy;
    }

    /// Marks a cycle boundary: pushes the cycle's energy onto the trace
    /// (if enabled) and returns it.
    pub fn cycle_boundary(&mut self) -> f64 {
        let e = self.cycle_energy;
        self.cycle_energy = 0.0;
        if let Some(trace) = &mut self.trace {
            trace.push(e);
        }
        e
    }

    /// Total estimated energy in pJ.
    pub fn total_energy(&self) -> f64 {
        self.accum.iter().map(|a| a.energy_pj).sum()
    }

    /// Energy of one signal class in pJ.
    pub fn class_energy(&self, class: SignalClass) -> f64 {
        self.accum[class.index()].energy_pj
    }

    /// Transitions of one class (all phases).
    pub fn class_transitions(&self, class: SignalClass) -> u64 {
        self.accum[class.index()].transitions
    }

    /// Glitch transitions of one class.
    pub fn class_glitch_transitions(&self, class: SignalClass) -> u64 {
        self.accum[class.index()].glitch_transitions
    }

    /// Total transitions across classes.
    pub fn total_transitions(&self) -> u64 {
        self.accum.iter().map(|a| a.transitions).sum()
    }

    /// The characterization table: `(class, energy pJ, transitions)` per
    /// class — input to the TLM energy models.
    pub fn class_stats(&self) -> Vec<(SignalClass, f64, u64)> {
        SignalClass::ALL
            .iter()
            .map(|&c| {
                let a = self.accum[c.index()];
                (c, a.energy_pj, a.transitions)
            })
            .collect()
    }

    /// The per-cycle energy trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[f64]> {
        self.trace.as_deref()
    }

    /// Decomposes the per-cycle trace into an energy-attribution ledger
    /// along `slave → phase → access class`, using the span record of
    /// the same run (the RTL obs collector shares the trace's cycle
    /// numbering). Returns `None` unless tracing was enabled. The
    /// ledger total matches [`total_energy`](Self::total_energy) up to
    /// f64 regrouping: attribution partitions, it never re-prices.
    pub fn ledger(
        &self,
        spans: &[hierbus_obs::SpanEvent],
        slaves: &hierbus_obs::SlaveMap,
    ) -> Option<hierbus_obs::EnergyLedger> {
        Some(hierbus_obs::attribute_cycles(
            "rtl",
            spans,
            self.trace()?,
            slaves,
        ))
    }

    /// Clears all accumulated state (layout is kept).
    pub fn reset(&mut self) {
        self.accum = Default::default();
        self.cycle_energy = 0.0;
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_deterministic_per_seed() {
        let a = WireDb::synthesize(1);
        let b = WireDb::synthesize(1);
        let c = WireDb::synthesize(2);
        assert_eq!(
            a.capacitance(SignalClass::AddrBus, 0),
            b.capacitance(SignalClass::AddrBus, 0)
        );
        assert_ne!(
            a.capacitance(SignalClass::AddrBus, 0),
            c.capacitance(SignalClass::AddrBus, 0)
        );
    }

    #[test]
    fn bus_wires_are_heavier_than_control() {
        let db = WireDb::synthesize(0);
        assert!(
            db.mean_capacitance(SignalClass::AddrBus) > db.mean_capacitance(SignalClass::AddrCtl)
        );
        assert!(
            db.mean_capacitance(SignalClass::ReadData) > db.mean_capacitance(SignalClass::ReadCtl)
        );
    }

    #[test]
    fn energy_scales_with_transitions() {
        let mut est = GateLevelPowerEstimator::new(PowerConfig::default());
        let one_bit = VectorUpdate {
            rises: 0b1,
            falls: 0,
        };
        est.observe(SignalClass::ReadData, one_bit, TransitionPhase::Settled);
        let e1 = est.total_energy();
        est.observe(SignalClass::ReadData, one_bit, TransitionPhase::Settled);
        assert!((est.total_energy() - 2.0 * e1).abs() < 1e-12);
        assert_eq!(est.total_transitions(), 2);
    }

    #[test]
    fn glitches_cost_less_per_transition_but_add_energy() {
        let mut est = GateLevelPowerEstimator::new(PowerConfig::default());
        let upd = VectorUpdate {
            rises: 0xF,
            falls: 0,
        };
        est.observe(SignalClass::WriteData, upd, TransitionPhase::Settled);
        let settled = est.total_energy();
        est.observe(SignalClass::WriteData, upd, TransitionPhase::Glitch);
        let with_glitch = est.total_energy();
        let glitch_energy = with_glitch - settled;
        assert!(glitch_energy > 0.0);
        assert!(glitch_energy < settled);
        assert_eq!(est.class_glitch_transitions(SignalClass::WriteData), 4);
    }

    #[test]
    fn quiet_updates_cost_nothing() {
        let mut est = GateLevelPowerEstimator::new(PowerConfig::default());
        est.observe(
            SignalClass::AddrBus,
            VectorUpdate::default(),
            TransitionPhase::Settled,
        );
        assert_eq!(est.total_energy(), 0.0);
        assert_eq!(est.total_transitions(), 0);
    }

    #[test]
    fn cycle_trace_records_boundaries() {
        let mut est = GateLevelPowerEstimator::new(PowerConfig::default());
        est.enable_trace();
        est.observe(
            SignalClass::AddrBus,
            VectorUpdate {
                rises: 0b11,
                falls: 0,
            },
            TransitionPhase::Settled,
        );
        let e = est.cycle_boundary();
        assert!(e > 0.0);
        let quiet = est.cycle_boundary();
        assert_eq!(quiet, 0.0);
        assert_eq!(est.trace().unwrap().len(), 2);
        assert_eq!(est.trace().unwrap()[0], e);
    }

    #[test]
    fn class_stats_cover_all_classes() {
        let est = GateLevelPowerEstimator::new(PowerConfig::default());
        let stats = est.class_stats();
        assert_eq!(stats.len(), 6);
        for (c, e, t) in stats {
            assert_eq!(e, 0.0, "{c}");
            assert_eq!(t, 0);
        }
    }

    #[test]
    fn reset_clears_accumulators_not_layout() {
        let mut est = GateLevelPowerEstimator::new(PowerConfig::default());
        let cap_before = est.wire_db().capacitance(SignalClass::AddrBus, 5);
        est.observe(
            SignalClass::AddrBus,
            VectorUpdate { rises: 1, falls: 0 },
            TransitionPhase::Settled,
        );
        est.reset();
        assert_eq!(est.total_energy(), 0.0);
        assert_eq!(
            est.wire_db().capacitance(SignalClass::AddrBus, 5),
            cap_before
        );
    }
}
