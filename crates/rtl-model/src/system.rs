//! The assembled cycle-true reference system.

use crate::channels::{AddrCycle, AddressChannel, DataChannel, DataCycle};
use crate::glitch::GlitchConfig;
use crate::master::{RtlMaster, TxnRecord};
use crate::power::{GateLevelPowerEstimator, PowerConfig, TransitionPhase};
use crate::slave::RtlSlaveModel;
use crate::wires::InterfaceWires;
use hierbus_ec::{
    AccessKind, AddressMap, Arbiter, ArbiterStats, ArbitrationPolicy, BusError, FaultCounters,
    FaultKind, FaultPlan, MultiScenario, OutstandingLimits, RetryPolicy, Scenario, SignalClass,
    SignalFrame, SlaveId, Transaction, TxnOutcome, DMA_ID_BASE,
};
use hierbus_obs::{AccessClass, Phase, TraceCollector};
use hierbus_sim::CycleSchedule;

/// `hierbus-obs` is dependency-free, so the access-kind translation
/// lives with each instrumented model.
fn access_class(kind: AccessKind) -> AccessClass {
    match kind {
        AccessKind::InstrFetch => AccessClass::Fetch,
        AccessKind::DataRead => AccessClass::Read,
        AccessKind::DataWrite => AccessClass::Write,
    }
}

/// One transaction currently (or formerly) active on the bus.
#[derive(Debug)]
struct ActiveTxn {
    /// Index of the owning master.
    master: usize,
    rec: usize,
    txn: Transaction,
    slave: Option<SlaveId>,
    /// The fault injected into this attempt, resolved at issue time.
    fault: Option<FaultKind>,
    /// Span bookkeeping: the address/data phase has begun on the wires.
    addr_started: bool,
    data_started: bool,
}

/// Per-master slice of a finished run — mirrors the TLM multi-master
/// report so the arbitration-equivalence suite can compare slices
/// directly across layers.
#[derive(Debug, Clone)]
pub struct MasterRunReport {
    /// This master's transaction records (one per attempt), in issue
    /// order.
    pub records: Vec<TxnRecord>,
    /// Final per-stimulus-op outcomes.
    pub outcomes: Vec<TxnOutcome>,
    /// Fault counters for this master alone.
    pub fault: FaultCounters,
    /// Transactions this master completed.
    pub completed: u64,
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Bus cycles from cycle 0 through the last completion, inclusive.
    pub cycles: u64,
    /// Per-transaction lifecycle records, concatenated in master order
    /// (identical to the single master's records when there is one).
    pub records: Vec<TxnRecord>,
    /// Total gate-level energy in pJ (0 when estimation was disabled).
    pub energy_pj: f64,
    /// Total wire transitions (including glitches).
    pub transitions: u64,
    /// Glitch transitions alone.
    pub glitch_transitions: u64,
    /// Final per-stimulus-op outcomes, concatenated in master order.
    pub outcomes: Vec<TxnOutcome>,
    /// Fault-injection and robustness counters, summed over masters.
    pub fault: FaultCounters,
    /// One slice per master, in master order.
    pub masters: Vec<MasterRunReport>,
    /// The cycle-exact grant lines: `(cycle, master)` per grant.
    pub grants: Vec<(u64, usize)>,
    /// Arbitration statistics (per-master grants/waits, contention).
    pub stats: ArbiterStats,
}

impl RunReport {
    /// Number of transactions executed.
    pub fn transactions(&self) -> usize {
        self.records.len()
    }
}

/// The cycle-true reference: stimulus master, bus controller (decode +
/// channels), slaves, explicit wires, hazard model and gate-level power
/// estimator.
pub struct RtlSystem {
    masters: Vec<RtlMaster>,
    arbiter: Arbiter,
    /// Scratch request-line vector, reused every cycle.
    requests: Vec<bool>,
    map: AddressMap,
    slaves: Vec<Box<dyn RtlSlaveModel>>,
    addr_ch: AddressChannel,
    read_ch: DataChannel,
    write_ch: DataChannel,
    active: Vec<ActiveTxn>,
    wires: InterfaceWires,
    estimator: GateLevelPowerEstimator,
    glitch: GlitchConfig,
    estimate: bool,
    cycle: u64,
    last_done: u64,
    /// Optional per-cycle settled-frame log (for model-equivalence tests).
    frame_log: Option<Vec<SignalFrame>>,
    /// Optional VCD waveform recording of the wire bundle.
    waveform: Option<(hierbus_sim::trace::TraceRecorder, WaveChannels)>,
    obs: TraceCollector,
    /// The card-tear schedule (at most one entry, from the fault plan).
    tear: CycleSchedule<()>,
    torn: bool,
    /// Fault counters already mirrored into the trace.
    sampled: FaultCounters,
}

/// Channel handles of the waveform recording.
struct WaveChannels {
    a_addr: hierbus_sim::trace::ChannelId,
    a_ctl: hierbus_sim::trace::ChannelId,
    r_data: hierbus_sim::trace::ChannelId,
    r_ctl: hierbus_sim::trace::ChannelId,
    w_data: hierbus_sim::trace::ChannelId,
    w_ctl: hierbus_sim::trace::ChannelId,
}

impl RtlSystem {
    /// Builds a system from stimulus ops and slave models. The address map
    /// is derived from the slaves' configurations in order.
    ///
    /// # Panics
    ///
    /// Panics if slave address windows overlap.
    pub fn new(
        ops: impl Into<std::sync::Arc<[hierbus_ec::MasterOp]>>,
        slaves: Vec<Box<dyn RtlSlaveModel>>,
        power: PowerConfig,
        glitch: GlitchConfig,
    ) -> Self {
        let mut map = AddressMap::new();
        for s in &slaves {
            map.add_slave(s.config())
                .expect("slave windows must not overlap");
        }
        RtlSystem {
            masters: vec![RtlMaster::new(ops, OutstandingLimits::CORE_DEFAULT)],
            arbiter: Arbiter::new(ArbitrationPolicy::FixedPriority, 1),
            requests: Vec::new(),
            map,
            slaves,
            addr_ch: AddressChannel::new(),
            read_ch: DataChannel::new(),
            write_ch: DataChannel::new(),
            active: Vec::new(),
            wires: InterfaceWires::new(),
            estimator: GateLevelPowerEstimator::new(power),
            glitch,
            estimate: true,
            cycle: 0,
            last_done: 0,
            frame_log: None,
            waveform: None,
            obs: TraceCollector::disabled("rtl"),
            tear: CycleSchedule::new(),
            torn: false,
            sampled: FaultCounters::default(),
        }
    }

    /// Attaches a fault plan and robustness policy to master 0;
    /// builder-style. Must be called before the first cycle.
    pub fn with_faults(mut self, plan: FaultPlan, policy: RetryPolicy) -> Self {
        self.tear = CycleSchedule::new();
        if let Some(tc) = plan.tear_cycle {
            self.tear.at(tc, ());
        }
        self.masters[0].set_faults(plan, policy);
        self
    }

    /// Attaches a fault plan and robustness policy to master `idx`. A
    /// tear cycle in the plan is global — power is gone for every
    /// master. Must be called before the first cycle.
    pub fn set_master_faults(&mut self, idx: usize, plan: FaultPlan, policy: RetryPolicy) {
        assert_eq!(self.cycle, 0, "faults must be configured before running");
        if let Some(tc) = plan.tear_cycle {
            self.tear.at(tc, ());
        }
        self.masters[idx].set_faults(plan, policy);
    }

    /// Adds a master replaying `ops`, with transaction ids starting at
    /// `id_base` (masters must get disjoint id windows). Returns the
    /// new master's index. Must be called before the first cycle.
    pub fn add_master(
        &mut self,
        ops: impl Into<std::sync::Arc<[hierbus_ec::MasterOp]>>,
        id_base: u64,
    ) -> usize {
        assert_eq!(self.cycle, 0, "masters must be added before running");
        let mut m = RtlMaster::new(ops, OutstandingLimits::CORE_DEFAULT);
        m.set_id_base(id_base);
        self.masters.push(m);
        self.arbiter = Arbiter::new(self.arbiter.policy(), self.masters.len());
        self.masters.len() - 1
    }

    /// Replaces the arbitration policy. Must be called before the
    /// first cycle.
    pub fn set_arbitration(&mut self, policy: ArbitrationPolicy) {
        assert_eq!(self.cycle, 0, "policy must be set before running");
        self.arbiter = Arbiter::new(policy, self.masters.len());
    }

    /// The canonical CPU + DMA configuration over one shared memory
    /// covering both masters' windows: master 0 replays the CPU
    /// scenario with ids from 0, master 1 replays the DMA program with
    /// ids from [`DMA_ID_BASE`], arbitrated by the scenario's policy.
    pub fn for_multi_scenario(scenario: &MultiScenario) -> Self {
        let mut sys = RtlSystem::for_scenario(&scenario.cpu);
        sys.add_master(scenario.dma_ops.clone(), DMA_ID_BASE);
        sys.set_arbitration(scenario.policy);
        sys
    }

    /// The cycle-exact grant lines so far: `(cycle, master)` per grant.
    pub fn grant_log(&self) -> &[(u64, usize)] {
        self.arbiter.log()
    }

    /// Arbitration statistics so far.
    pub fn arbiter_stats(&self) -> &ArbiterStats {
        self.arbiter.stats()
    }

    /// Number of masters on the bus.
    pub fn master_count(&self) -> usize {
        self.masters.len()
    }

    /// The master at `idx` (post-run inspection).
    pub fn master(&self, idx: usize) -> &RtlMaster {
        &self.masters[idx]
    }

    /// True once the card has been torn.
    pub fn torn(&self) -> bool {
        self.torn
    }

    /// Fault counters so far, summed over masters.
    pub fn fault_counters(&self) -> FaultCounters {
        sum_counters(self.masters.iter().map(|m| m.fault_counters()))
    }

    /// Downcasts the slave at position `i` to its concrete model type
    /// (post-run memory inspection; see [`RtlSlaveModel::as_any`]).
    pub fn slave_as<T: 'static>(&self, i: usize) -> Option<&T> {
        self.slaves.get(i)?.as_any()?.downcast_ref::<T>()
    }

    /// Enables transaction-span collection (request/address/data phase
    /// events per transaction; read back via [`RtlSystem::obs`]).
    pub fn enable_obs(&mut self) {
        self.obs.enable();
    }

    /// The span collector (meaningful after [`RtlSystem::enable_obs`]).
    pub fn obs(&self) -> &TraceCollector {
        &self.obs
    }

    /// Exclusive access to the span collector.
    pub fn obs_mut(&mut self) -> &mut TraceCollector {
        &mut self.obs
    }

    /// Marks the address phase of `idx` as started on the wires: the
    /// request span ends and the address span begins.
    fn obs_addr_start(&mut self, idx: usize, cycle: u64) {
        let a = &mut self.active[idx];
        if a.addr_started {
            return;
        }
        a.addr_started = true;
        let (id, addr, class) = (a.txn.id.0, a.txn.addr.raw(), access_class(a.txn.kind));
        self.obs.end(id, Phase::Request, cycle, false);
        self.obs.begin(id, Phase::Address, cycle, addr, class);
    }

    /// Marks the data phase of `idx` as started on its channel.
    fn obs_data_start(&mut self, idx: usize, cycle: u64) {
        let a = &mut self.active[idx];
        if a.data_started {
            return;
        }
        a.data_started = true;
        let phase = if a.txn.kind.is_read() {
            Phase::ReadData
        } else {
            Phase::WriteData
        };
        let (id, addr, class) = (a.txn.id.0, a.txn.addr.raw(), access_class(a.txn.kind));
        self.obs.begin(id, phase, cycle, addr, class);
    }

    /// Convenience constructor: one memory slave sized/configured for a
    /// [`Scenario`], default power and glitch models.
    pub fn for_scenario(scenario: &Scenario) -> Self {
        use crate::slave::SimpleMem;
        use hierbus_ec::{AccessRights, Address, AddressRange, SlaveConfig};
        let mem = SimpleMem::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x2_0000),
            scenario.waits,
            AccessRights::RWX,
        ));
        RtlSystem::new(
            scenario.ops.clone(),
            vec![Box::new(mem)],
            PowerConfig::default(),
            GlitchConfig::default(),
        )
    }

    /// Disables energy estimation (pure timing run).
    pub fn disable_estimation(&mut self) {
        self.estimate = false;
    }

    /// Replaces the hazard model (e.g. [`GlitchConfig::off`] for the
    /// ablation bench).
    pub fn set_glitch(&mut self, glitch: GlitchConfig) {
        self.glitch = glitch;
    }

    /// Starts logging the settled frame of every cycle.
    pub fn enable_frame_log(&mut self) {
        self.frame_log = Some(Vec::new());
    }

    /// Starts recording the wire bundle into a VCD waveform (one sample
    /// per cycle, timescale = one tick per cycle).
    pub fn enable_waveform(&mut self) {
        use hierbus_sim::trace::TraceRecorder;
        let mut rec = TraceRecorder::new("10ns");
        let channels = WaveChannels {
            a_addr: rec.add_channel("a_addr", 36),
            a_ctl: rec.add_channel("a_ctl", SignalClass::AddrCtl.wires()),
            r_data: rec.add_channel("r_data", 32),
            r_ctl: rec.add_channel("r_ctl", SignalClass::ReadCtl.wires()),
            w_data: rec.add_channel("w_data", 32),
            w_ctl: rec.add_channel("w_ctl", SignalClass::WriteCtl.wires()),
        };
        self.waveform = Some((rec, channels));
    }

    /// The recorded waveform as VCD text, if recording was enabled.
    pub fn waveform_vcd(&self) -> Option<String> {
        self.waveform.as_ref().map(|(rec, _)| rec.to_vcd())
    }

    /// Enables the estimator's per-cycle energy trace.
    pub fn enable_power_trace(&mut self) {
        self.estimator.enable_trace();
    }

    /// The settled frames, if logging was enabled.
    pub fn frames(&self) -> Option<&[SignalFrame]> {
        self.frame_log.as_deref()
    }

    /// The gate-level estimator (characterization source).
    pub fn estimator(&self) -> &GateLevelPowerEstimator {
        &self.estimator
    }

    /// Master 0's transaction records so far (the only master's, in a
    /// single-master system; see [`master`](Self::master) for others).
    pub fn records(&self) -> &[TxnRecord] {
        self.masters[0].records()
    }

    /// Current cycle number (cycles executed so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Executes one full bus cycle.
    pub fn step_cycle(&mut self) {
        let cycle = self.cycle;
        // Rising edge: every master runs its bookkeeping and drives its
        // request line; the arbiter grants at most one, which issues.
        for m in &mut self.masters {
            m.begin_cycle(cycle);
        }
        let mut requests = std::mem::take(&mut self.requests);
        requests.clear();
        for m in &mut self.masters {
            requests.push(m.arbitration_request(cycle));
        }
        let granted = self.arbiter.grant(cycle, &requests);
        self.requests = requests;
        if let Some(winner) = granted {
            let (rec, txn, fault) = self.masters[winner].issue_granted(cycle);
            let decode = self.map.decode(txn.addr, txn.kind);
            let (slave, addr_waits, error) = match decode {
                Ok(id) => (Some(id), self.map.config(id).waits.address, None),
                Err(e) => (None, 0, Some(e)),
            };
            let idx = self.active.len();
            self.obs.begin(
                txn.id.0,
                Phase::Request,
                cycle,
                txn.addr.raw(),
                access_class(txn.kind),
            );
            self.active.push(ActiveTxn {
                master: winner,
                rec,
                txn,
                slave,
                fault,
                addr_started: false,
                data_started: false,
            });
            self.addr_ch.push(idx, addr_waits, error);
        }
        self.sample_fault_counters(cycle);

        // Falling edge: the bus process evaluates the three phases in the
        // paper's order (address, read, write) and drives the wires.
        let mut frame = self.wires.snapshot().to_idle();

        match self.addr_ch.step() {
            AddrCycle::Idle => {}
            AddrCycle::Busy(idx) => {
                self.obs_addr_start(idx, cycle);
                let t = &self.active[idx].txn;
                frame.drive_address(t.addr.raw(), t.kind, t.width, t.burst, false, false);
            }
            AddrCycle::Done(idx) => {
                self.obs_addr_start(idx, cycle);
                self.obs
                    .end(self.active[idx].txn.id.0, Phase::Address, cycle, false);
                let (kind, beats, wait, stall, rec, mi) = {
                    let a = &self.active[idx];
                    let waits = self.map.config(a.slave.expect("decoded")).waits;
                    let stall = match a.fault {
                        Some(FaultKind::Stall(n)) => n,
                        _ => 0,
                    };
                    (
                        a.txn.kind,
                        a.txn.beats(),
                        waits.data_wait(a.txn.kind),
                        stall,
                        a.rec,
                        a.master,
                    )
                };
                let t = &self.active[idx].txn;
                frame.drive_address(t.addr.raw(), t.kind, t.width, t.burst, true, false);
                self.masters[mi].address_done(rec, cycle);
                if kind.is_read() {
                    self.read_ch.push(idx, beats, wait, stall);
                } else {
                    self.write_ch.push(idx, beats, wait, stall);
                }
            }
            AddrCycle::Failed(idx, err) => {
                self.obs_addr_start(idx, cycle);
                self.obs
                    .end(self.active[idx].txn.id.0, Phase::Address, cycle, true);
                let t = &self.active[idx].txn;
                frame.drive_address(t.addr.raw(), t.kind, t.width, t.burst, true, true);
                let (rec, mi) = (self.active[idx].rec, self.active[idx].master);
                self.masters[mi].complete(rec, cycle, Some(err));
                self.last_done = cycle;
            }
        }

        match self.read_ch.step() {
            DataCycle::Idle => {}
            DataCycle::Busy(idx) => self.obs_data_start(idx, cycle),
            DataCycle::Beat { idx, beat, last } => {
                self.obs_data_start(idx, cycle);
                // An injected slave error fires on the first data beat,
                // before the slave is consulted — no data is ever read.
                // The error response holds the previous read-bus value
                // (matching the layer-1 adapter's frame).
                let injected =
                    beat == 0 && matches!(self.active[idx].fault, Some(FaultKind::SlaveError));
                if injected {
                    let (tag, rec, mi, addr) = {
                        let a = &self.active[idx];
                        (a.txn.id.tag(), a.rec, a.master, a.txn.beat_addr(0))
                    };
                    let prev = self.wires.r_data.value() as u32;
                    frame.drive_read(prev, tag, true, true);
                    if !last {
                        self.read_ch.cancel_current();
                    }
                    self.obs
                        .end(self.active[idx].txn.id.0, Phase::ReadData, cycle, true);
                    self.masters[mi].complete(rec, cycle, Some(BusError::SlaveError(addr)));
                    self.last_done = cycle;
                } else {
                    let (word, tag, rec, mi, err) = {
                        let a = &self.active[idx];
                        let addr = a.txn.beat_addr(beat);
                        let slave = a.slave.expect("decoded");
                        let word = self.slaves[slave.0].read_word(addr);
                        (word, a.txn.id.tag(), a.rec, a.master, None::<BusError>)
                    };
                    frame.drive_read(word, tag, true, false);
                    let a = &self.active[idx];
                    let value = a.txn.width.extract(a.txn.beat_addr(beat), word);
                    self.masters[mi].read_beat(rec, beat, value);
                    if last {
                        self.obs.end(
                            self.active[idx].txn.id.0,
                            Phase::ReadData,
                            cycle,
                            err.is_some(),
                        );
                        self.masters[mi].complete(rec, cycle, err);
                        self.last_done = cycle;
                    }
                }
            }
        }

        match self.write_ch.step() {
            DataCycle::Idle => {}
            DataCycle::Busy(idx) => self.obs_data_start(idx, cycle),
            DataCycle::Beat { idx, beat, last } => {
                self.obs_data_start(idx, cycle);
                // An injected slave error fires on the first data beat,
                // before the slave commits — memory is never modified.
                // The payload was still driven onto the bus.
                let injected =
                    beat == 0 && matches!(self.active[idx].fault, Some(FaultKind::SlaveError));
                let (bus_word, ben, tag, rec, mi) = {
                    let a = &self.active[idx];
                    let addr = a.txn.beat_addr(beat);
                    let value = a.txn.data[beat as usize];
                    // Non-enabled lanes hold the previous bus value
                    // (keeper behaviour), enabled lanes carry the datum.
                    let prev = self.wires.w_data.value() as u32;
                    let bus_word = a.txn.width.insert(addr, prev, value);
                    let ben = a.txn.width.byte_enables(addr);
                    (bus_word, ben, a.txn.id.tag(), a.rec, a.master)
                };
                frame.drive_write(bus_word, ben, tag, true, injected);
                if !injected {
                    let a = &self.active[idx];
                    let addr = a.txn.beat_addr(beat);
                    let slave = a.slave.expect("decoded");
                    self.slaves[slave.0].write_word(addr, bus_word, ben);
                }
                if last || injected {
                    let err =
                        injected.then(|| BusError::SlaveError(self.active[idx].txn.beat_addr(0)));
                    if !last {
                        self.write_ch.cancel_current();
                    }
                    self.obs.end(
                        self.active[idx].txn.id.0,
                        Phase::WriteData,
                        cycle,
                        err.is_some(),
                    );
                    self.masters[mi].complete(rec, cycle, err);
                    self.last_done = cycle;
                }
            }
        }

        self.settle(&frame);
        self.cycle += 1;
    }

    /// Drives the wires to `frame`, injecting hazards and feeding the
    /// estimator.
    fn settle(&mut self, frame: &SignalFrame) {
        self.wires.drive(frame);
        for class in SignalClass::ALL {
            let group = self.wires.group_mut(class);
            let old = group.value();
            let new = group.next_value();
            if self.estimate {
                let hazard = self.glitch.hazard_mask(
                    self.cycle
                        .wrapping_mul(8)
                        .wrapping_add(class.index() as u64),
                    old,
                    new,
                    group.width(),
                );
                if hazard != 0 {
                    group.set(old ^ hazard);
                    let pulse_up = group.update();
                    group.set(old);
                    let pulse_down = group.update();
                    group.set(new);
                    self.estimator
                        .observe(class, pulse_up, TransitionPhase::Glitch);
                    self.estimator
                        .observe(class, pulse_down, TransitionPhase::Glitch);
                }
                let settled = group.update();
                self.estimator
                    .observe(class, settled, TransitionPhase::Settled);
            } else {
                group.update();
            }
        }
        if self.estimate {
            self.estimator.cycle_boundary();
        }
        if let Some(log) = &mut self.frame_log {
            log.push(self.wires.snapshot());
        }
        if let Some((rec, ch)) = &mut self.waveform {
            let t = hierbus_sim::SimTime::from_ticks(self.cycle);
            rec.sample(t, ch.a_addr, self.wires.a_addr.value());
            rec.sample(t, ch.a_ctl, self.wires.a_ctl.value());
            rec.sample(t, ch.r_data, self.wires.r_data.value());
            rec.sample(t, ch.r_ctl, self.wires.r_ctl.value());
            rec.sample(t, ch.w_data, self.wires.w_data.value());
            rec.sample(t, ch.w_ctl, self.wires.w_ctl.value());
        }
    }

    /// Mirrors the masters' aggregate `fault.*` counters into the
    /// trace whenever they change.
    fn sample_fault_counters(&mut self, cycle: u64) {
        let c = self.fault_counters();
        if c == self.sampled {
            return;
        }
        if c.injected != self.sampled.injected {
            self.obs
                .counter_sample("fault.injected", cycle, c.injected as f64);
        }
        if c.retried != self.sampled.retried {
            self.obs
                .counter_sample("fault.retried", cycle, c.retried as f64);
        }
        if c.aborted != self.sampled.aborted {
            self.obs
                .counter_sample("fault.aborted", cycle, c.aborted as f64);
        }
        self.sampled = c;
    }

    /// Runs until the stimulus completes — or to the card tear,
    /// whichever is first. Returns the run report.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to finish within `max_cycles` — a
    /// deadlock would otherwise loop forever.
    pub fn run(&mut self, max_cycles: u64) -> RunReport {
        while !self.masters.iter().all(|m| m.is_finished()) {
            if !self.tear.pop_due(self.cycle).is_empty() {
                // Power is gone: the cycle at the tear never executes.
                self.torn = true;
                break;
            }
            assert!(
                self.cycle < max_cycles,
                "bus deadlock: {} cycles without completion",
                max_cycles
            );
            self.step_cycle();
        }
        if !self.torn && !self.tear.pop_due(self.cycle).is_empty() {
            // The tear lands exactly on the settle cycle below: power
            // is gone before the handshake wires fall. Every stimulus
            // op already settled, so the only observable difference is
            // the missing settle-cycle energy — matching the TLM
            // masters, whose completion pickup lags one cycle and so
            // see this tear inside their run loop.
            self.torn = true;
        }
        if self.torn {
            for m in &mut self.masters {
                m.tear_now();
            }
            self.sample_fault_counters(self.cycle);
        } else {
            // One more cycle settles the bus back to idle: the handshake
            // wires fall, and those transitions cost energy the layer-1
            // model (whose process also runs that cycle) must see too.
            // A torn run gets no such cycle — the clock is dead.
            self.step_cycle();
        }
        let glitches: u64 = SignalClass::ALL
            .iter()
            .map(|&c| self.estimator.class_glitch_transitions(c))
            .sum();
        let masters: Vec<MasterRunReport> = self
            .masters
            .iter()
            .map(|m| MasterRunReport {
                records: m.records().to_vec(),
                outcomes: m
                    .outcomes()
                    .iter()
                    .map(|o| o.expect("all ops settled at end of run"))
                    .collect(),
                fault: m.fault_counters(),
                completed: m
                    .records()
                    .iter()
                    .filter(|r| r.done_cycle.is_some())
                    .count() as u64,
            })
            .collect();
        let any_done = masters.iter().any(|m| m.completed > 0);
        RunReport {
            cycles: if any_done { self.last_done + 1 } else { 0 },
            records: masters.iter().flat_map(|m| m.records.clone()).collect(),
            energy_pj: self.estimator.total_energy(),
            transitions: self.estimator.total_transitions(),
            glitch_transitions: glitches,
            outcomes: masters.iter().flat_map(|m| m.outcomes.clone()).collect(),
            fault: sum_counters(masters.iter().map(|m| m.fault)),
            masters,
            grants: self.arbiter.log().to_vec(),
            stats: self.arbiter.stats().clone(),
        }
    }
}

/// Sums fault counters over masters.
fn sum_counters(it: impl Iterator<Item = FaultCounters>) -> FaultCounters {
    let mut total = FaultCounters::default();
    for c in it {
        total.injected += c.injected;
        total.retried += c.retried;
        total.aborted += c.aborted;
    }
    total
}

impl std::fmt::Debug for RtlSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtlSystem")
            .field("cycle", &self.cycle)
            .field("slaves", &self.slaves.len())
            .field("active", &self.active.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slave::SimpleMem;
    use hierbus_ec::sequences::{self, MasterOp};
    use hierbus_ec::{AccessRights, Address, AddressRange, BurstLen, SlaveConfig, WaitProfile};

    fn system_with_waits(
        ops: impl Into<std::sync::Arc<[MasterOp]>>,
        waits: WaitProfile,
    ) -> RtlSystem {
        let mem = SimpleMem::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1_0000),
            waits,
            AccessRights::RWX,
        ));
        RtlSystem::new(
            ops,
            vec![Box::new(mem)],
            PowerConfig::default(),
            GlitchConfig::off(),
        )
    }

    #[test]
    fn single_zero_wait_read_takes_one_cycle() {
        let mut sys = system_with_waits(vec![MasterOp::read(0x100)], WaitProfile::ZERO);
        let report = sys.run(100);
        assert_eq!(report.cycles, 1);
        let r = &report.records[0];
        assert_eq!(r.issue_cycle, 0);
        assert_eq!(r.addr_done_cycle, Some(0));
        assert_eq!(r.done_cycle, Some(0));
        assert_eq!(r.data[0], SimpleMem::fill_pattern(Address::new(0x100)));
    }

    #[test]
    fn wait_states_stretch_the_transaction() {
        // 1 address wait + 2 read waits: addr done at cycle 1, beat done
        // at cycle 3.
        let mut sys = system_with_waits(vec![MasterOp::read(0x100)], WaitProfile::new(1, 2, 0));
        let report = sys.run(100);
        let r = &report.records[0];
        assert_eq!(r.addr_done_cycle, Some(1));
        assert_eq!(r.done_cycle, Some(3));
        assert_eq!(report.cycles, 4);
    }

    #[test]
    fn back_to_back_reads_pipeline_one_per_cycle() {
        let ops = sequences::back_to_back_reads().ops;
        let mut sys = system_with_waits(ops, WaitProfile::ZERO);
        let report = sys.run(100);
        assert_eq!(report.cycles, 4);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.done_cycle, Some(i as u64));
        }
    }

    #[test]
    fn burst_read_beats_complete_one_per_cycle() {
        let ops = vec![MasterOp::burst_read(0x200, BurstLen::B4)];
        let mut sys = system_with_waits(ops, WaitProfile::ZERO);
        let report = sys.run(100);
        // Address completes cycle 0, beats complete cycles 0..=3.
        assert_eq!(report.cycles, 4);
        assert_eq!(report.records[0].data.len(), 4);
    }

    #[test]
    fn reads_overtake_slow_writes() {
        let s = sequences::read_after_write_reordered();
        let mut sys = system_with_waits(s.ops, s.waits);
        let report = sys.run(100);
        let write = &report.records[0];
        let read = &report.records[1];
        assert!(read.done_cycle.unwrap() < write.done_cycle.unwrap());
    }

    #[test]
    fn write_then_read_data_roundtrip() {
        let ops = vec![
            MasterOp::write(0x300, 0x1234_5678),
            MasterOp::read(0x300).after_idle(3),
        ];
        let mut sys = system_with_waits(ops, WaitProfile::ZERO);
        let report = sys.run(100);
        assert_eq!(report.records[1].data[0], 0x1234_5678);
    }

    #[test]
    fn decode_error_terminates_with_error() {
        let ops = vec![MasterOp::read(0x5_0000)]; // outside the slave window
        let mut sys = system_with_waits(ops, WaitProfile::ZERO);
        let report = sys.run(100);
        let r = &report.records[0];
        assert!(matches!(r.error, Some(BusError::Decode(_))));
        assert_eq!(r.done_cycle, Some(0));
    }

    #[test]
    fn rights_violation_is_an_error() {
        let rom = SimpleMem::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1000),
            WaitProfile::ZERO,
            AccessRights::RX,
        ));
        let mut sys = RtlSystem::new(
            vec![MasterOp::write(0x10, 1)],
            vec![Box::new(rom)],
            PowerConfig::default(),
            GlitchConfig::off(),
        );
        let report = sys.run(100);
        assert!(matches!(
            report.records[0].error,
            Some(BusError::AccessViolation(..))
        ));
    }

    #[test]
    fn all_spec_scenarios_complete() {
        for scenario in sequences::all_scenarios() {
            let mut sys = RtlSystem::for_scenario(&scenario);
            let report = sys.run(10_000);
            assert!(report.cycles > 0, "{}", scenario.name);
            for r in &report.records {
                assert!(r.error.is_none(), "{}: {:?}", scenario.name, r.error);
            }
        }
    }

    #[test]
    fn energy_grows_with_traffic() {
        let short = {
            let mut sys = system_with_waits(vec![MasterOp::read(0x100)], WaitProfile::ZERO);
            sys.set_glitch(GlitchConfig::default());
            sys.run(100).energy_pj
        };
        let long = {
            let ops: Vec<MasterOp> = (0..16).map(|i| MasterOp::read(0x100 + 4 * i)).collect();
            let mut sys = system_with_waits(ops, WaitProfile::ZERO);
            sys.set_glitch(GlitchConfig::default());
            sys.run(1000).energy_pj
        };
        assert!(long > short);
        assert!(short > 0.0);
    }

    #[test]
    fn glitches_add_energy_without_changing_timing() {
        let ops: Vec<MasterOp> = (0..32).map(|i| MasterOp::read(0x100 + 4 * i)).collect();
        let mut clean = system_with_waits(ops.clone(), WaitProfile::ZERO);
        let clean_report = clean.run(1000);
        let mut hazy = system_with_waits(ops, WaitProfile::ZERO);
        hazy.set_glitch(GlitchConfig::default());
        let hazy_report = hazy.run(1000);
        assert_eq!(clean_report.cycles, hazy_report.cycles);
        assert!(hazy_report.energy_pj > clean_report.energy_pj);
        assert!(hazy_report.glitch_transitions > 0);
        assert_eq!(clean_report.glitch_transitions, 0);
    }

    #[test]
    fn frame_log_covers_run_plus_return_to_idle() {
        let mut sys = system_with_waits(vec![MasterOp::read(0x100)], WaitProfile::new(1, 1, 0));
        sys.enable_frame_log();
        let report = sys.run(100);
        let frames = sys.frames().unwrap();
        assert_eq!(frames.len() as u64, report.cycles + 1);
        let last = frames.last().unwrap();
        assert!(
            !last.a_valid && !last.r_valid && !last.w_valid,
            "bus settles idle"
        );
    }

    #[test]
    fn waveform_records_bus_activity() {
        let mut sys = system_with_waits(vec![MasterOp::read(0x100)], WaitProfile::ZERO);
        sys.enable_waveform();
        sys.run(100);
        let vcd = sys.waveform_vcd().expect("waveform enabled");
        assert!(vcd.contains("$var wire 36"));
        assert!(vcd.contains("a_addr"));
        assert!(vcd.contains("b100000000 ")); // 0x100 on the address bus
    }

    #[test]
    fn two_masters_interleave_without_collisions() {
        use hierbus_ec::{DmaParams, DmaProgram, TxnOutcome, DMA_ID_BASE};
        let cpu = sequences::random_mix(
            7,
            sequences::MixParams {
                count: 40,
                ..sequences::MixParams::default()
            },
        );
        let dma = DmaProgram::seeded(9, DmaParams::default());
        let ms = MultiScenario::new("t", cpu, &dma, ArbitrationPolicy::RoundRobin);
        let mut sys = RtlSystem::for_multi_scenario(&ms);
        let report = sys.run(1_000_000);
        assert_eq!(report.masters.len(), 2);
        assert!(report.masters[1].completed > 0);
        for m in &report.masters {
            assert!(m.outcomes.iter().all(|o| *o == TxnOutcome::Ok));
        }
        assert!(report.masters[1]
            .records
            .iter()
            .all(|r| r.id.0 >= DMA_ID_BASE));
        // Exactly one grant per issued attempt, strictly cycle-ordered.
        assert_eq!(report.grants.len(), report.records.len());
        assert!(report.grants.windows(2).all(|w| w[0].0 < w[1].0));
        // Grant counts partition the records across the two masters.
        assert_eq!(
            report.stats.grants[0] as usize,
            report.masters[0].records.len()
        );
        assert_eq!(
            report.stats.grants[1] as usize,
            report.masters[1].records.len()
        );
    }

    #[test]
    fn single_master_multi_path_is_the_legacy_path() {
        // The arbitration split must not change single-master behavior:
        // a one-master system grants whenever the master requests.
        let ops = sequences::random_mix(
            3,
            sequences::MixParams {
                count: 60,
                ..sequences::MixParams::default()
            },
        )
        .ops;
        let mut sys = system_with_waits(ops, WaitProfile::new(1, 1, 2));
        let report = sys.run(1_000_000);
        assert_eq!(report.grants.len(), report.records.len());
        for ((cycle, m), r) in report.grants.iter().zip(report.records.iter()) {
            assert_eq!(*m, 0);
            assert_eq!(*cycle, r.issue_cycle);
        }
    }

    #[test]
    fn estimation_disable_keeps_timing() {
        let ops = sequences::burst_writes().ops;
        let waits = sequences::burst_writes().waits;
        let mut with = system_with_waits(ops.clone(), waits);
        let r1 = with.run(1000);
        let mut without = system_with_waits(ops, waits);
        without.disable_estimation();
        let r2 = without.run(1000);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r2.energy_pj, 0.0);
    }
}
