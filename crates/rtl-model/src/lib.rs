//! Cycle-true, signal-level reference model of the EC-like bus — the
//! workspace's *layer 0*.
//!
//! The paper evaluates its transaction-level models against an RTL bus
//! implementation simulated with a gate-level power estimator (Philips
//! *Diesel*). Neither artifact is available, so this crate provides the
//! substitute: an explicit-wire, cycle-accurate model of the same protocol
//! with a parasitics-based per-transition power estimator, including the
//! two effects a cycle-boundary TLM view cannot capture —
//!
//! * **glitches**: combinational settling through intermediate values
//!   (momentary toggles of otherwise-stable wires, see [`glitch`]), and
//! * **slope spread**: rise/fall/partial-swing transitions with distinct
//!   energy factors (see [`power`]).
//!
//! # Canonical protocol timing
//!
//! Both this reference and the layer-1 TLM model implement these rules, so
//! their cycle counts must agree exactly (Table 1's 0% row). One tick of
//! the kernel clock = one bus cycle; a transaction *issues* in the cycle
//! the master first presents it.
//!
//! 1. The address channel carries one address phase at a time. A phase
//!    started in cycle `t` completes in cycle `t + addr_wait` (the slave's
//!    address wait states); with zero waits it completes in the cycle it
//!    is initiated. The next phase may start in the following cycle.
//! 2. A decode failure or rights violation terminates the transaction in
//!    the start cycle with an address-phase error; no data phase occurs.
//! 3. Read and write data channels are independent (separated
//!    unidirectional buses) and each carry one beat at a time, serving
//!    transactions of their direction in address-phase order. Reordering
//!    between directions follows from the independence.
//! 4. Beat 0 becomes eligible in the cycle its address phase completes
//!    and, with zero data waits, completes that same cycle ("address and
//!    data phases can complete in the same cycle they are initiated").
//!    A beat with `w` data wait states completes `w` cycles after it
//!    starts; beat `k+1` starts the cycle after beat `k` completes.
//! 5. A transaction completes with its last beat; the master observes
//!    completion on its next interface call (the following rising edge).
//! 6. The master issues at most one new transaction per cycle and never
//!    exceeds the per-category outstanding limits (4/4/4).

//! # Example
//!
//! ```
//! use hierbus_rtl::RtlSystem;
//! use hierbus_ec::sequences;
//!
//! let scenario = sequences::single_read(false);
//! let mut sys = RtlSystem::for_scenario(&scenario);
//! let report = sys.run(1_000);
//! assert_eq!(report.cycles, 1); // a zero-wait read completes in one cycle
//! assert!(report.energy_pj > 0.0);
//! ```

pub mod channels;
pub mod glitch;
pub mod master;
pub mod power;
pub mod slave;
pub mod system;
pub mod wires;

pub use glitch::GlitchConfig;
pub use master::{RtlMaster, TxnRecord};
pub use power::{GateLevelPowerEstimator, PowerConfig, WireDb};
pub use slave::{RtlSlaveModel, SimpleMem};
pub use system::{MasterRunReport, RtlSystem, RunReport};
pub use wires::InterfaceWires;
