//! The stimulus-driven master (bus interface unit).

use hierbus_ec::{
    AccessKind, BusError, FaultCounters, FaultKind, FaultPlan, MasterOp, OutstandingLimits,
    OutstandingTracker, RetryPolicy, Transaction, TxnCategory, TxnId, TxnOutcome,
};

pub use hierbus_ec::record::TxnRecord;

/// Per-attempt bookkeeping, parallel to the record list.
#[derive(Debug, Clone, Copy)]
struct AttemptMeta {
    /// Stimulus position this attempt serves.
    op: usize,
    /// 0-based attempt number (0 = first issue, 1 = first retry, ...).
    attempt: u32,
    /// Timed out: the master no longer waits for it, but the bus still
    /// drains the transaction to its defined idle state.
    abandoned: bool,
}

/// A scheduled reissue of a failed attempt.
#[derive(Debug, Clone, Copy)]
struct Retry {
    op: usize,
    attempt: u32,
    /// Earliest cycle the reissue may happen (pickup + backoff).
    earliest: u64,
}

/// The master: replays a [`MasterOp`] stimulus list, enforcing the
/// one-issue-per-cycle rule and the outstanding-transaction ceilings, and
/// records every transaction's lifetime.
///
/// With a [`FaultPlan`] and [`RetryPolicy`] attached ([`set_faults`]
/// (Self::set_faults)) the master mirrors the TLM masters' robustness
/// policy exactly: slave errors are retried with bounded backoff
/// (reissue no earlier than the cycle after completion plus the backoff
/// gap — the cycle a TLM master would pick the failure up), attempts
/// past the timeout are abandoned, and every stimulus op settles to a
/// [`TxnOutcome`].
#[derive(Debug)]
pub struct RtlMaster {
    ops: std::sync::Arc<[MasterOp]>,
    next_op: usize,
    idle_left: u32,
    next_id: TxnId,
    tracker: OutstandingTracker,
    records: Vec<TxnRecord>,
    meta: Vec<AttemptMeta>,
    /// Completions seen this cycle; their limit slots free next cycle
    /// (the master picks results up on its next interface call).
    pending_frees: Vec<TxnCategory>,
    plan: FaultPlan,
    policy: RetryPolicy,
    retries: Vec<Retry>,
    outcomes: Vec<Option<TxnOutcome>>,
    counters: FaultCounters,
}

impl RtlMaster {
    /// Creates a master that will replay `ops` under the given limits.
    pub fn new(ops: impl Into<std::sync::Arc<[MasterOp]>>, limits: OutstandingLimits) -> Self {
        let ops = ops.into();
        let idle_left = ops.first().map_or(0, |op| op.idle_before);
        let outcomes = vec![None; ops.len()];
        RtlMaster {
            ops,
            next_op: 0,
            idle_left,
            next_id: TxnId(0),
            tracker: OutstandingTracker::new(limits),
            records: Vec::new(),
            meta: Vec::new(),
            pending_frees: Vec::new(),
            plan: FaultPlan::new(),
            policy: RetryPolicy::NONE,
            retries: Vec::new(),
            outcomes,
            counters: FaultCounters::default(),
        }
    }

    /// Attaches a fault plan and robustness policy. Must be called
    /// before the first cycle.
    pub fn set_faults(&mut self, plan: FaultPlan, policy: RetryPolicy) {
        assert_eq!(self.next_op, 0, "faults must be configured before running");
        self.plan = plan;
        self.policy = policy;
    }

    /// Sets the base transaction id. In a multi-master system each
    /// master gets a disjoint id window (e.g. the DMA engine starts at
    /// `DMA_ID_BASE`) so any trace id resolves to its master. Must be
    /// called before the first issue.
    pub fn set_id_base(&mut self, base: u64) {
        assert!(
            self.next_op == 0 && self.records.is_empty(),
            "id base must be set before the first issue"
        );
        self.next_id = TxnId(base);
    }

    /// The attached fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The `fault.*` counters so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    /// Per-op outcomes; `None` while the op is still unresolved.
    pub fn outcomes(&self) -> &[Option<TxnOutcome>] {
        &self.outcomes
    }

    /// Rising-edge step: frees limit slots of last cycle's completions,
    /// applies the timeout, then issues — a due retry first, else the
    /// next op. Returns the transaction to place on the bus together
    /// with the fault resolved from the plan for this attempt, if one
    /// issues this cycle.
    ///
    /// Equivalent to [`begin_cycle`](Self::begin_cycle) +
    /// [`arbitration_request`](Self::arbitration_request) + (on a true
    /// request line) [`issue_granted`](Self::issue_granted) — the
    /// single-master fast path where the grant is unconditional.
    pub fn rising_edge(&mut self, cycle: u64) -> Option<(usize, Transaction, Option<FaultKind>)> {
        self.begin_cycle(cycle);
        if self.arbitration_request(cycle) {
            Some(self.issue_granted(cycle))
        } else {
            None
        }
    }

    /// Rising-edge bookkeeping shared by granted and ungranted cycles:
    /// frees limit slots of last cycle's completions and applies the
    /// timeout. A multi-master system runs this on every master each
    /// cycle before arbitration.
    pub fn begin_cycle(&mut self, cycle: u64) {
        for cat in self.pending_frees.drain(..) {
            self.tracker.complete(cat);
        }

        // Timeout: abandon in-flight attempts past their deadline. The
        // bus is not cancelled — it drains the transaction on its own.
        if let Some(t) = self.policy.timeout {
            for (r, m) in self.records.iter().zip(self.meta.iter_mut()) {
                if r.done_cycle.is_none() && !m.abandoned && cycle >= r.issue_cycle + t {
                    m.abandoned = true;
                    self.outcomes[m.op] = Some(TxnOutcome::Aborted);
                    self.counters.aborted += 1;
                }
            }
        }
    }

    /// Drives the request line for this cycle: true when the master has
    /// an issuable attempt — a due retry or fresh stimulus with a free
    /// limit slot. A fresh op's idle countdown is consumed here, on the
    /// request evaluation, so a lost arbitration costs the same idle
    /// budget as a single-master stall would.
    pub fn arbitration_request(&mut self, cycle: u64) -> bool {
        // A due retry has priority over fresh stimulus (and, like fresh
        // stimulus, waits head-of-line on a free limit slot). The fresh
        // op's idle countdown does not advance on a retry cycle —
        // matching the TLM masters.
        if let Some(pos) = self.due_retry(cycle) {
            let category = TxnCategory::of(self.ops[self.retries[pos].op].kind);
            return self.tracker.can_issue(category);
        }
        if self.next_op >= self.ops.len() {
            return false;
        }
        if self.idle_left > 0 {
            self.idle_left -= 1;
            return false;
        }
        let category = TxnCategory::of(self.ops[self.next_op].kind);
        self.tracker.can_issue(category)
    }

    /// Issues the attempt whose request line won arbitration this
    /// cycle. Must follow an [`arbitration_request`]
    /// (Self::arbitration_request) that returned true in the same
    /// cycle. Returns the record index, the transaction to place on
    /// the bus, and the fault resolved for this attempt.
    pub fn issue_granted(&mut self, cycle: u64) -> (usize, Transaction, Option<FaultKind>) {
        if let Some(pos) = self.due_retry(cycle) {
            let retry = self.retries[pos];
            let category = TxnCategory::of(self.ops[retry.op].kind);
            assert!(
                self.tracker.try_issue(category),
                "granted retry without a free limit slot"
            );
            self.retries.remove(pos);
            return self.issue_attempt(cycle, retry.op, retry.attempt);
        }
        let op = self.next_op;
        let category = TxnCategory::of(self.ops[op].kind);
        assert!(
            self.tracker.try_issue(category),
            "granted issue without a free limit slot"
        );
        let issued = self.issue_attempt(cycle, op, 0);
        self.next_op += 1;
        self.idle_left = self.ops.get(self.next_op).map_or(0, |op| op.idle_before);
        issued
    }

    /// Builds the record and metadata of attempt `attempt` of `op_idx`.
    fn issue_attempt(
        &mut self,
        cycle: u64,
        op_idx: usize,
        attempt: u32,
    ) -> (usize, Transaction, Option<FaultKind>) {
        let op = &self.ops[op_idx];
        let id = self.next_id;
        self.next_id = id.next();
        let txn = Transaction::new(id, op.kind, op.addr, op.width, op.burst, op.data.clone());
        let fault = self.plan.resolve(op_idx, attempt);
        if fault.is_some() {
            self.counters.injected += 1;
        }
        let rec_idx = self.records.len();
        self.records.push(TxnRecord {
            id,
            kind: op.kind,
            addr: op.addr,
            width: op.width,
            burst: op.burst,
            issue_cycle: cycle,
            addr_done_cycle: None,
            done_cycle: None,
            error: None,
            data: if op.kind == AccessKind::DataWrite {
                op.data.to_vec()
            } else {
                Vec::new()
            },
        });
        self.meta.push(AttemptMeta {
            op: op_idx,
            attempt,
            abandoned: false,
        });
        (rec_idx, txn, fault)
    }

    /// The due retry to issue this cycle: earliest deadline first, ties
    /// broken by op index — fully deterministic.
    fn due_retry(&self, cycle: u64) -> Option<usize> {
        self.retries
            .iter()
            .enumerate()
            .filter(|(_, r)| r.earliest <= cycle)
            .min_by_key(|(_, r)| (r.earliest, r.op))
            .map(|(i, _)| i)
    }

    /// Records an address-phase completion.
    pub fn address_done(&mut self, rec: usize, cycle: u64) {
        self.records[rec].addr_done_cycle = Some(cycle);
    }

    /// Records a completed read beat's data.
    pub fn read_beat(&mut self, rec: usize, beat: u32, data: u32) {
        let rec = &mut self.records[rec];
        debug_assert_eq!(rec.data.len(), beat as usize, "beats arrive in order");
        rec.data.push(data);
    }

    /// Records transaction completion (successful or errored); the limit
    /// slot frees on the next rising edge. Non-abandoned attempts are
    /// judged: a retryable error with budget left schedules a reissue no
    /// earlier than `cycle + 1 + backoff` (a TLM master picks the
    /// completion up at the next rising edge, so the RTL reference must
    /// not reissue sooner), anything else settles the op's outcome.
    pub fn complete(&mut self, rec: usize, cycle: u64, error: Option<BusError>) {
        let r = &mut self.records[rec];
        debug_assert!(r.done_cycle.is_none(), "{} completed twice", r.id);
        r.done_cycle = Some(cycle);
        r.error = error;
        self.pending_frees.push(TxnCategory::of(r.kind));
        let m = self.meta[rec];
        if m.abandoned {
            return;
        }
        match error {
            Some(BusError::SlaveError(_)) if m.attempt < self.policy.max_retries => {
                self.counters.retried += 1;
                self.retries.push(Retry {
                    op: m.op,
                    attempt: m.attempt + 1,
                    earliest: cycle + 1 + u64::from(self.policy.backoff(m.attempt)),
                });
            }
            Some(e) => self.outcomes[m.op] = Some(TxnOutcome::Error(e)),
            None => self.outcomes[m.op] = Some(TxnOutcome::Ok),
        }
    }

    /// Card tear: the clock stopped. Every op without a settled outcome
    /// — in flight, awaiting retry, or never issued — is aborted.
    pub fn tear_now(&mut self) {
        for o in &mut self.outcomes {
            if o.is_none() {
                *o = Some(TxnOutcome::Aborted);
                self.counters.aborted += 1;
            }
        }
        self.retries.clear();
    }

    /// True once every op has been issued and completed and no retry is
    /// pending.
    pub fn is_finished(&self) -> bool {
        self.next_op >= self.ops.len()
            && self.records.iter().all(|r| r.done_cycle.is_some())
            && self.retries.is_empty()
    }

    /// The transaction records accumulated so far.
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// Consumes the master and returns the records.
    pub fn into_records(self) -> Vec<TxnRecord> {
        self.records
    }

    /// The outstanding-transaction tracker (for occupancy diagnostics).
    pub fn tracker(&self) -> &OutstandingTracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::BurstLen;

    fn read_op(addr: u64) -> MasterOp {
        MasterOp::read(addr)
    }

    #[test]
    fn issues_one_op_per_cycle_in_order() {
        let mut m = RtlMaster::new(
            vec![read_op(0), read_op(4)],
            OutstandingLimits::CORE_DEFAULT,
        );
        let (r0, t0, f0) = m.rising_edge(0).expect("first issue");
        assert_eq!(r0, 0);
        assert_eq!(t0.id, TxnId(0));
        assert!(f0.is_none());
        let (r1, t1, _) = m.rising_edge(1).expect("second issue");
        assert_eq!(r1, 1);
        assert_eq!(t1.id, TxnId(1));
        assert!(m.rising_edge(2).is_none());
    }

    #[test]
    fn idle_before_delays_issue() {
        let mut m = RtlMaster::new(
            vec![read_op(0), read_op(4).after_idle(2)],
            OutstandingLimits::CORE_DEFAULT,
        );
        assert!(m.rising_edge(0).is_some());
        assert!(m.rising_edge(1).is_none());
        assert!(m.rising_edge(2).is_none());
        assert!(m.rising_edge(3).is_some());
        assert_eq!(m.records()[1].issue_cycle, 3);
    }

    #[test]
    fn limit_stall_and_release() {
        let limits = OutstandingLimits {
            instr_reads: 4,
            data_reads: 1,
            writes: 4,
        };
        let mut m = RtlMaster::new(vec![read_op(0), read_op(4)], limits);
        let (rec, _, _) = m.rising_edge(0).expect("first issue");
        assert!(m.rising_edge(1).is_none(), "stalled on limit");
        m.complete(rec, 1, None);
        // Slot frees at the next rising edge, so issue succeeds at cycle 2.
        assert!(m.rising_edge(2).is_some());
    }

    #[test]
    fn records_track_lifecycle() {
        let mut m = RtlMaster::new(
            vec![MasterOp::write(8, 0xAB)],
            OutstandingLimits::CORE_DEFAULT,
        );
        let (rec, _, _) = m.rising_edge(0).expect("issue");
        m.address_done(rec, 0);
        m.complete(rec, 2, None);
        let r = &m.records()[0];
        assert_eq!(r.addr_done_cycle, Some(0));
        assert_eq!(r.done_cycle, Some(2));
        assert_eq!(r.latency(), Some(3));
        assert!(m.is_finished());
    }

    #[test]
    fn read_beats_collect_in_order() {
        let mut m = RtlMaster::new(
            vec![MasterOp::burst_read(0, BurstLen::B2)],
            OutstandingLimits::CORE_DEFAULT,
        );
        let (rec, _, _) = m.rising_edge(0).expect("issue");
        m.read_beat(rec, 0, 0x11);
        m.read_beat(rec, 1, 0x22);
        assert_eq!(m.records()[0].data, vec![0x11, 0x22]);
    }

    #[test]
    fn not_finished_while_in_flight() {
        let mut m = RtlMaster::new(vec![read_op(0)], OutstandingLimits::CORE_DEFAULT);
        let (rec, _, _) = m.rising_edge(0).expect("issue");
        assert!(!m.is_finished());
        m.complete(rec, 0, None);
        assert!(m.is_finished());
    }

    #[test]
    fn planned_fault_resolves_at_issue() {
        use hierbus_ec::{FaultPlan, OpFault};
        let mut m = RtlMaster::new(vec![read_op(0)], OutstandingLimits::CORE_DEFAULT);
        m.set_faults(
            FaultPlan::new().with_fault(0, OpFault::once(FaultKind::Stall(3))),
            RetryPolicy::NONE,
        );
        let (_, _, fault) = m.rising_edge(0).expect("issue");
        assert_eq!(fault, Some(FaultKind::Stall(3)));
        assert_eq!(m.fault_counters().injected, 1);
    }

    #[test]
    fn slave_error_schedules_retry_after_pickup_plus_backoff() {
        use hierbus_ec::{Address, FaultPlan, OpFault};
        let mut m = RtlMaster::new(vec![read_op(0x40)], OutstandingLimits::CORE_DEFAULT);
        m.set_faults(
            FaultPlan::new().with_fault(0, OpFault::once(FaultKind::SlaveError)),
            RetryPolicy::retries(2), // backoff base 2
        );
        let (rec, _, fault) = m.rising_edge(0).expect("issue");
        assert_eq!(fault, Some(FaultKind::SlaveError));
        m.complete(rec, 4, Some(BusError::SlaveError(Address::new(0x40))));
        assert!(!m.is_finished(), "retry still pending");
        // A TLM master picks the failure up at cycle 5; backoff(0) = 2,
        // so the reissue must not land before cycle 7.
        for c in 5..7 {
            assert!(m.rising_edge(c).is_none(), "reissued too early at {c}");
        }
        let (rec2, txn2, fault2) = m.rising_edge(7).expect("retry issues");
        assert_eq!(txn2.addr, Address::new(0x40));
        assert!(fault2.is_none(), "once() fault does not refire");
        m.complete(rec2, 8, None);
        assert!(m.is_finished());
        assert_eq!(m.outcomes()[0], Some(TxnOutcome::Ok));
        assert_eq!(m.fault_counters().retried, 1);
    }

    #[test]
    fn timeout_abandons_but_completion_still_lands() {
        use hierbus_ec::FaultPlan;
        let mut m = RtlMaster::new(vec![read_op(0)], OutstandingLimits::CORE_DEFAULT);
        m.set_faults(
            FaultPlan::new(),
            RetryPolicy {
                timeout: Some(3),
                ..RetryPolicy::NONE
            },
        );
        let (rec, _, _) = m.rising_edge(0).expect("issue");
        assert!(m.rising_edge(3).is_none());
        assert_eq!(m.outcomes()[0], Some(TxnOutcome::Aborted));
        assert_eq!(m.fault_counters().aborted, 1);
        // The bus drains the transaction later; the outcome stays Aborted.
        m.complete(rec, 10, None);
        assert_eq!(m.outcomes()[0], Some(TxnOutcome::Aborted));
        assert!(m.is_finished());
    }

    #[test]
    fn tear_aborts_unsettled_ops() {
        let mut m = RtlMaster::new(
            vec![read_op(0), read_op(4)],
            OutstandingLimits::CORE_DEFAULT,
        );
        let (rec, _, _) = m.rising_edge(0).expect("issue");
        m.complete(rec, 0, None);
        m.tear_now();
        assert_eq!(m.outcomes()[0], Some(TxnOutcome::Ok));
        assert_eq!(m.outcomes()[1], Some(TxnOutcome::Aborted));
        assert_eq!(m.fault_counters().aborted, 1);
    }
}
