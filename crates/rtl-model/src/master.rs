//! The stimulus-driven master (bus interface unit).

use hierbus_ec::{
    AccessKind, BusError, MasterOp, OutstandingLimits, OutstandingTracker, Transaction,
    TxnCategory, TxnId,
};

pub use hierbus_ec::record::TxnRecord;

/// The master: replays a [`MasterOp`] stimulus list, enforcing the
/// one-issue-per-cycle rule and the outstanding-transaction ceilings, and
/// records every transaction's lifetime.
#[derive(Debug)]
pub struct RtlMaster {
    ops: Vec<MasterOp>,
    next_op: usize,
    idle_left: u32,
    next_id: TxnId,
    tracker: OutstandingTracker,
    records: Vec<TxnRecord>,
    /// Completions seen this cycle; their limit slots free next cycle
    /// (the master picks results up on its next interface call).
    pending_frees: Vec<TxnCategory>,
}

impl RtlMaster {
    /// Creates a master that will replay `ops` under the given limits.
    pub fn new(ops: Vec<MasterOp>, limits: OutstandingLimits) -> Self {
        let idle_left = ops.first().map_or(0, |op| op.idle_before);
        RtlMaster {
            ops,
            next_op: 0,
            idle_left,
            next_id: TxnId(0),
            tracker: OutstandingTracker::new(limits),
            records: Vec::new(),
            pending_frees: Vec::new(),
        }
    }

    /// Rising-edge step: frees limit slots of last cycle's completions,
    /// then possibly issues the next op. Returns the transaction to place
    /// on the bus, if one issues this cycle.
    pub fn rising_edge(&mut self, cycle: u64) -> Option<(usize, Transaction)> {
        for cat in self.pending_frees.drain(..) {
            self.tracker.complete(cat);
        }
        if self.next_op >= self.ops.len() {
            return None;
        }
        if self.idle_left > 0 {
            self.idle_left -= 1;
            return None;
        }
        let op = &self.ops[self.next_op];
        let category = TxnCategory::of(op.kind);
        if !self.tracker.try_issue(category) {
            // Stalled on the outstanding limit; retry next cycle.
            return None;
        }
        let id = self.next_id;
        self.next_id = id.next();
        let txn = Transaction::new(id, op.kind, op.addr, op.width, op.burst, op.data.clone());
        let rec_idx = self.records.len();
        self.records.push(TxnRecord {
            id,
            kind: op.kind,
            addr: op.addr,
            width: op.width,
            burst: op.burst,
            issue_cycle: cycle,
            addr_done_cycle: None,
            done_cycle: None,
            error: None,
            data: if op.kind == AccessKind::DataWrite {
                op.data.clone()
            } else {
                Vec::new()
            },
        });
        self.next_op += 1;
        self.idle_left = self.ops.get(self.next_op).map_or(0, |op| op.idle_before);
        Some((rec_idx, txn))
    }

    /// Records an address-phase completion.
    pub fn address_done(&mut self, rec: usize, cycle: u64) {
        self.records[rec].addr_done_cycle = Some(cycle);
    }

    /// Records a completed read beat's data.
    pub fn read_beat(&mut self, rec: usize, beat: u32, data: u32) {
        let rec = &mut self.records[rec];
        debug_assert_eq!(rec.data.len(), beat as usize, "beats arrive in order");
        rec.data.push(data);
    }

    /// Records transaction completion (successful or errored); the limit
    /// slot frees on the next rising edge.
    pub fn complete(&mut self, rec: usize, cycle: u64, error: Option<BusError>) {
        let r = &mut self.records[rec];
        debug_assert!(r.done_cycle.is_none(), "{} completed twice", r.id);
        r.done_cycle = Some(cycle);
        r.error = error;
        self.pending_frees.push(TxnCategory::of(r.kind));
    }

    /// True once every op has been issued and completed.
    pub fn is_finished(&self) -> bool {
        self.next_op >= self.ops.len() && self.records.iter().all(|r| r.done_cycle.is_some())
    }

    /// The transaction records accumulated so far.
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// Consumes the master and returns the records.
    pub fn into_records(self) -> Vec<TxnRecord> {
        self.records
    }

    /// The outstanding-transaction tracker (for occupancy diagnostics).
    pub fn tracker(&self) -> &OutstandingTracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::BurstLen;

    fn read_op(addr: u64) -> MasterOp {
        MasterOp::read(addr)
    }

    #[test]
    fn issues_one_op_per_cycle_in_order() {
        let mut m = RtlMaster::new(
            vec![read_op(0), read_op(4)],
            OutstandingLimits::CORE_DEFAULT,
        );
        let (r0, t0) = m.rising_edge(0).expect("first issue");
        assert_eq!(r0, 0);
        assert_eq!(t0.id, TxnId(0));
        let (r1, t1) = m.rising_edge(1).expect("second issue");
        assert_eq!(r1, 1);
        assert_eq!(t1.id, TxnId(1));
        assert!(m.rising_edge(2).is_none());
    }

    #[test]
    fn idle_before_delays_issue() {
        let mut m = RtlMaster::new(
            vec![read_op(0), read_op(4).after_idle(2)],
            OutstandingLimits::CORE_DEFAULT,
        );
        assert!(m.rising_edge(0).is_some());
        assert!(m.rising_edge(1).is_none());
        assert!(m.rising_edge(2).is_none());
        assert!(m.rising_edge(3).is_some());
        assert_eq!(m.records()[1].issue_cycle, 3);
    }

    #[test]
    fn limit_stall_and_release() {
        let limits = OutstandingLimits {
            instr_reads: 4,
            data_reads: 1,
            writes: 4,
        };
        let mut m = RtlMaster::new(vec![read_op(0), read_op(4)], limits);
        let (rec, _) = m.rising_edge(0).expect("first issue");
        assert!(m.rising_edge(1).is_none(), "stalled on limit");
        m.complete(rec, 1, None);
        // Slot frees at the next rising edge, so issue succeeds at cycle 2.
        assert!(m.rising_edge(2).is_some());
    }

    #[test]
    fn records_track_lifecycle() {
        let mut m = RtlMaster::new(
            vec![MasterOp::write(8, 0xAB)],
            OutstandingLimits::CORE_DEFAULT,
        );
        let (rec, _) = m.rising_edge(0).expect("issue");
        m.address_done(rec, 0);
        m.complete(rec, 2, None);
        let r = &m.records()[0];
        assert_eq!(r.addr_done_cycle, Some(0));
        assert_eq!(r.done_cycle, Some(2));
        assert_eq!(r.latency(), Some(3));
        assert!(m.is_finished());
    }

    #[test]
    fn read_beats_collect_in_order() {
        let mut m = RtlMaster::new(
            vec![MasterOp::burst_read(0, BurstLen::B2)],
            OutstandingLimits::CORE_DEFAULT,
        );
        let (rec, _) = m.rising_edge(0).expect("issue");
        m.read_beat(rec, 0, 0x11);
        m.read_beat(rec, 1, 0x22);
        assert_eq!(m.records()[0].data, vec![0x11, 0x22]);
    }

    #[test]
    fn not_finished_while_in_flight() {
        let mut m = RtlMaster::new(vec![read_op(0)], OutstandingLimits::CORE_DEFAULT);
        let (rec, _) = m.rising_edge(0).expect("issue");
        assert!(!m.is_finished());
        m.complete(rec, 0, None);
        assert!(m.is_finished());
    }
}
