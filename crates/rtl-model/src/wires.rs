//! The explicit wire bundle of the bus interface.

use hierbus_ec::{SignalClass, SignalFrame};
use hierbus_sim::signal::VectorUpdate;
use hierbus_sim::{Vector, Wire};

/// Every wire of the interface, grouped as in
/// [`SignalClass`]. Control bits are packed into small
/// [`Vector`]s using the same layout as [`SignalFrame`]'s packing so
/// per-class transition counts line up exactly between this model and the
/// layer-1 reconstruction.
#[derive(Debug, Clone)]
pub struct InterfaceWires {
    /// 36 address wires.
    pub a_addr: Vector,
    /// Packed address-phase control (valid, kind, width, burst, ready, error).
    pub a_ctl: Vector,
    /// 32 read-data wires.
    pub r_data: Vector,
    /// Packed read-phase control (valid, id, ready, error).
    pub r_ctl: Vector,
    /// 32 write-data wires.
    pub w_data: Vector,
    /// Packed write-phase control (valid, byte enables, id, ready, error).
    pub w_ctl: Vector,
}

/// The result of settling all six wire groups in one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SettleUpdates {
    /// Per-group update masks, indexed by [`SignalClass::index`].
    pub updates: [VectorUpdate; 6],
}

impl SettleUpdates {
    /// Total toggles across all groups.
    pub fn toggles(&self) -> u32 {
        self.updates.iter().map(|u| u.toggles()).sum()
    }
}

impl InterfaceWires {
    /// Creates the bundle with all wires low.
    pub fn new() -> Self {
        InterfaceWires {
            a_addr: Vector::new(36),
            a_ctl: Vector::new(SignalClass::AddrCtl.wires()),
            r_data: Vector::new(32),
            r_ctl: Vector::new(SignalClass::ReadCtl.wires()),
            w_data: Vector::new(32),
            w_ctl: Vector::new(SignalClass::WriteCtl.wires()),
        }
    }

    /// Schedules all wires to the values of `frame`.
    pub fn drive(&mut self, frame: &SignalFrame) {
        self.a_addr.set(frame.a_addr);
        self.a_ctl.set(Self::pack_a_ctl(frame));
        self.r_data.set(frame.r_data as u64);
        self.r_ctl.set(Self::pack_r_ctl(frame));
        self.w_data.set(frame.w_data as u64);
        self.w_ctl.set(Self::pack_w_ctl(frame));
    }

    /// Applies all scheduled values, returning per-group transition masks.
    pub fn settle(&mut self) -> SettleUpdates {
        let mut s = SettleUpdates::default();
        s.updates[SignalClass::AddrBus.index()] = self.a_addr.update();
        s.updates[SignalClass::AddrCtl.index()] = self.a_ctl.update();
        s.updates[SignalClass::ReadData.index()] = self.r_data.update();
        s.updates[SignalClass::ReadCtl.index()] = self.r_ctl.update();
        s.updates[SignalClass::WriteData.index()] = self.w_data.update();
        s.updates[SignalClass::WriteCtl.index()] = self.w_ctl.update();
        s
    }

    /// Reads the settled wires back as a [`SignalFrame`].
    pub fn snapshot(&self) -> SignalFrame {
        let a = self.a_ctl.value();
        let r = self.r_ctl.value();
        let w = self.w_ctl.value();
        SignalFrame {
            a_valid: a & 1 != 0,
            a_addr: self.a_addr.value(),
            a_kind: ((a >> 1) & 0x3) as u8,
            a_width: ((a >> 3) & 0x3) as u8,
            a_burst: ((a >> 5) & 0x3) as u8,
            a_ready: (a >> 7) & 1 != 0,
            a_error: (a >> 8) & 1 != 0,
            r_valid: r & 1 != 0,
            r_data: self.r_data.value() as u32,
            r_id: ((r >> 1) & 0x7) as u8,
            r_ready: (r >> 4) & 1 != 0,
            r_error: (r >> 5) & 1 != 0,
            w_valid: w & 1 != 0,
            w_data: self.w_data.value() as u32,
            w_ben: ((w >> 1) & 0xf) as u8,
            w_id: ((w >> 5) & 0x7) as u8,
            w_ready: (w >> 8) & 1 != 0,
            w_error: (w >> 9) & 1 != 0,
        }
    }

    /// The wire group of `class` as a shared reference.
    pub fn group(&self, class: SignalClass) -> &Vector {
        match class {
            SignalClass::AddrBus => &self.a_addr,
            SignalClass::AddrCtl => &self.a_ctl,
            SignalClass::ReadData => &self.r_data,
            SignalClass::ReadCtl => &self.r_ctl,
            SignalClass::WriteData => &self.w_data,
            SignalClass::WriteCtl => &self.w_ctl,
        }
    }

    /// The wire group of `class` as an exclusive reference.
    pub fn group_mut(&mut self, class: SignalClass) -> &mut Vector {
        match class {
            SignalClass::AddrBus => &mut self.a_addr,
            SignalClass::AddrCtl => &mut self.a_ctl,
            SignalClass::ReadData => &mut self.r_data,
            SignalClass::ReadCtl => &mut self.r_ctl,
            SignalClass::WriteData => &mut self.w_data,
            SignalClass::WriteCtl => &mut self.w_ctl,
        }
    }

    fn pack_a_ctl(f: &SignalFrame) -> u64 {
        (f.a_valid as u64)
            | ((f.a_kind as u64 & 0x3) << 1)
            | ((f.a_width as u64 & 0x3) << 3)
            | ((f.a_burst as u64 & 0x3) << 5)
            | ((f.a_ready as u64) << 7)
            | ((f.a_error as u64) << 8)
    }

    fn pack_r_ctl(f: &SignalFrame) -> u64 {
        (f.r_valid as u64)
            | ((f.r_id as u64 & 0x7) << 1)
            | ((f.r_ready as u64) << 4)
            | ((f.r_error as u64) << 5)
    }

    fn pack_w_ctl(f: &SignalFrame) -> u64 {
        (f.w_valid as u64)
            | ((f.w_ben as u64 & 0xf) << 1)
            | ((f.w_id as u64 & 0x7) << 5)
            | ((f.w_ready as u64) << 8)
            | ((f.w_error as u64) << 9)
    }
}

impl Default for InterfaceWires {
    fn default() -> Self {
        InterfaceWires::new()
    }
}

/// A one-bit view kept for API completeness where single wires are probed
/// in tests.
#[derive(Debug, Clone, Default)]
pub struct ProbeWire(pub Wire);

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::{AccessKind, BurstLen, DataWidth};

    #[test]
    fn drive_settle_snapshot_roundtrip() {
        let mut wires = InterfaceWires::new();
        let mut frame = SignalFrame::default();
        frame.drive_address(
            0xA_BCDE_F012,
            AccessKind::DataWrite,
            DataWidth::W16,
            BurstLen::Single,
            true,
            false,
        );
        frame.drive_write(0x1234_5678, 0b0011, 5, true, false);
        frame.drive_read(0x9ABC_DEF0, 2, true, true);
        wires.drive(&frame);
        wires.settle();
        assert_eq!(wires.snapshot(), frame);
    }

    #[test]
    fn settle_toggle_counts_match_frame_diff() {
        let mut wires = InterfaceWires::new();
        let prev = SignalFrame::default();
        let mut cur = prev;
        cur.drive_address(
            0xFF,
            AccessKind::DataRead,
            DataWidth::W32,
            BurstLen::B4,
            true,
            false,
        );
        cur.drive_read(0xFFFF_0000, 3, true, false);
        wires.drive(&cur);
        let settled = wires.settle();
        let diff = cur.diff(&prev);
        for class in SignalClass::ALL {
            assert_eq!(
                settled.updates[class.index()].toggles(),
                diff.get(class),
                "mismatch in {class}"
            );
        }
    }

    #[test]
    fn group_accessors_select_the_right_widths() {
        let wires = InterfaceWires::new();
        for class in SignalClass::ALL {
            assert_eq!(wires.group(class).width(), class.wires(), "{class}");
        }
    }

    #[test]
    fn per_bit_counters_accumulate_across_cycles() {
        let mut wires = InterfaceWires::new();
        for i in 0..4u64 {
            // bit 0 toggles every cycle, bit 1 every other cycle
            let f = SignalFrame {
                a_addr: i,
                ..SignalFrame::default()
            };
            wires.drive(&f);
            wires.settle();
        }
        assert_eq!(wires.a_addr.bit_toggles(0), 3);
        assert_eq!(wires.a_addr.bit_toggles(1), 1);
    }
}
