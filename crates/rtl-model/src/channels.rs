//! Address- and data-channel state machines.
//!
//! These implement the canonical timing rules listed in the
//! [crate docs](crate): one address phase at a time, independent read and
//! write beat channels, wait-state countdowns, beat `k+1` starting the
//! cycle after beat `k` completes. The layer-1 TLM bus implements the same
//! rules over queues; integration tests assert cycle-exact agreement.

use hierbus_ec::BusError;
use std::collections::VecDeque;

/// Index of an active transaction in the system's table.
pub(crate) type ActiveIdx = usize;

/// The address channel: serialises address phases.
#[derive(Debug, Default)]
pub struct AddressChannel {
    queue: VecDeque<ActiveIdx>,
    /// Wait count and pre-detected error per queue entry, kept in lockstep
    /// with `queue`.
    meta: VecDeque<(u32, Option<BusError>)>,
    current: Option<AddrPhase>,
}

#[derive(Debug)]
struct AddrPhase {
    idx: ActiveIdx,
    waits_left: u32,
    error: Option<BusError>,
}

/// The outcome of one address-channel cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrCycle {
    /// Nothing to do this cycle.
    Idle,
    /// A phase is in progress (wait state); the address wires stay driven.
    Busy(ActiveIdx),
    /// The phase of this transaction completed successfully this cycle.
    Done(ActiveIdx),
    /// The phase terminated with an error this cycle.
    Failed(ActiveIdx, BusError),
}

impl AddressChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a newly issued transaction. `error` carries a decode or
    /// rights failure detected by the bus controller; an errored phase
    /// still occupies the channel for one cycle (the error response).
    pub fn push(&mut self, idx: ActiveIdx, addr_waits: u32, error: Option<BusError>) {
        self.queue.push_back(idx);
        self.meta.push_back((addr_waits, error));
    }

    /// True if no phase is active or queued.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    /// Advances one cycle.
    pub fn step(&mut self) -> AddrCycle {
        if self.current.is_none() {
            if let Some(idx) = self.queue.pop_front() {
                let (waits, error) = self.meta.pop_front().expect("meta in sync");
                self.current = Some(AddrPhase {
                    idx,
                    waits_left: if error.is_some() { 0 } else { waits },
                    error,
                });
            } else {
                return AddrCycle::Idle;
            }
        }
        let phase = self.current.as_mut().expect("phase just ensured");
        if phase.waits_left > 0 {
            phase.waits_left -= 1;
            return AddrCycle::Busy(phase.idx);
        }
        let done = self.current.take().expect("phase present");
        match done.error {
            Some(e) => AddrCycle::Failed(done.idx, e),
            None => AddrCycle::Done(done.idx),
        }
    }
}

/// A data channel (one instance for reads, one for writes).
#[derive(Debug, Default)]
pub struct DataChannel {
    queue: VecDeque<DataJob>,
    current: Option<BeatState>,
}

#[derive(Debug, Clone, Copy)]
struct DataJob {
    idx: ActiveIdx,
    beats: u32,
    wait_per_beat: u32,
    /// Extra wait states inserted before beat 0 only (injected stall
    /// faults stretch the first beat, like a dynamically busy slave).
    first_beat_extra: u32,
}

#[derive(Debug, Clone, Copy)]
struct BeatState {
    job: DataJob,
    beat: u32,
    waits_left: u32,
    /// Set when the beat was armed in a previous cycle's completion and
    /// must not complete before its own start cycle has elapsed.
    armed_next_cycle: bool,
}

/// The outcome of one data-channel cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataCycle {
    /// Nothing active.
    Idle,
    /// A beat is waiting on the slave.
    Busy(ActiveIdx),
    /// Beat `beat` of this transaction completed this cycle; `last` marks
    /// the transaction's final beat.
    Beat {
        /// The transaction whose beat completed.
        idx: ActiveIdx,
        /// Zero-based beat number.
        beat: u32,
        /// True for the final beat.
        last: bool,
    },
}

impl DataChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues the data phase of a transaction whose address phase
    /// completed this cycle. Eligible immediately (beat 0 may complete in
    /// this same cycle if the channel is free and there are no waits).
    /// `first_beat_extra` adds wait states to beat 0 only — the stall
    /// fault of the robustness layer.
    pub fn push(&mut self, idx: ActiveIdx, beats: u32, wait_per_beat: u32, first_beat_extra: u32) {
        self.queue.push_back(DataJob {
            idx,
            beats,
            wait_per_beat,
            first_beat_extra,
        });
    }

    /// Drops the in-progress transfer (remaining beats never run). Used
    /// when an injected slave error terminates the transaction on its
    /// first beat. Queued jobs behind it are unaffected.
    pub fn cancel_current(&mut self) {
        self.current = None;
    }

    /// True if no beat is active or queued.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    /// Advances one cycle.
    pub fn step(&mut self) -> DataCycle {
        if self.current.is_none() {
            if let Some(job) = self.queue.pop_front() {
                self.current = Some(BeatState {
                    job,
                    beat: 0,
                    waits_left: job.wait_per_beat + job.first_beat_extra,
                    armed_next_cycle: false,
                });
            } else {
                return DataCycle::Idle;
            }
        }
        let st = self.current.as_mut().expect("beat just ensured");
        if st.armed_next_cycle {
            // This beat was armed when the previous beat completed; it
            // starts now.
            st.armed_next_cycle = false;
        }
        if st.waits_left > 0 {
            st.waits_left -= 1;
            return DataCycle::Busy(st.job.idx);
        }
        let idx = st.job.idx;
        let beat = st.beat;
        let last = beat + 1 == st.job.beats;
        if last {
            self.current = None;
        } else {
            st.beat += 1;
            st.waits_left = st.job.wait_per_beat;
            st.armed_next_cycle = true;
        }
        DataCycle::Beat { idx, beat, last }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_wait_address_phase_completes_same_cycle() {
        let mut ch = AddressChannel::new();
        ch.push(0, 0, None);
        assert_eq!(ch.step(), AddrCycle::Done(0));
        assert!(ch.is_idle());
    }

    #[test]
    fn address_waits_delay_completion() {
        let mut ch = AddressChannel::new();
        ch.push(3, 2, None);
        assert_eq!(ch.step(), AddrCycle::Busy(3));
        assert_eq!(ch.step(), AddrCycle::Busy(3));
        assert_eq!(ch.step(), AddrCycle::Done(3));
    }

    #[test]
    fn address_phases_serialize() {
        let mut ch = AddressChannel::new();
        ch.push(0, 1, None);
        ch.push(1, 0, None);
        assert_eq!(ch.step(), AddrCycle::Busy(0));
        assert_eq!(ch.step(), AddrCycle::Done(0));
        // Transaction 1 starts the *next* cycle, even with zero waits.
        assert_eq!(ch.step(), AddrCycle::Done(1));
    }

    #[test]
    fn decode_error_completes_in_one_cycle_ignoring_waits() {
        use hierbus_ec::Address;
        let mut ch = AddressChannel::new();
        let err = BusError::Decode(Address::new(0xBAD));
        ch.push(7, 5, Some(err));
        assert_eq!(ch.step(), AddrCycle::Failed(7, err));
    }

    #[test]
    fn zero_wait_single_beat_completes_same_cycle() {
        let mut ch = DataChannel::new();
        ch.push(0, 1, 0, 0);
        assert_eq!(
            ch.step(),
            DataCycle::Beat {
                idx: 0,
                beat: 0,
                last: true
            }
        );
        assert!(ch.is_idle());
    }

    #[test]
    fn burst_beats_are_one_per_cycle_at_zero_wait() {
        let mut ch = DataChannel::new();
        ch.push(0, 4, 0, 0);
        for beat in 0..4 {
            assert_eq!(
                ch.step(),
                DataCycle::Beat {
                    idx: 0,
                    beat,
                    last: beat == 3
                }
            );
        }
        assert_eq!(ch.step(), DataCycle::Idle);
    }

    #[test]
    fn beat_waits_stretch_each_beat() {
        let mut ch = DataChannel::new();
        ch.push(0, 2, 1, 0);
        assert_eq!(ch.step(), DataCycle::Busy(0)); // beat 0 wait
        assert!(matches!(ch.step(), DataCycle::Beat { beat: 0, .. }));
        assert_eq!(ch.step(), DataCycle::Busy(0)); // beat 1 wait
        assert!(matches!(
            ch.step(),
            DataCycle::Beat {
                beat: 1,
                last: true,
                ..
            }
        ));
    }

    #[test]
    fn jobs_queue_in_order() {
        let mut ch = DataChannel::new();
        ch.push(0, 1, 0, 0);
        ch.push(1, 1, 0, 0);
        assert!(matches!(ch.step(), DataCycle::Beat { idx: 0, .. }));
        // Next job starts (and completes) the following cycle.
        assert!(matches!(ch.step(), DataCycle::Beat { idx: 1, .. }));
    }

    #[test]
    fn first_beat_extra_stretches_beat_zero_only() {
        let mut ch = DataChannel::new();
        ch.push(0, 2, 0, 2);
        assert_eq!(ch.step(), DataCycle::Busy(0)); // injected stall
        assert_eq!(ch.step(), DataCycle::Busy(0)); // injected stall
        assert!(matches!(ch.step(), DataCycle::Beat { beat: 0, .. }));
        // Beat 1 is back to the static wait profile (zero here).
        assert!(matches!(
            ch.step(),
            DataCycle::Beat {
                beat: 1,
                last: true,
                ..
            }
        ));
    }

    #[test]
    fn cancel_current_drops_remaining_beats() {
        let mut ch = DataChannel::new();
        ch.push(0, 4, 0, 0);
        ch.push(1, 1, 0, 0);
        assert!(matches!(ch.step(), DataCycle::Beat { beat: 0, .. }));
        ch.cancel_current();
        // The queued job behind the cancelled burst proceeds normally.
        assert!(matches!(
            ch.step(),
            DataCycle::Beat {
                idx: 1,
                last: true,
                ..
            }
        ));
        assert!(ch.is_idle());
    }
}
