//! Named counters, gauges and fixed-bucket histograms.
//!
//! The registry is deliberately shaped like [`KernelStats`]: everything
//! is sim-time based (no wall clock), snapshots are plain values, and
//! two snapshots can be diffed with [`MetricsSnapshot::since`] to
//! measure one phase of a run. A disabled registry records nothing —
//! every mutation is a branch on the `enabled` flag, and no allocation
//! happens after registration — so instrumented code can leave its
//! probes in place permanently.
//!
//! [`KernelStats`]: https://docs.rs/hierbus-sim

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram over `u64` samples (cycles, picojoule
/// integers, queue depths, ...).
///
/// `bounds` are inclusive upper bucket edges in ascending order; a
/// sample `v` lands in the first bucket with `v <= bound`, and samples
/// above the last bound land in an implicit overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub name: String,
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts, `bounds.len() + 1` long (last =
    /// overflow).
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Histogram {
    fn new(name: &str, bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?}: bounds must be strictly ascending"
        );
        Histogram {
            name: name.to_owned(),
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Index of the bucket a value falls in (`bounds.len()` =
    /// overflow).
    pub fn bucket_of(&self, v: u64) -> usize {
        self.bounds.partition_point(|&b| b < v)
    }

    /// The `q`-quantile (`0 < q <= 1`) estimated from the buckets, or
    /// `None` on an empty histogram.
    ///
    /// Walks the cumulative counts to the bucket containing the
    /// rank-`ceil(q·count)` sample and reports that bucket's inclusive
    /// upper bound (the tracked `max` for the overflow bucket), clamped
    /// to the observed `[min, max]` — so the estimate is exact for
    /// point masses on bucket edges and at worst one bucket wide.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = self.bounds.get(i).copied().unwrap_or(self.max);
                return Some(edge.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate (see [`percentile`](Self::percentile)).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    fn diff(&self, earlier: &Histogram) -> Histogram {
        Histogram {
            name: self.name.clone(),
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        }
    }
}

/// Point-in-time copy of every metric, diffable with
/// [`MetricsSnapshot::since`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    /// `(name, value, high-water mark)`.
    pub gauges: Vec<(String, i64, i64)>,
    pub histograms: Vec<Histogram>,
}

impl MetricsSnapshot {
    /// Fieldwise difference against an earlier snapshot of the same
    /// registry (gauge values and min/max keep their current reading).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| {
                    let e = earlier
                        .counters
                        .iter()
                        .find(|(en, _)| en == n)
                        .map_or(0, |(_, ev)| *ev);
                    (n.clone(), v.saturating_sub(e))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| {
                    earlier
                        .histograms
                        .iter()
                        .find(|eh| eh.name == h.name)
                        .map_or_else(|| h.clone(), |eh| h.diff(eh))
                })
                .collect(),
        }
    }

    /// Renders every metric as `kind,name,field,value` CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter,{name},count,{v}\n"));
        }
        for (name, v, hwm) in &self.gauges {
            out.push_str(&format!("gauge,{name},value,{v}\n"));
            out.push_str(&format!("gauge,{name},hwm,{hwm}\n"));
        }
        for h in &self.histograms {
            let name = &h.name;
            out.push_str(&format!("hist,{name},count,{}\n", h.count));
            out.push_str(&format!("hist,{name},sum,{}\n", h.sum));
            if h.count > 0 {
                out.push_str(&format!("hist,{name},min,{}\n", h.min));
                out.push_str(&format!("hist,{name},max,{}\n", h.max));
            }
            for (i, c) in h.counts.iter().enumerate() {
                match h.bounds.get(i) {
                    Some(b) => out.push_str(&format!("hist,{name},le_{b},{c}\n")),
                    None => out.push_str(&format!("hist,{name},le_inf,{c}\n")),
                }
            }
        }
        out
    }
}

/// The metrics registry: register once, mutate through cheap typed ids.
///
/// ```
/// use hierbus_obs::MetricsRegistry;
/// let mut m = MetricsRegistry::new();
/// let txns = m.counter("bus.txns");
/// let lat = m.histogram("bus.latency_cycles", &[2, 4, 8, 16]);
/// m.inc(txns);
/// m.observe(lat, 5);
/// let snap = m.snapshot();
/// assert_eq!(snap.counters[0], ("bus.txns".to_owned(), 1));
/// ```
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64, i64)>,
    histograms: Vec<Histogram>,
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// A registry that accepts registrations but records nothing.
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            ..MetricsRegistry::new()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Registers (or looks up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_owned(), 0));
        CounterId(self.counters.len() - 1)
    }

    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0].1 += n;
        }
    }

    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Registers (or looks up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_owned(), 0, 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Sets a gauge; the high-water mark tracks the maximum value ever
    /// set.
    pub fn set_gauge(&mut self, id: GaugeId, v: i64) {
        if self.enabled {
            let g = &mut self.gauges[id.0];
            g.1 = v;
            g.2 = g.2.max(v);
        }
    }

    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0].1
    }

    pub fn gauge_hwm(&self, id: GaugeId) -> i64 {
        self.gauges[id.0].2
    }

    /// Registers (or looks up) a histogram with inclusive ascending
    /// upper bucket bounds.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|h| h.name == name) {
            return HistogramId(i);
        }
        self.histograms.push(Histogram::new(name, bounds));
        HistogramId(self.histograms.len() - 1)
    }

    pub fn observe(&mut self, id: HistogramId, v: u64) {
        if self.enabled {
            self.histograms[id.0].observe(v);
        }
    }

    pub fn histogram_data(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0]
    }

    /// Copies every metric out for reporting or diffing.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Shorthand for `snapshot().to_csv()`.
    pub fn to_csv(&self) -> String {
        self.snapshot().to_csv()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("a");
        let g = m.gauge("g");
        m.inc(c);
        m.add(c, 4);
        m.set_gauge(g, 7);
        m.set_gauge(g, 3);
        assert_eq!(m.counter_value(c), 5);
        assert_eq!(m.gauge_value(g), 3);
        assert_eq!(m.gauge_hwm(g), 7);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        assert_eq!(a, b);
        m.inc(a);
        m.inc(b);
        assert_eq!(m.counter_value(a), 2);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::disabled();
        let c = m.counter("a");
        let g = m.gauge("g");
        let h = m.histogram("h", &[1, 2]);
        m.inc(c);
        m.set_gauge(g, 9);
        m.observe(h, 1);
        assert_eq!(m.counter_value(c), 0);
        assert_eq!(m.gauge_hwm(g), 0);
        assert_eq!(m.histogram_data(h).count, 0);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[2, 4, 8]);
        // A value equal to a bound lands in that bound's bucket; one
        // past it lands in the next.
        for v in [0, 1, 2] {
            assert_eq!(m.histogram_data(h).bucket_of(v), 0, "v={v}");
        }
        for v in [3, 4] {
            assert_eq!(m.histogram_data(h).bucket_of(v), 1, "v={v}");
        }
        for v in [5, 8] {
            assert_eq!(m.histogram_data(h).bucket_of(v), 2, "v={v}");
        }
        for v in [9, 1000] {
            assert_eq!(m.histogram_data(h).bucket_of(v), 3, "v={v}");
        }
        for v in [0, 2, 3, 4, 8, 9] {
            m.observe(h, v);
        }
        let d = m.histogram_data(h);
        assert_eq!(d.counts, vec![2, 2, 1, 1]);
        assert_eq!((d.count, d.min, d.max), (6, 0, 9));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        MetricsRegistry::new().histogram("bad", &[4, 2]);
    }

    #[test]
    fn percentiles_match_a_known_uniform_distribution() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        // 1..=100 uniformly: p50 lands in the le_50 bucket, p90 in
        // le_90, p99 in le_100.
        for v in 1..=100 {
            m.observe(h, v);
        }
        let d = m.histogram_data(h);
        assert_eq!(d.p50(), Some(50));
        assert_eq!(d.p90(), Some(90));
        assert_eq!(d.p99(), Some(100));
        assert_eq!(d.percentile(0.01), Some(10));
        assert_eq!(d.percentile(1.0), Some(100));
    }

    #[test]
    fn percentiles_of_a_point_mass_are_the_point() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[10, 100, 1000]);
        for _ in 0..37 {
            m.observe(h, 64);
        }
        let d = m.histogram_data(h);
        // Every quantile sits in the le_100 bucket, clamped to the
        // observed max of 64.
        assert_eq!(d.p50(), Some(64));
        assert_eq!(d.p90(), Some(64));
        assert_eq!(d.p99(), Some(64));
    }

    #[test]
    fn percentile_uses_tracked_max_for_the_overflow_bucket() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[10]);
        m.observe(h, 5);
        m.observe(h, 5000);
        m.observe(h, 7000);
        let d = m.histogram_data(h);
        assert_eq!(d.p99(), Some(7000));
        // p50 is rank 2 of 3: the overflow bucket, reported as max.
        assert_eq!(d.p50(), Some(7000));
        // p33 is rank 1: the le_10 bucket, clamped up to min=5.
        assert_eq!(d.percentile(0.33), Some(10));
    }

    #[test]
    fn percentile_of_empty_or_invalid_q_is_none() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[10]);
        // Empty histogram: every quantile is absent, never 0.
        assert_eq!(m.histogram_data(h).p50(), None);
        assert_eq!(m.histogram_data(h).p99(), None);
        assert_eq!(m.histogram_data(h).percentile(1.0), None);
        m.observe(h, 1);
        assert_eq!(m.histogram_data(h).percentile(1.5), None);
        assert_eq!(m.histogram_data(h).percentile(-0.1), None);
        // The documented contract is 0 < q <= 1: q = 0 names no sample.
        assert_eq!(m.histogram_data(h).percentile(0.0), None);
        assert_eq!(m.histogram_data(h).percentile(f64::NAN), None);
    }

    #[test]
    fn percentile_of_a_single_sample_is_that_sample() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[10, 100]);
        m.observe(h, 42);
        let d = m.histogram_data(h);
        // One sample in the le_100 bucket: min = max = 42 clamps the
        // bucket edge to the sample itself at every quantile.
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(d.percentile(q), Some(42), "q={q}");
        }
    }

    #[test]
    fn percentile_with_all_samples_in_overflow_reports_tracked_max() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[10]);
        for v in [50, 60, 70] {
            m.observe(h, v);
        }
        let d = m.histogram_data(h);
        assert_eq!(d.counts, vec![0, 3]);
        // The overflow bucket has no upper bound: every quantile clamps
        // to the tracked max, never a fabricated edge or 0.
        assert_eq!(d.p50(), Some(70));
        assert_eq!(d.p99(), Some(70));
        assert_eq!(d.percentile(0.01), Some(70));
    }

    #[test]
    fn skewed_distribution_percentiles_are_ordered() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[1, 2, 4, 8, 16, 32, 64, 128]);
        // 90 fast samples, 9 medium, 1 slow tail.
        for _ in 0..90 {
            m.observe(h, 1);
        }
        for _ in 0..9 {
            m.observe(h, 20);
        }
        m.observe(h, 100);
        let d = m.histogram_data(h);
        assert_eq!(d.p50(), Some(1));
        assert_eq!(d.p90(), Some(1));
        assert_eq!(d.percentile(0.95), Some(32));
        assert_eq!(d.p99(), Some(32));
        // The 100th percentile hits the le_128 bucket but clamps to the
        // observed max.
        assert_eq!(d.percentile(1.0), Some(100));
        let (p50, p90, p99) = (d.p50().unwrap(), d.p90().unwrap(), d.p99().unwrap());
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn snapshot_since_diffs_counters_and_histograms() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("c");
        let h = m.histogram("h", &[10]);
        m.add(c, 3);
        m.observe(h, 5);
        let early = m.snapshot();
        m.add(c, 2);
        m.observe(h, 50);
        let delta = m.snapshot().since(&early);
        assert_eq!(delta.counters[0].1, 2);
        assert_eq!(delta.histograms[0].counts, vec![0, 1]);
        assert_eq!(delta.histograms[0].count, 1);
    }

    #[test]
    fn csv_has_header_and_all_kinds() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("bus.txns");
        let g = m.gauge("q.depth");
        let h = m.histogram("lat", &[4]);
        m.inc(c);
        m.set_gauge(g, 2);
        m.observe(h, 3);
        let csv = m.to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,bus.txns,count,1\n"));
        assert!(csv.contains("gauge,q.depth,hwm,2\n"));
        assert!(csv.contains("hist,lat,le_4,1\n"));
        assert!(csv.contains("hist,lat,le_inf,0\n"));
    }

    #[test]
    fn csv_histogram_emits_one_row_per_bound_plus_overflow() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("lat", &[2, 4, 8]);
        m.observe(h, 1); // le_2
        m.observe(h, 4); // le_4 (inclusive upper bound)
        m.observe(h, 100); // overflow
        let csv = m.to_csv();
        let rows: Vec<&str> = csv
            .lines()
            .filter(|l| l.starts_with("hist,lat,le_"))
            .collect();
        // Exactly bounds.len() bucket rows plus the implicit overflow
        // bucket, in bound order.
        assert_eq!(
            rows,
            vec![
                "hist,lat,le_2,1",
                "hist,lat,le_4,1",
                "hist,lat,le_8,0",
                "hist,lat,le_inf,1",
            ]
        );
        assert!(csv.contains("hist,lat,count,3\n"));
        assert!(csv.contains("hist,lat,sum,105\n"));
        assert!(csv.contains("hist,lat,min,1\n"));
        assert!(csv.contains("hist,lat,max,100\n"));
    }

    #[test]
    fn csv_empty_histogram_skips_min_max_but_keeps_buckets() {
        let mut m = MetricsRegistry::new();
        m.histogram("empty", &[10, 20]);
        let csv = m.to_csv();
        assert!(csv.contains("hist,empty,count,0\n"));
        assert!(csv.contains("hist,empty,sum,0\n"));
        // min/max are meaningless with no observations and are omitted.
        assert!(!csv.contains("hist,empty,min,"));
        assert!(!csv.contains("hist,empty,max,"));
        // All-zero bucket rows still render so the shape is stable.
        assert!(csv.contains("hist,empty,le_10,0\n"));
        assert!(csv.contains("hist,empty,le_20,0\n"));
        assert!(csv.contains("hist,empty,le_inf,0\n"));
    }

    #[test]
    fn snapshots_stay_consistent_under_concurrent_writers() {
        use std::sync::{Arc, Mutex};

        // The registry is shared behind a lock (as the serve daemon
        // shares it); interleaved writers must never produce a snapshot
        // where a counter regresses or a histogram's total disagrees
        // with its buckets.
        let shared = Arc::new(Mutex::new(MetricsRegistry::new()));
        let (c, h) = {
            let mut m = shared.lock().unwrap();
            (m.counter("requests"), m.histogram("lat", &[4, 16, 64]))
        };
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let mut m = shared.lock().unwrap();
                        m.inc(c);
                        m.observe(h, (w * 37 + i) % 100);
                    }
                })
            })
            .collect();
        let mut last_count = 0u64;
        let mut last_hist = 0u64;
        for _ in 0..200 {
            let snap = shared.lock().unwrap().snapshot();
            let count = snap.counters[0].1;
            let hist = &snap.histograms[0];
            assert!(
                count >= last_count,
                "counter regressed: {count} < {last_count}"
            );
            assert!(hist.count >= last_hist, "histogram total regressed");
            assert_eq!(
                hist.counts.iter().sum::<u64>(),
                hist.count,
                "bucket counts disagree with the histogram total"
            );
            last_count = count;
            last_hist = hist.count;
            std::thread::yield_now();
        }
        for t in writers {
            t.join().unwrap();
        }
        let snap = shared.lock().unwrap().snapshot();
        assert_eq!(snap.counters[0].1, 2000);
        assert_eq!(snap.histograms[0].count, 2000);
        assert_eq!(snap.histograms[0].counts.iter().sum::<u64>(), 2000);
    }

    #[test]
    fn csv_histogram_with_no_bounds_is_a_single_overflow_bucket() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("one", &[]);
        m.observe(h, 7);
        let csv = m.to_csv();
        let rows: Vec<&str> = csv
            .lines()
            .filter(|l| l.starts_with("hist,one,le_"))
            .collect();
        assert_eq!(rows, vec!["hist,one,le_inf,1"]);
    }
}
