//! Chrome trace-event / Perfetto JSON exporter.
//!
//! Emits the legacy JSON trace format that both `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) open directly. Each model
//! layer becomes one *process*, each protocol phase one *thread* track,
//! spans become `ph:"X"` complete events, and energy traces become
//! `ph:"C"` counter tracks. Timestamps are in microseconds; we map one
//! bus cycle to one microsecond so cycle numbers read off the viewer
//! axis unchanged.
//!
//! Output is fully deterministic (no wall clock, stable ordering) so it
//! can be golden-file tested.

use crate::span::{Phase, TraceCollector};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn phase_tid(phase: Phase) -> u32 {
    match phase {
        Phase::Request => 1,
        Phase::Address => 2,
        Phase::ReadData => 3,
        Phase::WriteData => 4,
    }
}

/// Renders one or more per-layer collectors as a single trace-event
/// JSON document. Accepts owned or borrowed collector slices.
pub fn export<C: std::borrow::Borrow<TraceCollector>>(collectors: &[C]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (i, c) in collectors.iter().enumerate() {
        let c = c.borrow();
        let pid = i + 1;
        events.push(format!(
            r#"{{"ph":"M","pid":{pid},"name":"process_name","args":{{"name":"{}"}}}}"#,
            escape(c.layer())
        ));
        for phase in Phase::ALL {
            events.push(format!(
                r#"{{"ph":"M","pid":{pid},"tid":{},"name":"thread_name","args":{{"name":"{}"}}}}"#,
                phase_tid(phase),
                phase.name()
            ));
        }
        for s in c.spans() {
            events.push(format!(
                concat!(
                    r#"{{"ph":"X","pid":{pid},"tid":{tid},"name":"{name}","cat":"bus","#,
                    r#""ts":{ts},"dur":{dur},"#,
                    r#""args":{{"trace_id":{id},"addr":"0x{addr:x}","error":{err}}}}}"#
                ),
                pid = pid,
                tid = phase_tid(s.phase),
                name = format_args!("{} {} #{}", s.class.name(), s.phase.name(), s.trace_id),
                ts = s.begin,
                dur = s.duration(),
                id = s.trace_id,
                addr = s.addr,
                err = s.error,
            ));
        }
        for t in c.counters() {
            let name = escape(&t.name);
            // Stored samples, then the dedup-dropped end of a trailing
            // plateau (if any) so the counter holds its final value for
            // the full run instead of stopping at the plateau's first
            // cycle.
            let trailing = t.trailing_sample();
            for &(cycle, value) in t.samples.iter().chain(trailing.iter()) {
                events.push(format!(
                    r#"{{"ph":"C","pid":{pid},"name":"{name}","ts":{cycle},"args":{{"{name}":{value}}}}}"#,
                ));
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Writes [`export`]ed JSON to `path`, creating parent directories.
pub fn save<C: std::borrow::Borrow<TraceCollector>>(
    path: impl AsRef<std::path::Path>,
    collectors: &[C],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, export(collectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AccessClass;

    fn sample_collector() -> TraceCollector {
        let mut c = TraceCollector::for_layer("tlm1");
        c.begin(1, Phase::Request, 0, 0x100, AccessClass::Read);
        c.end(1, Phase::Request, 1, false);
        c.begin(1, Phase::Address, 2, 0x100, AccessClass::Read);
        c.end(1, Phase::Address, 3, false);
        c.counter_sample("energy_pj", 0, 2.25);
        c
    }

    #[test]
    fn export_is_valid_trace_json_shape() {
        let c = sample_collector();
        let json = export(&[&c]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("}"));
        assert!(json.contains(r#""ph":"M","pid":1,"name":"process_name","args":{"name":"tlm1"}"#));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""name":"read address #1""#));
        assert!(json.contains(r#""ts":2,"dur":2"#));
        assert!(json
            .contains(r#""ph":"C","pid":1,"name":"energy_pj","ts":0,"args":{"energy_pj":2.25}"#));
    }

    #[test]
    fn export_is_deterministic() {
        let c = sample_collector();
        assert_eq!(export(&[&c]), export(&[&c]));
    }

    #[test]
    fn multiple_collectors_get_distinct_pids() {
        let a = sample_collector();
        let mut b = TraceCollector::for_layer("rtl");
        b.begin(1, Phase::Request, 0, 0x100, AccessClass::Read);
        b.end(1, Phase::Request, 1, false);
        let json = export(&[&a, &b]);
        assert!(json.contains(r#""pid":1,"name":"process_name","args":{"name":"tlm1"}"#));
        assert!(json.contains(r#""pid":2,"name":"process_name","args":{"name":"rtl"}"#));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn counter_plateau_ends_at_its_last_cycle() {
        // Regression: the dedup in counter_sample dropped the final
        // sample of a plateau, so exported ramps ended early.
        let mut c = TraceCollector::for_layer("tlm1");
        c.counter_sample("e", 0, 1.0);
        c.counter_sample("e", 1, 2.0);
        c.counter_sample("e", 5, 2.0);
        let json = export(&[&c]);
        assert!(json.contains(r#""name":"e","ts":1,"args":{"e":2}"#));
        assert!(json.contains(r#""name":"e","ts":5,"args":{"e":2}"#));
        // No duplicate event when the last sample was stored anyway.
        let mut c2 = TraceCollector::for_layer("tlm1");
        c2.counter_sample("e", 0, 1.0);
        c2.counter_sample("e", 5, 2.0);
        let json2 = export(&[&c2]);
        assert_eq!(json2.matches(r#""ts":5"#).count(), 1);
    }

    #[test]
    fn every_line_of_events_is_json_balanced() {
        // Cheap structural check: each event line has balanced braces.
        let c = sample_collector();
        let json = export(&[&c]);
        for line in json.lines().skip(1) {
            if line.starts_with('{') {
                let line = line.trim_end_matches(',');
                let opens = line.matches('{').count();
                let closes = line.matches('}').count();
                assert_eq!(opens, closes, "unbalanced: {line}");
            }
        }
    }
}
