//! Chrome trace-event / Perfetto JSON exporter.
//!
//! Emits the legacy JSON trace format that both `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) open directly. Each model
//! layer becomes one *process*, each protocol phase one *thread* track,
//! spans become `ph:"X"` complete events, and energy traces become
//! `ph:"C"` counter tracks. Timestamps are in microseconds; we map one
//! bus cycle to one microsecond so cycle numbers read off the viewer
//! axis unchanged.
//!
//! Output is fully deterministic (no wall clock, stable ordering) so it
//! can be golden-file tested.

use crate::span::{Phase, TraceCollector};

/// JSON string escaping as the trace-event format needs it — public so
/// other producers (the serve daemon's request-trace assembler) can
/// build `args` objects that match this module's formatting exactly.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn phase_tid(phase: Phase) -> u32 {
    match phase {
        Phase::Request => 1,
        Phase::Address => 2,
        Phase::ReadData => 3,
        Phase::WriteData => 4,
    }
}

/// Incremental builder for a trace-event JSON document: the envelope
/// and per-event formatting used by [`export`], reusable by other
/// producers (the campaign pool profiler builds its multi-track worker
/// timelines with it). Events render in push order; [`finish`]
/// produces the same envelope bytes `export` always emitted.
///
/// [`finish`]: TraceEvents::finish
#[derive(Debug, Default)]
pub struct TraceEvents {
    events: Vec<String>,
}

impl TraceEvents {
    pub fn new() -> Self {
        TraceEvents::default()
    }

    /// `process_name` metadata: names the `pid` track group.
    pub fn meta_process(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            r#"{{"ph":"M","pid":{pid},"name":"process_name","args":{{"name":"{}"}}}}"#,
            escape(name)
        ));
    }

    /// `thread_name` metadata: names one track inside a process.
    pub fn meta_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":{tid},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            escape(name)
        ));
    }

    /// A `ph:"X"` complete event. `ts`/`dur` are pre-rendered numbers
    /// (integer cycles or fractional microseconds) and `args` is a
    /// pre-rendered JSON object.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts: &str,
        dur: &str,
        args: &str,
    ) {
        self.events.push(format!(
            r#"{{"ph":"X","pid":{pid},"tid":{tid},"name":"{}","cat":"{cat}","ts":{ts},"dur":{dur},"args":{args}}}"#,
            escape(name)
        ));
    }

    /// A `ph:"C"` counter sample.
    pub fn counter(&mut self, pid: u32, name: &str, ts: u64, value: f64) {
        let name = escape(name);
        self.events.push(format!(
            r#"{{"ph":"C","pid":{pid},"name":"{name}","ts":{ts},"args":{{"{name}":{value}}}}}"#
        ));
    }

    /// Number of events pushed so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Wraps the pushed events in the trace-event envelope.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Renders one or more per-layer collectors as a single trace-event
/// JSON document. Accepts owned or borrowed collector slices.
pub fn export<C: std::borrow::Borrow<TraceCollector>>(collectors: &[C]) -> String {
    let mut tb = TraceEvents::new();
    for (i, c) in collectors.iter().enumerate() {
        let c = c.borrow();
        let pid = i as u32 + 1;
        tb.meta_process(pid, c.layer());
        for phase in Phase::ALL {
            tb.meta_thread(pid, phase_tid(phase), phase.name());
        }
        for s in c.spans() {
            tb.complete(
                pid,
                phase_tid(s.phase),
                &format!("{} {} #{}", s.class.name(), s.phase.name(), s.trace_id),
                "bus",
                &s.begin.to_string(),
                &s.duration().to_string(),
                &format!(
                    r#"{{"trace_id":{},"addr":"0x{:x}","error":{}}}"#,
                    s.trace_id, s.addr, s.error
                ),
            );
        }
        for t in c.counters() {
            // Stored samples, then the dedup-dropped end of a trailing
            // plateau (if any) so the counter holds its final value for
            // the full run instead of stopping at the plateau's first
            // cycle.
            let trailing = t.trailing_sample();
            for &(cycle, value) in t.samples.iter().chain(trailing.iter()) {
                tb.counter(pid, &t.name, cycle, value);
            }
        }
    }
    tb.finish()
}

/// Writes [`export`]ed JSON to `path`, creating parent directories.
pub fn save<C: std::borrow::Borrow<TraceCollector>>(
    path: impl AsRef<std::path::Path>,
    collectors: &[C],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, export(collectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::AccessClass;

    fn sample_collector() -> TraceCollector {
        let mut c = TraceCollector::for_layer("tlm1");
        c.begin(1, Phase::Request, 0, 0x100, AccessClass::Read);
        c.end(1, Phase::Request, 1, false);
        c.begin(1, Phase::Address, 2, 0x100, AccessClass::Read);
        c.end(1, Phase::Address, 3, false);
        c.counter_sample("energy_pj", 0, 2.25);
        c
    }

    #[test]
    fn export_is_valid_trace_json_shape() {
        let c = sample_collector();
        let json = export(&[&c]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("}"));
        assert!(json.contains(r#""ph":"M","pid":1,"name":"process_name","args":{"name":"tlm1"}"#));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""name":"read address #1""#));
        assert!(json.contains(r#""ts":2,"dur":2"#));
        assert!(json
            .contains(r#""ph":"C","pid":1,"name":"energy_pj","ts":0,"args":{"energy_pj":2.25}"#));
    }

    #[test]
    fn export_is_deterministic() {
        let c = sample_collector();
        assert_eq!(export(&[&c]), export(&[&c]));
    }

    #[test]
    fn multiple_collectors_get_distinct_pids() {
        let a = sample_collector();
        let mut b = TraceCollector::for_layer("rtl");
        b.begin(1, Phase::Request, 0, 0x100, AccessClass::Read);
        b.end(1, Phase::Request, 1, false);
        let json = export(&[&a, &b]);
        assert!(json.contains(r#""pid":1,"name":"process_name","args":{"name":"tlm1"}"#));
        assert!(json.contains(r#""pid":2,"name":"process_name","args":{"name":"rtl"}"#));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn counter_plateau_ends_at_its_last_cycle() {
        // Regression: the dedup in counter_sample dropped the final
        // sample of a plateau, so exported ramps ended early.
        let mut c = TraceCollector::for_layer("tlm1");
        c.counter_sample("e", 0, 1.0);
        c.counter_sample("e", 1, 2.0);
        c.counter_sample("e", 5, 2.0);
        let json = export(&[&c]);
        assert!(json.contains(r#""name":"e","ts":1,"args":{"e":2}"#));
        assert!(json.contains(r#""name":"e","ts":5,"args":{"e":2}"#));
        // No duplicate event when the last sample was stored anyway.
        let mut c2 = TraceCollector::for_layer("tlm1");
        c2.counter_sample("e", 0, 1.0);
        c2.counter_sample("e", 5, 2.0);
        let json2 = export(&[&c2]);
        assert_eq!(json2.matches(r#""ts":5"#).count(), 1);
    }

    #[test]
    fn trace_events_builder_matches_export_formatting() {
        // The builder is the formatting authority behind export(); a
        // hand-driven builder replay of a collector must be
        // byte-identical to export() so golden traces never drift.
        let c = sample_collector();
        let mut tb = TraceEvents::new();
        tb.meta_process(1, c.layer());
        for phase in Phase::ALL {
            tb.meta_thread(1, phase_tid(phase), phase.name());
        }
        for s in c.spans() {
            tb.complete(
                1,
                phase_tid(s.phase),
                &format!("{} {} #{}", s.class.name(), s.phase.name(), s.trace_id),
                "bus",
                &s.begin.to_string(),
                &s.duration().to_string(),
                &format!(
                    r#"{{"trace_id":{},"addr":"0x{:x}","error":{}}}"#,
                    s.trace_id, s.addr, s.error
                ),
            );
        }
        for t in c.counters() {
            let trailing = t.trailing_sample();
            for &(cycle, value) in t.samples.iter().chain(trailing.iter()) {
                tb.counter(1, &t.name, cycle, value);
            }
        }
        assert_eq!(tb.finish(), export(&[&c]));
    }

    #[test]
    fn trace_events_builder_escapes_names() {
        let mut tb = TraceEvents::new();
        tb.meta_process(1, "a\"b");
        tb.complete(1, 1, "x\ny", "cat", "0", "1", "{}");
        assert_eq!(tb.len(), 2);
        let json = tb.finish();
        assert!(json.contains(r#""name":"a\"b""#));
        assert!(json.contains(r#""name":"x\ny""#));
    }

    #[test]
    fn empty_builder_still_emits_the_envelope() {
        let tb = TraceEvents::new();
        assert!(tb.is_empty());
        assert_eq!(
            tb.finish(),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n"
        );
    }

    #[test]
    fn every_line_of_events_is_json_balanced() {
        // Cheap structural check: each event line has balanced braces.
        let c = sample_collector();
        let json = export(&[&c]);
        for line in json.lines().skip(1) {
            if line.starts_with('{') {
                let line = line.trim_end_matches(',');
                let opens = line.matches('{').count();
                let closes = line.matches('}').count();
                assert_eq!(opens, closes, "unbalanced: {line}");
            }
        }
    }
}
