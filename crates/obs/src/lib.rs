//! Deterministic, zero-dependency observability for the hierarchical
//! bus models.
//!
//! The paper's entire argument is made with measurements — timing error
//! per layer (Table 1), energy error per layer (Table 2), simulation
//! throughput (Table 3), per-cycle power traces (Fig. 6). This crate is
//! the instrumentation layer those measurements flow through:
//!
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms; sim-time based, snapshot/diff-able like
//!   `KernelStats::since`.
//! * [`TraceCollector`] — per-layer transaction spans (request →
//!   address → data phases) keyed by the bus transaction's monotonic
//!   id, plus sampled counter tracks for energy.
//! * [`perfetto`] — Chrome trace-event / Perfetto JSON exporter;
//!   [`MetricsSnapshot::to_csv`] is the CSV metrics dump.
//! * [`attribution`] — [`EnergyLedger`] decomposes a model's energy
//!   along `layer → slave → phase → access class` (folded-stack, JSON
//!   and Perfetto-counter exports), and [`DivergenceAuditor`] pinpoints
//!   the first bucket/cycle where two layers disagree.
//! * [`profiling`] — the one deliberately wall-clock-based module: the
//!   campaign pool's self-profiler ([`Profiler`] / [`PoolProfile`])
//!   with per-worker phase timelines, contention counters, and the
//!   [`scaling_audit`] efficiency-loss decomposition.
//! * [`telemetry`] — the live serving-side plane: a leveled
//!   ring-buffered structured [`EventLog`] (JSONL export), rolling
//!   [`SloWindow`] latency/hit-ratio aggregates, and a
//!   Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! Everything except [`profiling`] and [`telemetry`] is deterministic
//! (no wall clock, no randomness, stable ordering), so exports can be
//! golden-file tested, and everything is cheap when off: disabled
//! registries, collectors, profilers and event logs reduce every probe
//! to one branch on an `enabled` flag with no allocation.

pub mod attribution;
pub mod metrics;
pub mod perfetto;
pub mod profiling;
pub mod span;
pub mod telemetry;

pub use attribution::{
    attribute_cycles, attribute_cycles_by_master, BucketKey, DivergenceAuditor, EnergyLedger,
    LedgerAudit, LedgerPhase, SlaveMap, TraceDivergence,
};
pub use metrics::{CounterId, GaugeId, Histogram, HistogramId, MetricsRegistry, MetricsSnapshot};
pub use profiling::{
    scaling_audit, AuditInput, AuditPoint, PoolPhase, PoolProfile, Profiler, ScalingAudit,
    WorkerProfile, WorkerTimeline,
};
pub use span::{AccessClass, CounterTrack, Phase, SpanEvent, TraceCollector};
pub use telemetry::{
    prometheus_text, write_atomic, EventLog, Level, Quantiles, RequestSample, SloAggregate,
    SloWindow, TelemetryEvent, Value, TELEMETRY_SCHEMA_VERSION,
};

/// Writes a CSV metrics dump to `path`, creating parent directories.
pub fn save_csv(
    path: impl AsRef<std::path::Path>,
    snapshot: &MetricsSnapshot,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, snapshot.to_csv())
}
