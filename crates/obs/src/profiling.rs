//! Runtime self-profiling for the campaign engine: per-worker phase
//! timelines, contention counters, and the scaling audit.
//!
//! The paper's hierarchical models make every picojoule attributable to
//! a bus phase; this module applies the same discipline to the
//! simulator's *own* wall clock. Each worker of the campaign pool
//! records a monotonic timeline of pool phases (claim / db-access /
//! simulate / serialize / merge-wait / idle) into a buffer it owns
//! exclusively — no locks, no shared state on the hot path — plus
//! contention counters (claim-cursor CAS retries, shared
//! characterization-DB accesses, and heap allocations when the
//! [`CountingAlloc`] global allocator is installed). The engine
//! aggregates the timelines into a [`PoolProfile`], exportable as a
//! multi-track Perfetto trace (one track per worker) and as
//! chunk-latency / phase-duration histograms in a
//! [`MetricsSnapshot`](crate::MetricsSnapshot).
//!
//! On top of the profiles, [`scaling_audit`] decomposes the measured
//! parallel-efficiency loss at each worker count into a serial fraction
//! (Amdahl fit across worker counts), load imbalance (max-vs-mean busy
//! time), contention (stall share plus busy-time inflation), and a
//! residual — turning "the pool does not scale" from guesswork into a
//! measured diagnosis.
//!
//! Everything here is wall-clock based by design (it profiles the
//! simulator, not the simulation), so profiling output must never feed
//! a merged campaign result; the engine keeps the two strictly apart
//! and a disabled [`Profiler`] reduces every probe to one branch.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::perfetto::TraceEvents;
use std::cell::Cell;
use std::time::Instant;

/// A phase of a campaign worker's life, in the sense of the paper's bus
/// phases: every nanosecond of pool wall clock should be attributable
/// to exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolPhase {
    /// Claiming a chunk of scenario indices from the shared cursor.
    Claim,
    /// Building or resetting per-worker state — characterization-DB
    /// clones and session construction.
    DbAccess,
    /// Running a scenario through the model (the useful work).
    Simulate,
    /// Pushing the result into the worker's private buffer.
    Serialize,
    /// Finished claiming; waiting at the join barrier for stragglers
    /// and the index-order merge (synthesized at aggregation).
    MergeWait,
    /// Untracked gaps inside a worker's timeline (synthesized at
    /// aggregation).
    Idle,
}

impl PoolPhase {
    /// Every phase, in display order.
    pub const ALL: [PoolPhase; 6] = [
        PoolPhase::Claim,
        PoolPhase::DbAccess,
        PoolPhase::Simulate,
        PoolPhase::Serialize,
        PoolPhase::MergeWait,
        PoolPhase::Idle,
    ];

    /// Stable lower-case name (used in Perfetto tracks, metrics names
    /// and the audit JSON).
    pub fn name(self) -> &'static str {
        match self {
            PoolPhase::Claim => "claim",
            PoolPhase::DbAccess => "db-access",
            PoolPhase::Simulate => "simulate",
            PoolPhase::Serialize => "serialize",
            PoolPhase::MergeWait => "merge-wait",
            PoolPhase::Idle => "idle",
        }
    }

    /// Metrics-safe name (no `-`).
    pub fn metric_name(self) -> &'static str {
        match self {
            PoolPhase::DbAccess => "db_access",
            PoolPhase::MergeWait => "merge_wait",
            other => other.name(),
        }
    }
}

/// One closed phase interval on a worker's timeline. Timestamps are
/// nanoseconds since the profiler's epoch (the start of the campaign's
/// execution phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    pub phase: PoolPhase,
    pub begin_ns: u64,
    pub end_ns: u64,
    /// Phase-dependent payload: the scenario index for simulate /
    /// serialize, the chunk size for claim, 0 otherwise.
    pub arg: u64,
}

impl PhaseRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

/// The completed timeline of one worker thread, plus its contention
/// counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerTimeline {
    /// Worker index in spawn order.
    pub worker: usize,
    /// Phase records in begin order.
    pub records: Vec<PhaseRecord>,
    /// Claim-to-completion latency of each chunk this worker ran.
    pub chunk_latencies_ns: Vec<u64>,
    /// Failed compare-exchange attempts on the shared claim cursor.
    pub claim_retries: u64,
    /// Shared characterization-DB accesses on this worker's thread
    /// (see [`record_db_access`]).
    pub db_accesses: u64,
    /// Heap allocations on this worker's thread — 0 unless the process
    /// runs under [`CountingAlloc`].
    pub allocations: u64,
}

impl WorkerTimeline {
    /// Total nanoseconds spent in `phase`.
    pub fn phase_ns(&self, phase: PoolPhase) -> u64 {
        self.records
            .iter()
            .filter(|r| r.phase == phase)
            .map(PhaseRecord::duration_ns)
            .sum()
    }

    /// Nanoseconds spent doing work (db-access + simulate + serialize).
    pub fn busy_ns(&self) -> u64 {
        self.phase_ns(PoolPhase::DbAccess)
            + self.phase_ns(PoolPhase::Simulate)
            + self.phase_ns(PoolPhase::Serialize)
    }

    /// End of the last record (0 on an empty timeline).
    pub fn end_ns(&self) -> u64 {
        self.records.iter().map(|r| r.end_ns).max().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// Thread-local contention counters.
// ---------------------------------------------------------------------

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_DB_ACCESSES: Cell<u64> = const { Cell::new(0) };
}

/// Heap allocations performed on the calling thread since it started —
/// monotone, so workers read a before/after delta. Always 0 unless the
/// binary installs [`CountingAlloc`] as its global allocator.
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// Records one access to the shared characterization database on the
/// calling thread. Instrumented call sites (session constructors, db
/// clones) call this unconditionally — it is one thread-local counter
/// increment, far off any per-cycle path.
pub fn record_db_access() {
    let _ = THREAD_DB_ACCESSES.try_with(|c| c.set(c.get() + 1));
}

/// Shared-DB accesses recorded on the calling thread (monotone).
pub fn thread_db_accesses() -> u64 {
    THREAD_DB_ACCESSES.with(|c| c.get())
}

/// A counting global allocator: forwards to the system allocator and
/// counts allocations per thread, so campaign workers can report
/// allocation churn. Install in a bench binary with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: hierbus_obs::profiling::CountingAlloc = CountingAlloc;
/// ```
pub struct CountingAlloc;

fn count_alloc() {
    // `try_with` because allocation can happen while thread-locals are
    // being torn down; dropping the count there is fine.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: pure pass-through to `std::alloc::System`; the only addition
// is a destructor-free thread-local counter bump, which itself never
// allocates.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        count_alloc();
        std::alloc::System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        count_alloc();
        std::alloc::System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        count_alloc();
        std::alloc::System.realloc(ptr, layout, new_size)
    }
}

// ---------------------------------------------------------------------
// The profiler handle.
// ---------------------------------------------------------------------

/// The campaign engine's profiling handle: disabled by default, in
/// which case every probe is one branch and no timestamp is taken.
#[derive(Debug, Clone, Copy)]
pub struct Profiler {
    enabled: bool,
    epoch: Instant,
}

impl Profiler {
    /// A profiler; `enabled: false` is the near-zero-cost default.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            epoch: Instant::now(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since the epoch; 0 (without reading the clock) when
    /// disabled.
    pub fn now_ns(&self) -> u64 {
        if self.enabled {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// A per-worker recorder. Call on the worker's own thread so the
    /// thread-local contention baselines belong to that thread.
    pub fn worker(&self, worker: usize) -> WorkerProfile {
        WorkerProfile {
            enabled: self.enabled,
            epoch: self.epoch,
            timeline: WorkerTimeline {
                worker,
                ..WorkerTimeline::default()
            },
            alloc_base: if self.enabled {
                thread_allocations()
            } else {
                0
            },
            db_base: if self.enabled {
                thread_db_accesses()
            } else {
                0
            },
        }
    }

    /// Aggregates the collected worker timelines into a [`PoolProfile`]
    /// (`None` when disabled). Synthesizes the phases only the
    /// aggregator can see: per-worker idle gaps larger than 1 µs and
    /// the merge-wait tail from each worker's last record to the end of
    /// the execution phase at `wall_ns`.
    pub fn assemble(
        &self,
        mut timelines: Vec<WorkerTimeline>,
        wall_ns: u64,
        merge_ns: u64,
    ) -> Option<PoolProfile> {
        if !self.enabled {
            return None;
        }
        const IDLE_GAP_NS: u64 = 1_000;
        timelines.sort_by_key(|t| t.worker);
        for tl in &mut timelines {
            tl.records.sort_by_key(|r| (r.begin_ns, r.end_ns));
            let mut synthesized = Vec::new();
            let mut prev_end = tl.records.first().map_or(0, |r| r.begin_ns);
            for r in &tl.records {
                if r.begin_ns > prev_end + IDLE_GAP_NS {
                    synthesized.push(PhaseRecord {
                        phase: PoolPhase::Idle,
                        begin_ns: prev_end,
                        end_ns: r.begin_ns,
                        arg: 0,
                    });
                }
                prev_end = prev_end.max(r.end_ns);
            }
            if wall_ns > prev_end {
                synthesized.push(PhaseRecord {
                    phase: PoolPhase::MergeWait,
                    begin_ns: prev_end,
                    end_ns: wall_ns,
                    arg: 0,
                });
            }
            tl.records.extend(synthesized);
            tl.records.sort_by_key(|r| (r.begin_ns, r.end_ns));
        }
        Some(PoolProfile {
            wall_ns,
            merge_ns,
            workers: timelines,
        })
    }
}

/// One worker's recorder: owned exclusively by its thread, so recording
/// is lock-free by construction.
#[derive(Debug)]
pub struct WorkerProfile {
    enabled: bool,
    epoch: Instant,
    timeline: WorkerTimeline,
    alloc_base: u64,
    db_base: u64,
}

impl WorkerProfile {
    /// Nanoseconds since the profiler epoch; 0 (no clock read) when
    /// disabled. Pair with [`record`](Self::record).
    pub fn now_ns(&self) -> u64 {
        if self.enabled {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Closes a phase opened at `begin_ns` (from [`now_ns`](Self::now_ns))
    /// ending now. No-op when disabled.
    pub fn record(&mut self, phase: PoolPhase, begin_ns: u64, arg: u64) {
        if !self.enabled {
            return;
        }
        let end_ns = self.epoch.elapsed().as_nanos() as u64;
        self.timeline.records.push(PhaseRecord {
            phase,
            begin_ns,
            end_ns: end_ns.max(begin_ns),
            arg,
        });
    }

    /// Records the claim-to-completion latency of a chunk begun at
    /// `begin_ns`.
    pub fn chunk_done(&mut self, begin_ns: u64) {
        if !self.enabled {
            return;
        }
        let now = self.epoch.elapsed().as_nanos() as u64;
        self.timeline
            .chunk_latencies_ns
            .push(now.saturating_sub(begin_ns));
    }

    /// Adds failed claim-cursor compare-exchange attempts.
    pub fn add_claim_retries(&mut self, n: u64) {
        if self.enabled {
            self.timeline.claim_retries += n;
        }
    }

    /// Finishes the worker: captures the thread-local contention deltas
    /// and releases the timeline.
    pub fn finish(mut self) -> WorkerTimeline {
        if self.enabled {
            self.timeline.allocations = thread_allocations().saturating_sub(self.alloc_base);
            self.timeline.db_accesses = thread_db_accesses().saturating_sub(self.db_base);
        }
        self.timeline
    }
}

// ---------------------------------------------------------------------
// The aggregated pool profile.
// ---------------------------------------------------------------------

/// Histogram bounds for nanosecond durations (1 µs … 1 s, inclusive
/// upper edges).
pub const NS_BOUNDS: [u64; 12] = [
    1_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// The aggregated profile of one campaign run: every worker's timeline
/// plus the main thread's merge time.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolProfile {
    /// Wall clock of the execution phase (spawn to join), ns.
    pub wall_ns: u64,
    /// Main-thread merge + manifest-save time after the join, ns.
    pub merge_ns: u64,
    /// One timeline per worker, in spawn order.
    pub workers: Vec<WorkerTimeline>,
}

impl PoolProfile {
    /// Total nanoseconds spent in `phase` across all workers.
    pub fn phase_ns(&self, phase: PoolPhase) -> u64 {
        self.workers.iter().map(|w| w.phase_ns(phase)).sum()
    }

    /// Sum of every worker's busy time.
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(WorkerTimeline::busy_ns).sum()
    }

    /// The busiest worker's busy time.
    pub fn max_busy_ns(&self) -> u64 {
        self.workers
            .iter()
            .map(WorkerTimeline::busy_ns)
            .max()
            .unwrap_or(0)
    }

    /// Total failed claim compare-exchange attempts.
    pub fn claim_retries(&self) -> u64 {
        self.workers.iter().map(|w| w.claim_retries).sum()
    }

    /// Total shared-DB accesses on worker threads.
    pub fn db_accesses(&self) -> u64 {
        self.workers.iter().map(|w| w.db_accesses).sum()
    }

    /// Total worker-thread heap allocations (0 without
    /// [`CountingAlloc`]).
    pub fn allocations(&self) -> u64 {
        self.workers.iter().map(|w| w.allocations).sum()
    }

    /// Fraction of the pool's worker-seconds spent busy.
    pub fn busy_frac(&self) -> f64 {
        let cap = self.wall_ns.saturating_mul(self.workers.len() as u64);
        if cap == 0 {
            return 0.0;
        }
        self.total_busy_ns() as f64 / cap as f64
    }

    /// Multi-track Perfetto export: one process, one thread track per
    /// worker (plus an `engine` track for the merge), phases as
    /// complete events. Timestamps map nanoseconds to microseconds so
    /// the viewer axis reads in wall-clock µs.
    pub fn to_perfetto(&self) -> String {
        let us = |ns: u64| format!("{:.3}", ns as f64 / 1_000.0);
        let mut tb = TraceEvents::new();
        tb.meta_process(1, "campaign pool");
        for w in &self.workers {
            tb.meta_thread(1, w.worker as u32 + 1, &format!("worker {}", w.worker));
        }
        let engine_tid = self.workers.len() as u32 + 1;
        tb.meta_thread(1, engine_tid, "engine");
        for w in &self.workers {
            for r in &w.records {
                let args = match r.phase {
                    PoolPhase::Simulate | PoolPhase::Serialize => {
                        format!(r#"{{"scenario":{}}}"#, r.arg)
                    }
                    PoolPhase::Claim => format!(r#"{{"chunk":{}}}"#, r.arg),
                    _ => "{}".to_owned(),
                };
                tb.complete(
                    1,
                    w.worker as u32 + 1,
                    r.phase.name(),
                    "pool",
                    &us(r.begin_ns),
                    &us(r.duration_ns()),
                    &args,
                );
            }
        }
        tb.complete(
            1,
            engine_tid,
            "merge",
            "pool",
            &us(self.wall_ns),
            &us(self.merge_ns),
            "{}",
        );
        tb.finish()
    }

    /// Chunk-latency and phase-duration histograms plus the contention
    /// counters, as a standard metrics snapshot (CSV-exportable,
    /// diffable).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        let chunks = reg.histogram("pool.chunk_latency_ns", &NS_BOUNDS);
        for w in &self.workers {
            for &lat in &w.chunk_latencies_ns {
                reg.observe(chunks, lat);
            }
        }
        for phase in PoolPhase::ALL {
            let h = reg.histogram(
                &format!("pool.phase.{}_ns", phase.metric_name()),
                &NS_BOUNDS,
            );
            for w in &self.workers {
                for r in w.records.iter().filter(|r| r.phase == phase) {
                    reg.observe(h, r.duration_ns());
                }
            }
        }
        let mut add = |name: &str, v: u64| {
            let c = reg.counter(name);
            reg.add(c, v);
        };
        add("pool.workers", self.workers.len() as u64);
        add("pool.wall_ns", self.wall_ns);
        add("pool.merge_ns", self.merge_ns);
        add("pool.claim_retries", self.claim_retries());
        add("pool.db_accesses", self.db_accesses());
        add("pool.allocations", self.allocations());
        reg.snapshot()
    }
}

// ---------------------------------------------------------------------
// The scaling audit.
// ---------------------------------------------------------------------

/// One profiled campaign measurement feeding [`scaling_audit`].
#[derive(Debug, Clone)]
pub struct AuditInput {
    pub workers: usize,
    /// Best-of-N wall clock of the execution phase, ns.
    pub wall_ns: u64,
    pub scenarios_per_sec: f64,
    /// The profile of the best run.
    pub profile: PoolProfile,
}

/// The efficiency-loss decomposition at one worker count. All `*_loss`
/// fields are fractions of the pool's worker-seconds (`workers ×
/// wall`), so `loss = serial + imbalance + contention + residual`
/// exactly.
#[derive(Debug, Clone)]
pub struct AuditPoint {
    pub workers: usize,
    pub wall_ns: u64,
    pub scenarios_per_sec: f64,
    /// `T1 / (N × TN)` — 1.0 means perfect scaling.
    pub efficiency: f64,
    /// `1 − efficiency`: the gap the remaining fields decompose.
    pub loss: f64,
    /// Amdahl share: `s·T1·(N−1) / (N·TN)` with `s` the fitted serial
    /// fraction — worker-seconds idled away while serial work runs.
    pub serial_loss: f64,
    /// Worker-seconds lost waiting for the busiest worker:
    /// `(N·max_busy − Σ busy) / (N·TN)`.
    pub imbalance_loss: f64,
    /// Stall share (claim-phase time) plus busy-time inflation over the
    /// baseline run (`(Σ busy − busy₁)/(N·TN)`) — the signature of
    /// memory/allocator contention making each scenario slower.
    pub contention_loss: f64,
    /// `loss − serial − imbalance − contention`; may be negative when
    /// the attributed terms overlap.
    pub residual_loss: f64,
    /// Σ busy / (N × wall).
    pub busy_frac: f64,
    /// max busy / mean busy (1.0 = perfectly balanced).
    pub balance: f64,
    pub claim_retries: u64,
    pub db_accesses: u64,
    pub allocations: u64,
    /// Pool-wide per-phase totals in [`PoolPhase::ALL`] order, ns.
    pub phase_ns: [u64; 6],
    /// Main-thread merge time, ns.
    pub merge_ns: u64,
    /// Chunk-latency percentiles (ns) from the fixed-bucket histogram.
    pub chunk_p50_ns: u64,
    pub chunk_p90_ns: u64,
    pub chunk_p99_ns: u64,
}

/// The full audit: the fitted serial fraction and one decomposition per
/// measured worker count.
#[derive(Debug, Clone)]
pub struct ScalingAudit {
    pub campaign: String,
    pub scenarios: usize,
    /// Amdahl serial fraction fitted across the worker counts
    /// (least squares on `TN = T1·(s + (1−s)/N)`, clamped to [0, 1]).
    pub serial_fraction: f64,
    pub points: Vec<AuditPoint>,
}

/// Decomposes the scaling trajectory in `inputs` (ascending worker
/// counts; the first entry is the baseline, normally 1 worker).
///
/// # Panics
///
/// Panics on an empty input slice.
pub fn scaling_audit(campaign: &str, scenarios: usize, inputs: &[AuditInput]) -> ScalingAudit {
    assert!(!inputs.is_empty(), "scaling_audit needs at least one run");
    let base = &inputs[0];
    let t1 = base.wall_ns as f64;
    let busy1 = base.profile.total_busy_ns() as f64;

    // Amdahl fit over the non-baseline points: TN − T1/N = s·T1·(1−1/N).
    let mut num = 0.0;
    let mut den = 0.0;
    for p in inputs.iter().filter(|p| p.workers > base.workers) {
        let n = p.workers as f64;
        let x = t1 * (1.0 - 1.0 / n);
        let y = p.wall_ns as f64 - t1 / n;
        num += x * y;
        den += x * x;
    }
    let serial_fraction = if den > 0.0 {
        (num / den).clamp(0.0, 1.0)
    } else {
        0.0
    };

    let points = inputs
        .iter()
        .map(|p| {
            let n = p.workers as f64;
            let tn = p.wall_ns as f64;
            let cap = (n * tn).max(1.0);
            let efficiency = t1 / cap;
            let loss = 1.0 - efficiency;
            let sum_busy = p.profile.total_busy_ns() as f64;
            let max_busy = p.profile.max_busy_ns() as f64;
            let (imbalance_loss, contention_loss, serial_loss) = if p.workers == base.workers {
                (0.0, 0.0, 0.0)
            } else {
                let imbalance = (n * max_busy - sum_busy).max(0.0) / cap;
                let stall = p.profile.phase_ns(PoolPhase::Claim) as f64 / cap;
                let inflation = (sum_busy - busy1).max(0.0) / cap;
                let serial = serial_fraction * t1 * (n - 1.0) / cap;
                (imbalance, stall + inflation, serial)
            };
            let residual_loss = loss - serial_loss - imbalance_loss - contention_loss;
            let mean_busy = sum_busy / n.max(1.0);
            let mut reg = MetricsRegistry::new();
            let h = reg.histogram("chunks", &NS_BOUNDS);
            for w in &p.profile.workers {
                for &lat in &w.chunk_latencies_ns {
                    reg.observe(h, lat);
                }
            }
            let hist = reg.histogram_data(h);
            let mut phase_ns = [0u64; 6];
            for (slot, phase) in phase_ns.iter_mut().zip(PoolPhase::ALL) {
                *slot = p.profile.phase_ns(phase);
            }
            AuditPoint {
                workers: p.workers,
                wall_ns: p.wall_ns,
                scenarios_per_sec: p.scenarios_per_sec,
                efficiency,
                loss,
                serial_loss,
                imbalance_loss,
                contention_loss,
                residual_loss,
                busy_frac: sum_busy / cap,
                balance: if mean_busy > 0.0 {
                    max_busy / mean_busy
                } else {
                    1.0
                },
                claim_retries: p.profile.claim_retries(),
                db_accesses: p.profile.db_accesses(),
                allocations: p.profile.allocations(),
                phase_ns,
                merge_ns: p.profile.merge_ns,
                chunk_p50_ns: hist.p50().unwrap_or(0),
                chunk_p90_ns: hist.p90().unwrap_or(0),
                chunk_p99_ns: hist.p99().unwrap_or(0),
            }
        })
        .collect();

    ScalingAudit {
        campaign: campaign.to_owned(),
        scenarios,
        serial_fraction,
        points,
    }
}

/// JSON-safe number rendering (non-finite values become 0).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_owned()
    }
}

impl ScalingAudit {
    /// Serializes the audit as the `results/obs/scaling_audit.json`
    /// document (`schema_version` 1, validated by the
    /// `check_scaling_audit` bin).
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let phases: Vec<String> = PoolPhase::ALL
                    .iter()
                    .zip(p.phase_ns)
                    .map(|(phase, ns)| format!(r#""{}":{ns}"#, phase.metric_name()))
                    .collect();
                format!(
                    concat!(
                        r#"{{"workers":{},"wall_ns":{},"scenarios_per_s":{},"#,
                        r#""efficiency":{},"loss":{},"serial_loss":{},"#,
                        r#""imbalance_loss":{},"contention_loss":{},"residual_loss":{},"#,
                        r#""busy_frac":{},"balance":{},"#,
                        r#""claim_retries":{},"db_accesses":{},"allocations":{},"#,
                        r#""phase_ns":{{{},"merge":{}}},"#,
                        r#""chunk_latency_ns":{{"p50":{},"p90":{},"p99":{}}}}}"#
                    ),
                    p.workers,
                    p.wall_ns,
                    num(p.scenarios_per_sec),
                    num(p.efficiency),
                    num(p.loss),
                    num(p.serial_loss),
                    num(p.imbalance_loss),
                    num(p.contention_loss),
                    num(p.residual_loss),
                    num(p.busy_frac),
                    num(p.balance),
                    p.claim_retries,
                    p.db_accesses,
                    p.allocations,
                    phases.join(","),
                    p.merge_ns,
                    p.chunk_p50_ns,
                    p.chunk_p90_ns,
                    p.chunk_p99_ns,
                )
            })
            .collect();
        format!(
            "{{\"schema_version\":1,\"campaign\":\"{}\",\"scenarios\":{},\
             \"serial_fraction\":{},\"workers\":[{}]}}\n",
            self.campaign,
            self.scenarios,
            num(self.serial_fraction),
            points.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs test binary runs under the counting allocator so the
    // allocation counters are exercised for real.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn disabled_profiler_records_nothing_and_reads_no_clock() {
        let profiler = Profiler::new(false);
        assert_eq!(profiler.now_ns(), 0);
        let mut wp = profiler.worker(0);
        let t = wp.now_ns();
        assert_eq!(t, 0);
        wp.record(PoolPhase::Simulate, t, 7);
        wp.chunk_done(t);
        wp.add_claim_retries(3);
        let tl = wp.finish();
        assert!(tl.records.is_empty());
        assert!(tl.chunk_latencies_ns.is_empty());
        assert_eq!(tl.claim_retries, 0);
        assert!(profiler.assemble(vec![tl], 0, 0).is_none());
    }

    #[test]
    fn enabled_profiler_builds_a_timeline_with_synthesized_tail() {
        let profiler = Profiler::new(true);
        let mut wp = profiler.worker(2);
        let t = wp.now_ns();
        wp.record(PoolPhase::Claim, t, 4);
        let t = wp.now_ns();
        wp.record(PoolPhase::Simulate, t, 0);
        wp.chunk_done(t);
        let tl = wp.finish();
        assert_eq!(tl.worker, 2);
        assert_eq!(tl.records.len(), 2);
        assert_eq!(tl.chunk_latencies_ns.len(), 1);
        let end = tl.end_ns();
        let profile = profiler
            .assemble(vec![tl], end + 5_000_000, 1_000)
            .expect("enabled");
        // The gap from the last record to wall becomes a merge-wait.
        let w = &profile.workers[0];
        let tail = w.records.last().unwrap();
        assert_eq!(tail.phase, PoolPhase::MergeWait);
        assert_eq!(tail.end_ns, end + 5_000_000);
        assert!(w.phase_ns(PoolPhase::MergeWait) >= 5_000_000);
    }

    #[test]
    fn idle_gaps_between_records_are_synthesized() {
        let profiler = Profiler::new(true);
        let tl = WorkerTimeline {
            worker: 0,
            records: vec![
                PhaseRecord {
                    phase: PoolPhase::Simulate,
                    begin_ns: 0,
                    end_ns: 10_000,
                    arg: 0,
                },
                PhaseRecord {
                    phase: PoolPhase::Simulate,
                    begin_ns: 50_000,
                    end_ns: 60_000,
                    arg: 1,
                },
            ],
            ..WorkerTimeline::default()
        };
        let profile = profiler.assemble(vec![tl], 60_000, 0).unwrap();
        let w = &profile.workers[0];
        assert_eq!(w.phase_ns(PoolPhase::Idle), 40_000);
        // Records stay sorted after synthesis.
        let begins: Vec<u64> = w.records.iter().map(|r| r.begin_ns).collect();
        let mut sorted = begins.clone();
        sorted.sort_unstable();
        assert_eq!(begins, sorted);
    }

    #[test]
    fn counting_allocator_reports_thread_allocations() {
        let before = thread_allocations();
        let v: Vec<u64> = Vec::with_capacity(64);
        std::hint::black_box(&v);
        let after = thread_allocations();
        assert!(after > before, "allocation not counted: {before} → {after}");
    }

    #[test]
    fn db_access_counter_is_per_thread() {
        let main_before = thread_db_accesses();
        record_db_access();
        assert_eq!(thread_db_accesses(), main_before + 1);
        let other = std::thread::spawn(|| {
            let t0 = thread_db_accesses();
            record_db_access();
            record_db_access();
            thread_db_accesses() - t0
        })
        .join()
        .unwrap();
        assert_eq!(other, 2);
        // The other thread's accesses never leak into this thread.
        assert_eq!(thread_db_accesses(), main_before + 1);
    }

    #[test]
    fn worker_profile_captures_contention_deltas() {
        let profiler = Profiler::new(true);
        let mut wp = profiler.worker(0);
        record_db_access();
        record_db_access();
        wp.add_claim_retries(5);
        let v: Vec<u64> = vec![1, 2, 3];
        std::hint::black_box(&v);
        let tl = wp.finish();
        assert_eq!(tl.db_accesses, 2);
        assert_eq!(tl.claim_retries, 5);
        assert!(tl.allocations > 0);
    }

    fn synthetic_profile(workers: usize, busy_each_ns: u64, wall_ns: u64) -> PoolProfile {
        PoolProfile {
            wall_ns,
            merge_ns: 0,
            workers: (0..workers)
                .map(|w| WorkerTimeline {
                    worker: w,
                    records: vec![PhaseRecord {
                        phase: PoolPhase::Simulate,
                        begin_ns: 0,
                        end_ns: busy_each_ns,
                        arg: 0,
                    }],
                    chunk_latencies_ns: vec![busy_each_ns],
                    ..WorkerTimeline::default()
                })
                .collect(),
        }
    }

    #[test]
    fn audit_decomposition_sums_to_the_measured_loss() {
        // A pool that stops scaling: the wall clock barely moves as
        // workers are added (every worker's busy time inflates).
        let inputs = vec![
            AuditInput {
                workers: 1,
                wall_ns: 1_000_000,
                scenarios_per_sec: 16.0,
                profile: synthetic_profile(1, 950_000, 1_000_000),
            },
            AuditInput {
                workers: 2,
                wall_ns: 900_000,
                scenarios_per_sec: 17.8,
                profile: synthetic_profile(2, 850_000, 900_000),
            },
            AuditInput {
                workers: 4,
                wall_ns: 880_000,
                scenarios_per_sec: 18.2,
                profile: synthetic_profile(4, 820_000, 880_000),
            },
        ];
        let audit = scaling_audit("toy", 16, &inputs);
        assert!((0.0..=1.0).contains(&audit.serial_fraction));
        assert_eq!(audit.points.len(), 3);
        for p in &audit.points {
            let sum = p.serial_loss + p.imbalance_loss + p.contention_loss + p.residual_loss;
            assert!(
                (sum - p.loss).abs() <= 0.1 * p.loss.abs().max(1e-9),
                "decomposition at {}w: {sum} vs loss {}",
                p.workers,
                p.loss
            );
            assert!(p.efficiency > 0.0 && p.efficiency <= 1.0 + 1e-9);
        }
        // The baseline point is lossless by definition.
        assert!(audit.points[0].loss.abs() < 1e-9);
        // Flat scaling must show up as a large loss at 4 workers.
        assert!(audit.points[2].loss > 0.5);
    }

    #[test]
    fn perfect_scaling_audits_as_near_zero_loss() {
        let inputs = vec![
            AuditInput {
                workers: 1,
                wall_ns: 1_000_000,
                scenarios_per_sec: 16.0,
                profile: synthetic_profile(1, 990_000, 1_000_000),
            },
            AuditInput {
                workers: 4,
                wall_ns: 250_000,
                scenarios_per_sec: 64.0,
                profile: synthetic_profile(4, 247_000, 250_000),
            },
        ];
        let audit = scaling_audit("ideal", 16, &inputs);
        assert!(audit.serial_fraction < 0.01, "{}", audit.serial_fraction);
        assert!(audit.points[1].loss.abs() < 0.01);
    }

    #[test]
    fn audit_json_has_schema_and_parses_shape() {
        let inputs = vec![AuditInput {
            workers: 1,
            wall_ns: 1_000,
            scenarios_per_sec: 1.0,
            profile: synthetic_profile(1, 900, 1_000),
        }];
        let audit = scaling_audit("toy", 4, &inputs);
        let json = audit.to_json();
        assert!(json.starts_with("{\"schema_version\":1,\"campaign\":\"toy\""));
        assert!(json.contains("\"serial_fraction\":"));
        assert!(json.contains("\"phase_ns\":{\"claim\":"));
        assert!(json.contains("\"chunk_latency_ns\":{\"p50\":"));
        // Balanced braces per the exporter's structural convention.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn pool_profile_exports_perfetto_tracks_and_metrics() {
        let profiler = Profiler::new(true);
        let mk = |w: usize| {
            let mut wp = profiler.worker(w);
            let t = wp.now_ns();
            wp.record(PoolPhase::Claim, t, 8);
            let t = wp.now_ns();
            wp.record(PoolPhase::Simulate, t, w as u64);
            wp.chunk_done(t);
            wp.finish()
        };
        let timelines = vec![mk(0), mk(1)];
        let wall = timelines.iter().map(WorkerTimeline::end_ns).max().unwrap() + 10_000;
        let profile = profiler.assemble(timelines, wall, 500).unwrap();
        let trace = profile.to_perfetto();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains(r#""name":"worker 0""#));
        assert!(trace.contains(r#""name":"worker 1""#));
        assert!(trace.contains(r#""name":"engine""#));
        assert!(trace.contains(r#""name":"claim""#));
        assert!(trace.contains(r#""name":"simulate""#));
        assert!(trace.contains(r#""name":"merge""#));
        let snap = profile.metrics();
        let chunk_hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "pool.chunk_latency_ns")
            .expect("chunk latency histogram");
        assert_eq!(chunk_hist.count, 2);
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "pool.workers" && *v == 2));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "pool.phase.simulate_ns" && h.count == 2));
    }
}
