//! Transaction spans: per-phase begin/end events keyed by the bus
//! transaction's monotonic trace id.
//!
//! Every model layer (cycle-true RTL, cycle-accurate TLM layer 1,
//! timed TLM layer 2) reports the same protocol phases — request
//! queueing, the address phase, then the read or write data phase — so
//! one burst can be laid side by side across layers in a trace viewer.

/// Protocol phase a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Queued at the master, waiting for the address channel.
    Request,
    /// Address phase on the bus (including wait states).
    Address,
    /// Read data phase (all beats of a burst).
    ReadData,
    /// Write data phase (all beats of a burst).
    WriteData,
}

impl Phase {
    pub const ALL: [Phase; 4] = [
        Phase::Request,
        Phase::Address,
        Phase::ReadData,
        Phase::WriteData,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::Request => "request",
            Phase::Address => "address",
            Phase::ReadData => "read-data",
            Phase::WriteData => "write-data",
        }
    }
}

/// What kind of access a transaction is (layer-agnostic mirror of the
/// bus crate's `AccessKind`; this crate is dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessClass {
    Fetch,
    Read,
    Write,
}

impl AccessClass {
    pub fn name(self) -> &'static str {
        match self {
            AccessClass::Fetch => "fetch",
            AccessClass::Read => "read",
            AccessClass::Write => "write",
        }
    }
}

/// A closed span: one protocol phase of one transaction, in cycles
/// (inclusive bounds: the phase occupied `begin..=end`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub trace_id: u64,
    pub phase: Phase,
    pub begin: u64,
    pub end: u64,
    pub addr: u64,
    pub class: AccessClass,
    pub error: bool,
}

impl SpanEvent {
    pub fn duration(&self) -> u64 {
        self.end - self.begin + 1
    }
}

/// A sampled counter track (e.g. cumulative energy over cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    pub name: String,
    /// `(cycle, value)` samples, deduplicated on unchanged values.
    pub samples: Vec<(u64, f64)>,
    /// The most recent sample fed to the track, recorded even when the
    /// dedup above skipped it, so exporters can close a plateau at its
    /// true end instead of its first cycle.
    pub last: Option<(u64, f64)>,
}

impl CounterTrack {
    /// The final sample of the track if the dedup dropped it — i.e. the
    /// track ends on a plateau whose last cycle is later than the last
    /// stored sample. Exporters append this so ramps span their full
    /// duration.
    pub fn trailing_sample(&self) -> Option<(u64, f64)> {
        match (self.samples.last(), self.last) {
            (Some(&(stored, _)), Some((cycle, value))) if cycle > stored => Some((cycle, value)),
            _ => None,
        }
    }
}

/// Per-layer span collector. Disabled collectors hold no buffers and
/// every probe is a branch on the `enabled` flag.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    enabled: bool,
    layer: &'static str,
    open: Vec<(u64, Phase, u64, u64, AccessClass)>,
    spans: Vec<SpanEvent>,
    counters: Vec<CounterTrack>,
}

impl TraceCollector {
    /// A collector that records nothing until [`enable`](Self::enable)d.
    pub fn disabled(layer: &'static str) -> Self {
        TraceCollector {
            enabled: false,
            layer,
            open: Vec::new(),
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// An enabled collector for a model layer (`"rtl"`, `"tlm1"`,
    /// `"tlm2"`).
    pub fn for_layer(layer: &'static str) -> Self {
        TraceCollector {
            enabled: true,
            ..TraceCollector::disabled(layer)
        }
    }

    pub fn enable(&mut self) {
        self.enabled = true;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn layer(&self) -> &'static str {
        self.layer
    }

    /// Opens a phase span for a transaction at `cycle`.
    #[inline]
    pub fn begin(
        &mut self,
        trace_id: u64,
        phase: Phase,
        cycle: u64,
        addr: u64,
        class: AccessClass,
    ) {
        if self.enabled {
            self.open.push((trace_id, phase, cycle, addr, class));
        }
    }

    /// Closes a phase span at `cycle` (inclusive). Unmatched ends are
    /// ignored so probe sites don't have to track model corner cases.
    #[inline]
    pub fn end(&mut self, trace_id: u64, phase: Phase, cycle: u64, error: bool) {
        if !self.enabled {
            return;
        }
        if let Some(i) = self
            .open
            .iter()
            .position(|&(id, p, _, _, _)| id == trace_id && p == phase)
        {
            let (_, _, begin, addr, class) = self.open.swap_remove(i);
            self.spans.push(SpanEvent {
                trace_id,
                phase,
                begin,
                end: cycle.max(begin),
                addr,
                class,
                error,
            });
        }
    }

    /// Appends a counter-track sample, skipping repeats of the same
    /// value.
    #[inline]
    pub fn counter_sample(&mut self, track: &str, cycle: u64, value: f64) {
        if !self.enabled {
            return;
        }
        let idx = match self.counters.iter().position(|t| t.name == track) {
            Some(i) => i,
            None => {
                self.counters.push(CounterTrack {
                    name: track.to_owned(),
                    samples: Vec::new(),
                    last: None,
                });
                self.counters.len() - 1
            }
        };
        let t = &mut self.counters[idx];
        if t.samples.last().map(|&(_, v)| v) != Some(value) {
            t.samples.push((cycle, value));
        }
        t.last = Some((cycle, value));
    }

    /// All closed spans, in close order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    pub fn counters(&self) -> &[CounterTrack] {
        &self.counters
    }

    /// Number of closed spans (the cross-layer comparison metric).
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of spans opened but never closed (should be 0 after a
    /// clean run).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Drops all recorded data, keeping the enabled state.
    pub fn clear(&mut self) {
        self.open.clear();
        self.spans.clear();
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_produces_closed_span() {
        let mut c = TraceCollector::for_layer("tlm1");
        c.begin(7, Phase::Address, 10, 0x100, AccessClass::Read);
        c.end(7, Phase::Address, 12, false);
        assert_eq!(c.span_count(), 1);
        let s = &c.spans()[0];
        assert_eq!((s.begin, s.end, s.duration()), (10, 12, 3));
        assert_eq!(s.class, AccessClass::Read);
        assert!(!s.error);
        assert_eq!(c.open_count(), 0);
    }

    #[test]
    fn phases_of_same_txn_are_independent() {
        let mut c = TraceCollector::for_layer("tlm1");
        c.begin(1, Phase::Request, 0, 0, AccessClass::Write);
        c.begin(1, Phase::Address, 2, 0, AccessClass::Write);
        c.end(1, Phase::Address, 3, false);
        assert_eq!(c.span_count(), 1);
        assert_eq!(c.open_count(), 1);
        c.end(1, Phase::Request, 1, false);
        assert_eq!(c.span_count(), 2);
    }

    #[test]
    fn disabled_collector_is_inert() {
        let mut c = TraceCollector::disabled("rtl");
        c.begin(1, Phase::Request, 0, 0, AccessClass::Read);
        c.end(1, Phase::Request, 5, false);
        c.counter_sample("e", 0, 1.0);
        assert_eq!(c.span_count(), 0);
        assert_eq!(c.open_count(), 0);
        assert!(c.counters().is_empty());
    }

    #[test]
    fn unmatched_end_is_ignored() {
        let mut c = TraceCollector::for_layer("tlm2");
        c.end(99, Phase::ReadData, 4, false);
        assert_eq!(c.span_count(), 0);
    }

    #[test]
    fn counter_samples_dedupe_repeats() {
        let mut c = TraceCollector::for_layer("rtl");
        c.counter_sample("energy_pj", 0, 1.5);
        c.counter_sample("energy_pj", 1, 1.5);
        c.counter_sample("energy_pj", 2, 2.0);
        assert_eq!(c.counters()[0].samples, vec![(0, 1.5), (2, 2.0)]);
    }

    #[test]
    fn first_sample_on_empty_counters_creates_track() {
        // Regression: the first sample of the first track exercises the
        // counters-empty path, which must index the freshly pushed
        // track instead of unwrapping `last_mut`.
        let mut c = TraceCollector::for_layer("tlm1");
        assert!(c.counters().is_empty());
        c.counter_sample("energy_pj", 3, 0.5);
        assert_eq!(c.counters().len(), 1);
        assert_eq!(c.counters()[0].samples, vec![(3, 0.5)]);
        // And after clear() the same path runs again without panicking.
        c.clear();
        c.counter_sample("energy_pj", 0, 1.0);
        assert_eq!(c.counters()[0].samples, vec![(0, 1.0)]);
    }

    #[test]
    fn trailing_sample_recovers_plateau_end() {
        // Regression: dedup dropped the last sample of a plateau, so a
        // counter ramp [(0,1),(1,2),(2,2),(3,2)] exported as ending at
        // cycle 1. The track now remembers the final sample.
        let mut c = TraceCollector::for_layer("tlm1");
        c.counter_sample("e", 0, 1.0);
        c.counter_sample("e", 1, 2.0);
        c.counter_sample("e", 2, 2.0);
        c.counter_sample("e", 3, 2.0);
        let t = &c.counters()[0];
        assert_eq!(t.samples, vec![(0, 1.0), (1, 2.0)]);
        assert_eq!(t.last, Some((3, 2.0)));
        assert_eq!(t.trailing_sample(), Some((3, 2.0)));
        // No plateau: the stored samples already end the track.
        let mut c2 = TraceCollector::for_layer("tlm1");
        c2.counter_sample("e", 0, 1.0);
        c2.counter_sample("e", 1, 2.0);
        assert_eq!(c2.counters()[0].trailing_sample(), None);
        // clear() resets the remembered sample too.
        c.clear();
        c.counter_sample("e", 5, 7.0);
        assert_eq!(c.counters()[0].trailing_sample(), None);
    }

    #[test]
    fn end_clamps_to_begin() {
        let mut c = TraceCollector::for_layer("tlm2");
        c.begin(1, Phase::Address, 5, 0, AccessClass::Read);
        c.end(1, Phase::Address, 5, false);
        assert_eq!(c.spans()[0].duration(), 1);
    }
}
