//! Live telemetry: a leveled ring-buffered structured event log, a
//! rolling request-latency window, and a Prometheus-style text
//! exposition of a [`MetricsSnapshot`].
//!
//! This module is the serving-side counterpart of [`profiling`]: where
//! the profiler answers "where did a finished campaign spend its
//! time", the telemetry plane answers "what is the daemon doing *right
//! now*". Three pieces:
//!
//! * [`EventLog`] — structured events (`level`, name, typed fields) in
//!   a bounded ring buffer, exported as JSONL
//!   (`schema_version` [`TELEMETRY_SCHEMA_VERSION`]) and optionally
//!   mirrored to stderr at `warn`+. The same cheap-when-off discipline
//!   as [`Profiler`]: a log that wants nothing reduces every probe to
//!   one branch, with no allocation and no clock read.
//! * [`SloWindow`] — a sliding window over the last N request latency
//!   samples (queue wait / execute / end-to-end, plus cache hits and
//!   misses), aggregated on demand into nearest-rank percentiles and a
//!   windowed hit ratio. Count-based rather than time-based, so
//!   aggregates are deterministic given the sample sequence.
//! * [`prometheus_text`] — renders a [`MetricsSnapshot`] in the
//!   Prometheus text exposition format (counters, gauges, cumulative
//!   histogram buckets); [`write_atomic`] rewrites the metrics file
//!   with the temp-file + rename idiom so scrapers never read a torn
//!   write.
//!
//! Like [`profiling`], the event log is wall-clock based (timestamps
//! are microseconds since the log's construction); everything else
//! here is deterministic.
//!
//! [`profiling`]: crate::profiling
//! [`Profiler`]: crate::profiling::Profiler

use crate::metrics::MetricsSnapshot;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::time::Instant;

/// Schema version stamped on every exported JSONL event line.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

/// Event severity, most severe first (so `level <= threshold` means
/// "at least as severe as the threshold admits").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The operation failed and was not recovered.
    Error,
    /// Something is off (stalls, flush failures); service continues.
    Warn,
    /// Lifecycle landmarks (session start/end, subscriptions).
    Info,
    /// Per-request diagnostics.
    Debug,
    /// Per-scenario diagnostics.
    Trace,
}

impl Level {
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// The lowercase level name used on the wire and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (`"off"` maps to `None`).
    pub fn from_name(name: &str) -> Option<Option<Level>> {
        match name {
            "off" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One structured event: severity, a static name, typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Monotonic sequence number over the log's whole lifetime (keeps
    /// counting across ring evictions, so gaps are visible).
    pub seq: u64,
    /// Microseconds since the log was constructed.
    pub ts_us: u64,
    pub level: Level,
    /// Dotted event name, e.g. `watchdog.stall`.
    pub name: &'static str,
    pub fields: Vec<(&'static str, Value)>,
}

impl TelemetryEvent {
    /// One JSONL line: `schema_version`, `seq`, `ts_us`, `level`,
    /// `event`, then the fields object.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"schema_version\":{TELEMETRY_SCHEMA_VERSION},\"seq\":{},\"ts_us\":{},\
             \"level\":\"{}\",\"event\":\"{}\",\"fields\":{{",
            self.seq,
            self.ts_us,
            self.level.name(),
            escape(self.name)
        ));
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(key));
            out.push_str("\":");
            value.render(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// A leveled, bounded, ring-buffered structured event log.
///
/// The capture threshold and the stderr mirror threshold are
/// independent: a daemon can buffer `debug` events for JSONL export
/// while only `warn`+ reaches stderr. When *neither* threshold wants a
/// level, [`wants`](Self::wants) is false and an instrumentation site
/// guarded by it performs no allocation and no clock read — the same
/// discipline as the campaign profiler.
#[derive(Debug)]
pub struct EventLog {
    /// Prefix of stderr-mirrored lines, e.g. `hierbus-serve`.
    component: &'static str,
    capture: Option<Level>,
    stderr: Option<Level>,
    capacity: usize,
    epoch: Instant,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<TelemetryEvent>,
}

impl EventLog {
    /// A log capturing events at `capture` severity or more severe,
    /// holding at most `capacity` of them (older events are dropped,
    /// counted by [`dropped`](Self::dropped)).
    pub fn new(component: &'static str, capture: Option<Level>, capacity: usize) -> Self {
        EventLog {
            component,
            capture,
            stderr: None,
            capacity: capacity.max(1),
            epoch: Instant::now(),
            next_seq: 0,
            dropped: 0,
            events: VecDeque::new(),
        }
    }

    /// A log that wants nothing.
    pub fn disabled(component: &'static str) -> Self {
        EventLog::new(component, None, 1)
    }

    /// Mirrors events at `level` or more severe to stderr as
    /// `component: [level] name key=value ...` lines.
    pub fn set_stderr(&mut self, level: Option<Level>) {
        self.stderr = level;
    }

    /// The capture threshold.
    pub fn capture_level(&self) -> Option<Level> {
        self.capture
    }

    /// True when an event at `level` would be captured or mirrored —
    /// the guard instrumentation sites use to stay zero-cost when off.
    pub fn wants(&self, level: Level) -> bool {
        matches!(self.capture, Some(t) if level <= t)
            || matches!(self.stderr, Some(t) if level <= t)
    }

    /// Records an event (callers should guard with
    /// [`wants`](Self::wants); an unwanted event is dropped here
    /// regardless).
    pub fn emit(&mut self, level: Level, name: &'static str, fields: Vec<(&'static str, Value)>) {
        if !self.wants(level) {
            return;
        }
        let event = TelemetryEvent {
            seq: self.next_seq,
            ts_us: self.epoch.elapsed().as_micros() as u64,
            level,
            name,
            fields,
        };
        self.next_seq += 1;
        if matches!(self.stderr, Some(t) if level <= t) {
            let mut line = format!("{}: [{}] {}", self.component, level.name(), event.name);
            for (key, value) in &event.fields {
                let mut rendered = String::new();
                value.render(&mut rendered);
                line.push_str(&format!(" {key}={rendered}"));
            }
            eprintln!("{line}");
        }
        if matches!(self.capture, Some(t) if level <= t) {
            if self.events.len() == self.capacity {
                self.events.pop_front();
                self.dropped += 1;
            }
            self.events.push_back(event);
        }
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.events.iter()
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events ever emitted (including ones the ring has since dropped).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted from the ring to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffered events as JSONL, one
    /// `schema_version` [`TELEMETRY_SCHEMA_VERSION`] object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// One request's latency decomposition, pushed into a [`SloWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestSample {
    /// Time the request sat in the session queue (µs).
    pub queue_us: u64,
    /// Time spent checking the cache and executing misses (µs).
    pub execute_us: u64,
    /// End-to-end wall clock, enqueue to final event (µs).
    pub total_us: u64,
    /// Scenarios in the request.
    pub scenarios: u64,
    /// Scenario lookups answered from cache.
    pub hits: u64,
    /// Scenario lookups that went to a worker.
    pub misses: u64,
}

/// Nearest-rank percentiles over one latency dimension of the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantiles {
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

fn quantiles(values: &mut [u64]) -> Option<Quantiles> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    let rank = |q: f64| {
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        values[rank - 1]
    };
    Some(Quantiles {
        p50: rank(0.50),
        p90: rank(0.90),
        p99: rank(0.99),
        max: *values.last().unwrap(),
    })
}

/// Rolling aggregates over the window's current contents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloAggregate {
    /// Samples currently in the window.
    pub window: usize,
    /// Requests ever pushed (beyond the window).
    pub requests: u64,
    /// Windowed cache hit ratio, `None` when the window saw no
    /// lookups.
    pub hit_ratio: Option<f64>,
    pub queue_us: Option<Quantiles>,
    pub execute_us: Option<Quantiles>,
    pub total_us: Option<Quantiles>,
}

/// A sliding window over the last N [`RequestSample`]s.
///
/// Count-based rather than time-based so aggregation is deterministic
/// for a given sample sequence — the unit tests pin exact percentiles.
#[derive(Debug, Clone)]
pub struct SloWindow {
    capacity: usize,
    total: u64,
    samples: VecDeque<RequestSample>,
}

impl SloWindow {
    /// A window over the last `capacity` requests (at least 1).
    pub fn new(capacity: usize) -> Self {
        SloWindow {
            capacity: capacity.max(1),
            total: 0,
            samples: VecDeque::new(),
        }
    }

    /// Records one completed request, evicting the oldest sample when
    /// the window is full.
    pub fn push(&mut self, sample: RequestSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
        self.total += 1;
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Aggregates the window: nearest-rank latency percentiles per
    /// dimension and the windowed cache hit ratio.
    pub fn aggregate(&self) -> SloAggregate {
        let mut queue = Vec::with_capacity(self.samples.len());
        let mut execute = Vec::with_capacity(self.samples.len());
        let mut total_us = Vec::with_capacity(self.samples.len());
        let (mut hits, mut lookups) = (0u64, 0u64);
        for s in &self.samples {
            queue.push(s.queue_us);
            execute.push(s.execute_us);
            total_us.push(s.total_us);
            hits += s.hits;
            lookups += s.hits + s.misses;
        }
        SloAggregate {
            window: self.samples.len(),
            requests: self.total,
            hit_ratio: (lookups > 0).then(|| hits as f64 / lookups as f64),
            queue_us: quantiles(&mut queue),
            execute_us: quantiles(&mut execute),
            total_us: quantiles(&mut total_us),
        }
    }
}

/// Maps a metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other byte becomes `_`, and a
/// leading digit gets a `_` prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders a [`MetricsSnapshot`] in the Prometheus text exposition
/// format: one `# TYPE` declaration per family, counters and gauges as
/// plain samples (gauge high-water marks as a `_hwm` gauge), and
/// histograms as cumulative `_bucket{le="..."}` series with `_sum` and
/// `_count` — the shape `check_telemetry` gates and any Prometheus
/// scraper ingests directly.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value, hwm) in &snapshot.gauges {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        out.push_str(&format!("# TYPE {name}_hwm gauge\n{name}_hwm {hwm}\n"));
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, count) in h.counts.iter().enumerate() {
            cumulative += count;
            match h.bounds.get(i) {
                Some(b) => {
                    out.push_str(&format!("{name}_bucket{{le=\"{b}\"}} {cumulative}\n"));
                }
                None => {
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                }
            }
        }
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// Atomically replaces `path` with `contents` (temp file + rename,
/// creating parent directories) — a scraper concurrent with the
/// rewrite reads either the old exposition or the new one, never a
/// torn mix.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        for level in Level::ALL {
            assert_eq!(Level::from_name(level.name()), Some(Some(level)));
        }
        assert_eq!(Level::from_name("off"), Some(None));
        assert_eq!(Level::from_name("loud"), None);
    }

    #[test]
    fn disabled_log_wants_nothing_and_buffers_nothing() {
        let mut log = EventLog::disabled("test");
        assert!(!log.wants(Level::Error));
        log.emit(Level::Error, "boom", vec![("k", Value::U64(1))]);
        assert!(log.is_empty());
        assert_eq!(log.total(), 0);
    }

    #[test]
    fn capture_threshold_filters_less_severe_events() {
        let mut log = EventLog::new("test", Some(Level::Warn), 8);
        assert!(log.wants(Level::Error));
        assert!(log.wants(Level::Warn));
        assert!(!log.wants(Level::Info));
        log.emit(Level::Warn, "kept", vec![]);
        log.emit(Level::Info, "filtered", vec![]);
        assert_eq!(log.len(), 1);
        assert_eq!(log.events().next().unwrap().name, "kept");
    }

    #[test]
    fn ring_drops_oldest_and_counts_drops() {
        let mut log = EventLog::new("test", Some(Level::Trace), 2);
        log.emit(Level::Info, "a", vec![]);
        log.emit(Level::Info, "b", vec![]);
        log.emit(Level::Info, "c", vec![]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.total(), 3);
        let names: Vec<&str> = log.events().map(|e| e.name).collect();
        assert_eq!(names, ["b", "c"]);
        // Sequence numbers keep counting across the drop.
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [1, 2]);
    }

    #[test]
    fn jsonl_lines_carry_the_schema_version_and_typed_fields() {
        let mut log = EventLog::new("test", Some(Level::Trace), 8);
        log.emit(
            Level::Warn,
            "watchdog.stall",
            vec![
                ("req", Value::Str("r\"1".to_owned())),
                ("elapsed_ms", Value::U64(31)),
                ("ratio", Value::F64(0.5)),
                ("degraded", Value::Bool(true)),
                ("nan", Value::F64(f64::NAN)),
            ],
        );
        let jsonl = log.to_jsonl();
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with("{\"schema_version\":1,\"seq\":0,\"ts_us\":"));
        assert!(line.contains("\"level\":\"warn\",\"event\":\"watchdog.stall\""));
        assert!(line.contains("\"req\":\"r\\\"1\""));
        assert!(line.contains("\"elapsed_ms\":31"));
        assert!(line.contains("\"ratio\":0.5"));
        assert!(line.contains("\"degraded\":true"));
        // Non-finite floats degrade to null instead of invalid JSON.
        assert!(line.contains("\"nan\":null"));
    }

    #[test]
    fn event_timestamps_are_monotone() {
        let mut log = EventLog::new("test", Some(Level::Trace), 8);
        for _ in 0..5 {
            log.emit(Level::Info, "tick", vec![]);
        }
        let ts: Vec<u64> = log.events().map(|e| e.ts_us).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn slo_window_evicts_and_aggregates_nearest_rank() {
        let mut w = SloWindow::new(4);
        assert!(w.aggregate().total_us.is_none());
        for (i, total) in [10u64, 20, 30, 40, 50].iter().enumerate() {
            w.push(RequestSample {
                queue_us: i as u64,
                execute_us: total / 2,
                total_us: *total,
                scenarios: 1,
                hits: u64::from(i % 2 == 0),
                misses: u64::from(i % 2 != 0),
            });
        }
        // Capacity 4: the first sample (total 10) was evicted.
        let agg = w.aggregate();
        assert_eq!(agg.window, 4);
        assert_eq!(agg.requests, 5);
        let t = agg.total_us.unwrap();
        assert_eq!((t.p50, t.p90, t.p99, t.max), (30, 50, 50, 50));
        // Window holds samples 1..=4: hits at even i (2, 4) = 2 of 4.
        assert_eq!(agg.hit_ratio, Some(0.5));
    }

    #[test]
    fn slo_quantiles_of_a_single_sample_are_that_sample() {
        let mut w = SloWindow::new(8);
        w.push(RequestSample {
            total_us: 77,
            ..RequestSample::default()
        });
        let t = w.aggregate().total_us.unwrap();
        assert_eq!((t.p50, t.p99, t.max), (77, 77, 77));
        // No lookups at all: the ratio is absent, not fabricated.
        assert_eq!(w.aggregate().hit_ratio, None);
    }

    #[test]
    fn prometheus_histograms_are_cumulative_and_end_at_count() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("serve.requests");
        let g = m.gauge("serve.queue.depth");
        let h = m.histogram("serve.latency_us", &[10, 100]);
        m.add(c, 3);
        m.set_gauge(g, 2);
        m.observe(h, 5);
        m.observe(h, 50);
        m.observe(h, 5000);
        let text = prometheus_text(&m.snapshot());
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 3\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n"));
        assert!(text.contains("serve_queue_depth_hwm 2\n"));
        assert!(text.contains("# TYPE serve_latency_us histogram\n"));
        assert!(text.contains("serve_latency_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("serve_latency_us_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("serve_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("serve_latency_us_sum 5055\n"));
        assert!(text.contains("serve_latency_us_count 3\n"));
    }

    #[test]
    fn sanitize_maps_names_onto_the_prometheus_charset() {
        assert_eq!(sanitize("serve.cache.hit"), "serve_cache_hit");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn write_atomic_replaces_the_file() {
        let dir = std::env::temp_dir().join("hierbus_telemetry_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("metrics.prom");
        write_atomic(&path, "first 1\n").unwrap();
        write_atomic(&path, "second 2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second 2\n");
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
