//! Energy attribution ledgers and the cross-layer divergence auditor.
//!
//! The energy models answer *how much*; this module answers *where it
//! went*. An [`EnergyLedger`] decomposes a model's total energy along
//! `layer → slave → phase → access class` (plus an optional software
//! dimension, e.g. a JCVM exploration config, and an optional
//! per-master dimension so multi-master runs attribute every joule to
//! CPU vs DMA), and a
//! [`DivergenceAuditor`] compares two ledgers — or two per-cycle power
//! traces — and pinpoints the first bucket/cycle where they disagree
//! beyond a tolerance.
//!
//! Attribution is *post-hoc and exact*: for per-cycle models (RTL,
//! TLM1) each cycle's energy is assigned to exactly one bucket by a
//! deterministic span-priority rule ([`attribute_cycles`]), so bucket
//! sums partition the trace sum — attribution never changes the
//! numbers, only decomposes them. Event-priced models (TLM2) book each
//! phase event's price directly. Ledgers merge bucket-wise in sorted
//! key order, so a campaign merging per-scenario ledgers in index
//! order is byte-identical at any worker count.

use crate::span::{AccessClass, Phase, SpanEvent, TraceCollector};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Phase dimension of an attribution bucket. Unlike [`Phase`] this has
/// no request phase (request queueing is master-side bookkeeping, no
/// bus activity) and adds an explicit idle bucket so the ledger still
/// partitions the whole trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LedgerPhase {
    Address,
    ReadData,
    WriteData,
    /// Cycles covered by no address/data span (bus idle, handshake
    /// fall-back, inter-transaction gaps).
    Idle,
}

impl LedgerPhase {
    pub const ALL: [LedgerPhase; 4] = [
        LedgerPhase::Address,
        LedgerPhase::ReadData,
        LedgerPhase::WriteData,
        LedgerPhase::Idle,
    ];

    pub fn name(self) -> &'static str {
        match self {
            LedgerPhase::Address => "address",
            LedgerPhase::ReadData => "read-data",
            LedgerPhase::WriteData => "write-data",
            LedgerPhase::Idle => "idle",
        }
    }

    /// The ledger phase corresponding to a span phase; `None` for
    /// request spans, which never own energy.
    pub fn from_span_phase(phase: Phase) -> Option<LedgerPhase> {
        match phase {
            Phase::Request => None,
            Phase::Address => Some(LedgerPhase::Address),
            Phase::ReadData => Some(LedgerPhase::ReadData),
            Phase::WriteData => Some(LedgerPhase::WriteData),
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<LedgerPhase> {
        LedgerPhase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One attribution bucket: which slave, which protocol phase, which
/// access class. The class is `None` for idle energy, which belongs to
/// no transaction. Multi-master runs additionally tag each bucket with
/// the issuing master's name (`cpu`/`dma`); single-master ledgers
/// leave it `None`, keeping their serialized forms byte-identical to
/// pre-multi-master ones.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BucketKey {
    pub slave: String,
    pub phase: LedgerPhase,
    pub class: Option<AccessClass>,
    /// The per-master dimension; `None` outside multi-master runs (and
    /// for idle cycles, which no master owns). Last field so derived
    /// ordering keeps untagged ledgers in their historical sort order.
    pub master: Option<String>,
}

impl BucketKey {
    pub fn new(slave: impl Into<String>, phase: LedgerPhase, class: Option<AccessClass>) -> Self {
        BucketKey {
            slave: slave.into(),
            phase,
            class,
            master: None,
        }
    }

    /// Tags (or untags) the bucket with a master name; builder-style.
    pub fn with_master(mut self, master: Option<impl Into<String>>) -> Self {
        self.master = master.map(Into::into);
        self
    }

    /// The bucket for energy outside any transaction.
    pub fn idle() -> Self {
        BucketKey::new("-", LedgerPhase::Idle, None)
    }

    pub fn class_name(&self) -> &'static str {
        self.class.map(AccessClass::name).unwrap_or("-")
    }

    /// The bucket's folded-stack key, `slave;phase;class` — with a
    /// `@master` suffix on the class component when the bucket carries
    /// the per-master tag (`mem;read-data;read@dma`). Master names must
    /// not contain `;` or `@`.
    pub fn folded_key(&self) -> String {
        match &self.master {
            None => format!("{};{};{}", self.slave, self.phase.name(), self.class_name()),
            Some(m) => {
                debug_assert!(!m.contains([';', '@']), "master name {m:?} not foldable");
                format!(
                    "{};{};{}@{}",
                    self.slave,
                    self.phase.name(),
                    self.class_name(),
                    m
                )
            }
        }
    }

    /// Inverse of [`folded_key`](Self::folded_key); `None` on any
    /// malformed component, so stale serialized ledgers surface as
    /// parse failures instead of misattributed buckets.
    pub fn from_folded_key(key: &str) -> Option<BucketKey> {
        let mut parts = key.rsplitn(3, ';');
        let class_part = parts.next()?;
        let (class_name, master) = match class_part.split_once('@') {
            Some((c, m)) if !m.is_empty() => (c, Some(m.to_string())),
            Some(_) => return None,
            None => (class_part, None),
        };
        let class = match class_name {
            "-" => None,
            "fetch" => Some(AccessClass::Fetch),
            "read" => Some(AccessClass::Read),
            "write" => Some(AccessClass::Write),
            _ => return None,
        };
        let phase = LedgerPhase::from_name(parts.next()?)?;
        let mut key = BucketKey::new(parts.next()?, phase, class);
        key.master = master;
        Some(key)
    }
}

/// Maps bus addresses to slave names for the ledger's slave dimension.
/// Windows are `[start, end)`; unmapped addresses resolve to `"-"`.
#[derive(Debug, Clone, Default)]
pub struct SlaveMap {
    windows: Vec<(u64, u64, String)>,
}

impl SlaveMap {
    pub fn new() -> Self {
        SlaveMap::default()
    }

    /// Registers `[start, end)` as `name`. First matching window wins.
    pub fn add(&mut self, start: u64, end: u64, name: impl Into<String>) -> &mut Self {
        self.windows.push((start, end, name.into()));
        self
    }

    pub fn resolve(&self, addr: u64) -> &str {
        self.windows
            .iter()
            .find(|&&(lo, hi, _)| addr >= lo && addr < hi)
            .map(|(_, _, n)| n.as_str())
            .unwrap_or("-")
    }
}

/// A deterministic energy-attribution ledger for one model layer (or a
/// merge of several runs of the same layer).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyLedger {
    layer: String,
    /// Optional software dimension (JCVM bytecode region, exploration
    /// config label, …).
    software: Option<String>,
    cycles: u64,
    entries: BTreeMap<BucketKey, f64>,
}

impl EnergyLedger {
    pub fn new(layer: impl Into<String>) -> Self {
        EnergyLedger {
            layer: layer.into(),
            software: None,
            cycles: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Tags every bucket of this ledger with a software dimension.
    pub fn with_software(mut self, software: impl Into<String>) -> Self {
        self.software = Some(software.into());
        self
    }

    pub fn layer(&self) -> &str {
        &self.layer
    }

    pub fn software(&self) -> Option<&str> {
        self.software.as_deref()
    }

    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    pub fn set_cycles(&mut self, cycles: u64) {
        self.cycles = cycles;
    }

    /// Adds `pj` to a bucket (creating it at zero first).
    pub fn book(&mut self, key: BucketKey, pj: f64) {
        *self.entries.entry(key).or_insert(0.0) += pj;
    }

    /// Buckets in sorted key order.
    pub fn entries(&self) -> impl Iterator<Item = (&BucketKey, f64)> {
        self.entries.iter().map(|(k, &v)| (k, v))
    }

    pub fn bucket_count(&self) -> usize {
        self.entries.len()
    }

    pub fn get(&self, key: &BucketKey) -> f64 {
        self.entries.get(key).copied().unwrap_or(0.0)
    }

    /// Sum of all buckets, in sorted key order (deterministic). The
    /// `+ 0.0` turns the empty-sum identity `-0.0` into plain zero so
    /// totals never render with a stray sign.
    pub fn total_pj(&self) -> f64 {
        self.entries.values().sum::<f64>() + 0.0
    }

    /// Per-phase totals in [`LedgerPhase::ALL`] order.
    pub fn phase_totals(&self) -> [(LedgerPhase, f64); 4] {
        LedgerPhase::ALL.map(|p| {
            (
                p,
                self.entries
                    .iter()
                    .filter(|(k, _)| k.phase == p)
                    .map(|(_, v)| v)
                    .sum::<f64>()
                    + 0.0,
            )
        })
    }

    /// The `n` largest buckets, ties broken by key order (stable across
    /// runs and platforms).
    pub fn top(&self, n: usize) -> Vec<(&BucketKey, f64)> {
        let mut all: Vec<(&BucketKey, f64)> = self.entries().collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(b.0)));
        all.truncate(n);
        all
    }

    /// Folds another ledger into this one: bucket-wise addition in the
    /// other ledger's sorted key order, cycles add, and the software
    /// tag survives only if both sides agree.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (k, v) in other.entries() {
            self.book(k.clone(), v);
        }
        self.cycles += other.cycles;
        if self.software != other.software {
            self.software = None;
        }
    }

    /// Folded-stack ("energy flamegraph") text: one
    /// `layer;[software;]slave;phase;class value` line per bucket, in
    /// sorted key order. Feed to any flamegraph renderer.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.entries() {
            out.push_str(&self.layer);
            if let Some(sw) = &self.software {
                out.push(';');
                out.push_str(sw);
            }
            let _ = writeln!(out, ";{} {:.3}", k.folded_key(), v);
        }
        out
    }

    /// The ledger as a JSON object (hand-rolled; this crate is
    /// dependency-free). Floats print with `{}` — Rust's shortest
    /// round-trip formatting — so re-parsing recovers the exact values.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(r#"{{"layer":"{}","#, escape(&self.layer)));
        match &self.software {
            Some(sw) => out.push_str(&format!(r#""software":"{}","#, escape(sw))),
            None => out.push_str(r#""software":null,"#),
        }
        let _ = write!(
            out,
            r#""cycles":{},"total_pj":{},"buckets":["#,
            self.cycles,
            self.total_pj()
        );
        for (i, (k, v)) in self.entries().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // The master field is emitted only when tagged, so
            // single-master attribution artifacts stay byte-identical.
            match &k.master {
                None => {
                    let _ = write!(
                        out,
                        r#"{{"slave":"{}","phase":"{}","class":"{}","energy_pj":{}}}"#,
                        escape(&k.slave),
                        k.phase.name(),
                        k.class_name(),
                        v
                    );
                }
                Some(m) => {
                    let _ = write!(
                        out,
                        r#"{{"slave":"{}","phase":"{}","class":"{}","master":"{}","energy_pj":{}}}"#,
                        escape(&k.slave),
                        k.phase.name(),
                        k.class_name(),
                        escape(m),
                        v
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Renders the ledger as Perfetto counter tracks (one per bucket,
    /// ramping 0 → bucket energy over the run) on a [`TraceCollector`],
    /// so [`crate::perfetto::export`] can lay attribution next to the
    /// span tracks.
    pub fn to_collector(&self) -> TraceCollector {
        // TraceCollector layers are static; map the known model layers
        // and fall back to a generic label.
        let layer = match self.layer.as_str() {
            "rtl" => "rtl",
            "tlm1" => "tlm1",
            "tlm2" => "tlm2",
            _ => "ledger",
        };
        let mut c = TraceCollector::for_layer(layer);
        let end = self.cycles.max(1);
        for (k, v) in self.entries() {
            let track = format!("pJ {}", k.folded_key());
            c.counter_sample(&track, 0, 0.0);
            c.counter_sample(&track, end, v);
        }
        c
    }

    /// Totals along the per-master dimension, in sorted master order
    /// with the untagged (`None`) slice first. The slice sum equals
    /// [`total_pj`](Self::total_pj) up to f64 regrouping — every joule
    /// is attributable.
    pub fn master_totals(&self) -> Vec<(Option<String>, f64)> {
        let mut totals: BTreeMap<Option<String>, f64> = BTreeMap::new();
        for (k, v) in self.entries() {
            *totals.entry(k.master.clone()).or_insert(0.0) += v;
        }
        totals.into_iter().map(|(m, v)| (m, v + 0.0)).collect()
    }

    /// The total booked against one master tag (`None` = untagged).
    pub fn master_total(&self, master: Option<&str>) -> f64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.master.as_deref() == master)
            .map(|(_, v)| v)
            .sum::<f64>()
            + 0.0
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds a ledger from a per-cycle energy trace plus the span record
/// of the same run, for cycle-resolved models (RTL, TLM1).
///
/// Each cycle is owned by exactly one bucket, chosen deterministically
/// among the spans covering it: a data-phase span beats an address
/// span (pipelined buses overlap the next address with the current
/// data beats, and the data lines dominate switching); at equal rank
/// the *later-issued* span wins — an older span still open is waiting
/// out wait states while the newest transfer is the one toggling the
/// lines — and lower trace id breaks remaining ties. Request spans
/// never own energy. Cycles no span covers go to the idle bucket.
/// Because the assignment is a partition, the ledger total equals the
/// trace sum up to f64 regrouping.
pub fn attribute_cycles(
    layer: &str,
    spans: &[SpanEvent],
    trace: &[f64],
    slaves: &SlaveMap,
) -> EnergyLedger {
    attribute_cycles_by_master(layer, spans, trace, slaves, |_| None)
}

/// [`attribute_cycles`] with the per-master dimension: each owned
/// cycle's bucket is additionally tagged with the issuing master's
/// name, resolved from the owning span's trace id by `master_of`
/// (multi-master runs pass `hierbus_ec::dma::master_of_trace`; this
/// crate stays dependency-free, hence the closure). Idle cycles stay
/// untagged — no master owns them. Resolving everything to `None`
/// reproduces [`attribute_cycles`] exactly.
pub fn attribute_cycles_by_master(
    layer: &str,
    spans: &[SpanEvent],
    trace: &[f64],
    slaves: &SlaveMap,
    master_of: impl Fn(u64) -> Option<&'static str>,
) -> EnergyLedger {
    let mut ledger = EnergyLedger::new(layer);
    ledger.set_cycles(trace.len() as u64);
    // owner[c] = (priority rank, span begin, trace id, span index): the
    // winning span per cycle under the rule above.
    let mut owner: Vec<Option<(u8, u64, u64, usize)>> = vec![None; trace.len()];
    for (idx, s) in spans.iter().enumerate() {
        let rank = match s.phase {
            Phase::Request => continue,
            Phase::Address => 1u8,
            Phase::ReadData | Phase::WriteData => 2u8,
        };
        let lo = s.begin.min(trace.len() as u64) as usize;
        let hi = (s.end + 1).min(trace.len() as u64) as usize;
        for slot in &mut owner[lo..hi] {
            let cand = (rank, s.begin, s.trace_id, idx);
            let better = match slot {
                None => true,
                Some((r, b, id, _)) => {
                    (rank > *r)
                        || (rank == *r && (s.begin > *b || (s.begin == *b && s.trace_id < *id)))
                }
            };
            if better {
                *slot = Some(cand);
            }
        }
    }
    for (c, &pj) in trace.iter().enumerate() {
        let key = match owner[c] {
            Some((_, _, _, idx)) => {
                let s = &spans[idx];
                let phase = LedgerPhase::from_span_phase(s.phase).unwrap();
                BucketKey::new(slaves.resolve(s.addr), phase, Some(s.class))
                    .with_master(master_of(s.trace_id))
            }
            None => BucketKey::idle(),
        };
        ledger.book(key, pj);
    }
    ledger
}

/// One bucket's worth of disagreement between two ledgers.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketDelta {
    pub key: BucketKey,
    pub a_pj: f64,
    pub b_pj: f64,
}

impl BucketDelta {
    pub fn delta(&self) -> f64 {
        self.a_pj - self.b_pj
    }
}

/// Result of auditing two ledgers bucket by bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerAudit {
    /// Buckets compared (union of both key sets).
    pub checked: usize,
    /// Buckets beyond tolerance.
    pub divergent: usize,
    /// First divergent bucket in sorted key order.
    pub first: Option<BucketDelta>,
    /// Divergent bucket with the largest |delta| (ties: first in key
    /// order).
    pub worst: Option<BucketDelta>,
}

impl LedgerAudit {
    pub fn is_clean(&self) -> bool {
        self.divergent == 0
    }
}

/// First cycle where two per-cycle traces disagree, with the spans
/// around it for context.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDivergence {
    pub cycle: u64,
    pub a_pj: f64,
    pub b_pj: f64,
    /// Spans overlapping `cycle ± window`, sorted by (begin, trace id,
    /// phase tid).
    pub context: Vec<SpanEvent>,
}

/// Streaming comparator over ledgers and per-cycle traces.
///
/// Two values diverge when `|a − b| > abs_tol + rel_tol·max(|a|,|b|)`
/// — the usual mixed tolerance, so tiny absolute noise near zero and
/// f64 regrouping on large sums are both forgiven.
#[derive(Debug, Clone, Copy)]
pub struct DivergenceAuditor {
    pub rel_tol: f64,
    pub abs_tol: f64,
}

impl Default for DivergenceAuditor {
    /// Tolerances sized for "same numbers, different summation order":
    /// anything past 1e-6 relative is a real modeling difference.
    fn default() -> Self {
        DivergenceAuditor {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
        }
    }
}

impl DivergenceAuditor {
    pub fn new(rel_tol: f64, abs_tol: f64) -> Self {
        DivergenceAuditor { rel_tol, abs_tol }
    }

    pub fn divergent(&self, a: f64, b: f64) -> bool {
        (a - b).abs() > self.abs_tol + self.rel_tol * a.abs().max(b.abs())
    }

    /// Compares two ledgers over the union of their buckets (a bucket
    /// missing on one side counts as zero).
    pub fn audit_ledgers(&self, a: &EnergyLedger, b: &EnergyLedger) -> LedgerAudit {
        let mut keys: Vec<&BucketKey> = a.entries.keys().chain(b.entries.keys()).collect();
        keys.sort();
        keys.dedup();
        let mut audit = LedgerAudit {
            checked: keys.len(),
            divergent: 0,
            first: None,
            worst: None,
        };
        for key in keys {
            let (va, vb) = (a.get(key), b.get(key));
            if !self.divergent(va, vb) {
                continue;
            }
            audit.divergent += 1;
            let delta = BucketDelta {
                key: key.clone(),
                a_pj: va,
                b_pj: vb,
            };
            if audit.first.is_none() {
                audit.first = Some(delta.clone());
            }
            let beats = audit
                .worst
                .as_ref()
                .is_none_or(|w| delta.delta().abs() > w.delta().abs());
            if beats {
                audit.worst = Some(delta);
            }
        }
        audit
    }

    /// Finds the first cycle where two per-cycle traces diverge (the
    /// shorter trace is zero-padded, so a length mismatch surfaces as a
    /// divergence in the tail) and collects the spans within `window`
    /// cycles of it.
    pub fn audit_traces(
        &self,
        a: &[f64],
        b: &[f64],
        spans: &[SpanEvent],
        window: u64,
    ) -> Option<TraceDivergence> {
        let len = a.len().max(b.len());
        for c in 0..len {
            let va = a.get(c).copied().unwrap_or(0.0);
            let vb = b.get(c).copied().unwrap_or(0.0);
            if !self.divergent(va, vb) {
                continue;
            }
            let cycle = c as u64;
            let lo = cycle.saturating_sub(window);
            let hi = cycle.saturating_add(window);
            let mut context: Vec<SpanEvent> = spans
                .iter()
                .filter(|s| s.begin <= hi && s.end >= lo)
                .cloned()
                .collect();
            context.sort_by_key(|s| (s.begin, s.trace_id, s.phase as u8));
            return Some(TraceDivergence {
                cycle,
                a_pj: va,
                b_pj: vb,
                context,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: u64,
        phase: Phase,
        begin: u64,
        end: u64,
        addr: u64,
        class: AccessClass,
    ) -> SpanEvent {
        SpanEvent {
            trace_id: id,
            phase,
            begin,
            end,
            addr,
            class,
            error: false,
        }
    }

    fn mem_map() -> SlaveMap {
        let mut m = SlaveMap::new();
        m.add(0x0, 0x100, "ram").add(0x100, 0x200, "rom");
        m
    }

    #[test]
    fn slave_map_resolves_and_falls_back() {
        let m = mem_map();
        assert_eq!(m.resolve(0x10), "ram");
        assert_eq!(m.resolve(0x100), "rom");
        assert_eq!(m.resolve(0x1000), "-");
    }

    #[test]
    fn attribute_cycles_partitions_the_trace() {
        let spans = [
            span(0, Phase::Request, 0, 0, 0x10, AccessClass::Read),
            span(0, Phase::Address, 0, 1, 0x10, AccessClass::Read),
            span(0, Phase::ReadData, 2, 3, 0x10, AccessClass::Read),
        ];
        let trace = [1.0, 2.0, 4.0, 8.0, 16.0];
        let ledger = attribute_cycles("tlm1", &spans, &trace, &mem_map());
        assert_eq!(ledger.cycles(), 5);
        assert_eq!(
            ledger.get(&BucketKey::new(
                "ram",
                LedgerPhase::Address,
                Some(AccessClass::Read)
            )),
            3.0
        );
        assert_eq!(
            ledger.get(&BucketKey::new(
                "ram",
                LedgerPhase::ReadData,
                Some(AccessClass::Read)
            )),
            12.0
        );
        assert_eq!(ledger.get(&BucketKey::idle()), 16.0);
        assert_eq!(ledger.total_pj(), 31.0);
    }

    #[test]
    fn data_span_outranks_overlapping_address_span() {
        // Pipelined: txn 1's address phase overlaps txn 0's data beats.
        let spans = [
            span(0, Phase::ReadData, 2, 4, 0x10, AccessClass::Read),
            span(1, Phase::Address, 3, 4, 0x110, AccessClass::Write),
        ];
        let trace = [0.0, 0.0, 1.0, 1.0, 1.0];
        let ledger = attribute_cycles("rtl", &spans, &trace, &mem_map());
        assert_eq!(
            ledger.get(&BucketKey::new(
                "ram",
                LedgerPhase::ReadData,
                Some(AccessClass::Read)
            )),
            3.0
        );
        assert_eq!(
            ledger.get(&BucketKey::new(
                "rom",
                LedgerPhase::Address,
                Some(AccessClass::Write)
            )),
            0.0
        );
    }

    #[test]
    fn later_issued_data_span_wins_the_overlap_cycle() {
        // A read stalled in wait states is still open when a write's
        // data beat completes: the write is the one toggling the lines,
        // so it owns the shared cycle.
        let spans = [
            span(0, Phase::ReadData, 0, 2, 0x10, AccessClass::Read),
            span(1, Phase::WriteData, 1, 1, 0x110, AccessClass::Write),
        ];
        let trace = [1.0, 8.0, 2.0];
        let ledger = attribute_cycles("tlm1", &spans, &trace, &mem_map());
        assert_eq!(
            ledger.get(&BucketKey::new(
                "rom",
                LedgerPhase::WriteData,
                Some(AccessClass::Write)
            )),
            8.0
        );
        assert_eq!(
            ledger.get(&BucketKey::new(
                "ram",
                LedgerPhase::ReadData,
                Some(AccessClass::Read)
            )),
            3.0
        );
    }

    #[test]
    fn request_spans_never_own_energy() {
        let spans = [span(0, Phase::Request, 0, 2, 0x10, AccessClass::Read)];
        let trace = [5.0, 5.0, 5.0];
        let ledger = attribute_cycles("tlm1", &spans, &trace, &mem_map());
        assert_eq!(ledger.get(&BucketKey::idle()), 15.0);
    }

    #[test]
    fn spans_past_trace_end_are_clamped() {
        let spans = [span(0, Phase::Address, 1, 10, 0x10, AccessClass::Read)];
        let trace = [1.0, 2.0];
        let ledger = attribute_cycles("tlm1", &spans, &trace, &mem_map());
        assert_eq!(ledger.total_pj(), 3.0);
        assert_eq!(
            ledger.get(&BucketKey::new(
                "ram",
                LedgerPhase::Address,
                Some(AccessClass::Read)
            )),
            2.0
        );
    }

    #[test]
    fn folded_key_round_trips() {
        for key in [
            BucketKey::idle(),
            BucketKey::new("ram", LedgerPhase::Address, Some(AccessClass::Fetch)),
            BucketKey::new("a;b", LedgerPhase::WriteData, Some(AccessClass::Write)),
            BucketKey::new("ram", LedgerPhase::ReadData, Some(AccessClass::Read))
                .with_master(Some("dma")),
            BucketKey::new("ram", LedgerPhase::Address, None).with_master(Some("cpu")),
        ] {
            assert_eq!(BucketKey::from_folded_key(&key.folded_key()), Some(key));
        }
        assert_eq!(BucketKey::from_folded_key("ram;address;bogus"), None);
        assert_eq!(BucketKey::from_folded_key("ram;bogus;read"), None);
        assert_eq!(BucketKey::from_folded_key("ram;address;read@"), None);
        assert_eq!(BucketKey::from_folded_key(""), None);
    }

    #[test]
    fn master_dimension_partitions_the_trace() {
        // Two masters' spans, disjoint in time; master resolved by an
        // id threshold like the DMA id base.
        let spans = [
            span(0, Phase::Address, 0, 0, 0x10, AccessClass::Read),
            span(1 << 8, Phase::WriteData, 1, 2, 0x110, AccessClass::Write),
        ];
        let trace = [1.0, 2.0, 4.0, 8.0];
        let master_of = |id: u64| Some(if id >= 1 << 8 { "dma" } else { "cpu" });
        let ledger = attribute_cycles_by_master("tlm1", &spans, &trace, &mem_map(), master_of);
        // Untagged run over the same inputs books the same totals.
        let untagged = attribute_cycles("tlm1", &spans, &trace, &mem_map());
        assert_eq!(ledger.total_pj(), untagged.total_pj());
        assert_eq!(ledger.master_total(Some("cpu")), 1.0);
        assert_eq!(ledger.master_total(Some("dma")), 6.0);
        assert_eq!(ledger.master_total(None), 8.0); // idle stays untagged
        let totals = ledger.master_totals();
        assert_eq!(totals.len(), 3);
        assert_eq!(totals[0].0, None); // None sorts first
        let sum: f64 = totals.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, ledger.total_pj());
        // The tagged ledger's folded form carries the master suffix.
        assert!(ledger.folded().contains("write@dma"));
        // The master field shows up in JSON only on tagged buckets.
        let json = ledger.to_json();
        assert!(json.contains(r#""master":"dma""#));
        assert!(untagged.to_json().find("master").is_none());
    }

    #[test]
    fn merge_adds_buckets_and_cycles() {
        let mut a = EnergyLedger::new("tlm1");
        a.set_cycles(10);
        a.book(BucketKey::idle(), 1.0);
        let mut b = EnergyLedger::new("tlm1");
        b.set_cycles(5);
        b.book(BucketKey::idle(), 2.0);
        b.book(
            BucketKey::new("ram", LedgerPhase::Address, Some(AccessClass::Read)),
            4.0,
        );
        a.merge(&b);
        assert_eq!(a.cycles(), 15);
        assert_eq!(a.get(&BucketKey::idle()), 3.0);
        assert_eq!(a.total_pj(), 7.0);
    }

    #[test]
    fn merge_drops_disagreeing_software_tag() {
        let mut a = EnergyLedger::new("tlm1").with_software("cfg-a");
        let b = EnergyLedger::new("tlm1").with_software("cfg-b");
        a.merge(&b);
        assert_eq!(a.software(), None);
        let mut c = EnergyLedger::new("tlm1").with_software("cfg-a");
        c.merge(&EnergyLedger::new("tlm1").with_software("cfg-a"));
        assert_eq!(c.software(), Some("cfg-a"));
    }

    #[test]
    fn folded_output_is_sorted_and_tagged() {
        let mut l = EnergyLedger::new("rtl").with_software("boot");
        l.book(
            BucketKey::new("rom", LedgerPhase::ReadData, Some(AccessClass::Fetch)),
            2.5,
        );
        l.book(BucketKey::idle(), 0.125);
        let folded = l.folded();
        assert_eq!(
            folded,
            "rtl;boot;-;idle;- 0.125\nrtl;boot;rom;read-data;fetch 2.500\n"
        );
    }

    #[test]
    fn top_orders_by_energy_then_key() {
        let mut l = EnergyLedger::new("tlm1");
        l.book(
            BucketKey::new("ram", LedgerPhase::Address, Some(AccessClass::Read)),
            1.0,
        );
        l.book(
            BucketKey::new("ram", LedgerPhase::ReadData, Some(AccessClass::Read)),
            9.0,
        );
        l.book(
            BucketKey::new("rom", LedgerPhase::Address, Some(AccessClass::Fetch)),
            1.0,
        );
        let top = l.top(2);
        assert_eq!(top[0].1, 9.0);
        assert_eq!(top[1].0.slave, "ram"); // tie broken by key order
        assert_eq!(l.top(10).len(), 3);
    }

    #[test]
    fn json_shape_round_trips_floats() {
        let mut l = EnergyLedger::new("tlm2");
        l.set_cycles(7);
        l.book(
            BucketKey::new("ram", LedgerPhase::WriteData, Some(AccessClass::Write)),
            0.1 + 0.2,
        );
        let json = l.to_json();
        assert!(json.starts_with(r#"{"layer":"tlm2","software":null,"cycles":7,"#));
        assert!(json
            .contains(r#""phase":"write-data","class":"write","energy_pj":0.30000000000000004"#));
    }

    #[test]
    fn collector_renders_one_track_per_bucket() {
        let mut l = EnergyLedger::new("rtl");
        l.set_cycles(4);
        l.book(BucketKey::idle(), 1.5);
        l.book(
            BucketKey::new("ram", LedgerPhase::Address, Some(AccessClass::Read)),
            2.0,
        );
        let c = l.to_collector();
        assert_eq!(c.layer(), "rtl");
        assert_eq!(c.counters().len(), 2);
        assert_eq!(c.counters()[0].samples, vec![(0, 0.0), (4, 1.5)]);
    }

    #[test]
    fn auditor_passes_identical_ledgers() {
        let mut l = EnergyLedger::new("tlm1");
        l.book(BucketKey::idle(), 3.0);
        let audit = DivergenceAuditor::default().audit_ledgers(&l, &l.clone());
        assert!(audit.is_clean());
        assert_eq!(audit.checked, 1);
    }

    #[test]
    fn auditor_finds_first_and_worst_bucket() {
        let mut a = EnergyLedger::new("tlm1");
        let mut b = EnergyLedger::new("tlm2");
        let k_addr = BucketKey::new("ram", LedgerPhase::Address, Some(AccessClass::Read));
        let k_data = BucketKey::new("ram", LedgerPhase::ReadData, Some(AccessClass::Read));
        a.book(k_addr.clone(), 1.0);
        b.book(k_addr.clone(), 1.2);
        a.book(k_data.clone(), 10.0);
        b.book(k_data.clone(), 5.0);
        let audit = DivergenceAuditor::default().audit_ledgers(&a, &b);
        assert_eq!(audit.divergent, 2);
        assert_eq!(audit.first.as_ref().unwrap().key, k_addr);
        assert_eq!(audit.worst.as_ref().unwrap().key, k_data);
        assert!((audit.worst.unwrap().delta() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn auditor_sees_missing_bucket_as_zero() {
        let mut a = EnergyLedger::new("tlm1");
        a.book(BucketKey::idle(), 2.0);
        let b = EnergyLedger::new("tlm1");
        let audit = DivergenceAuditor::default().audit_ledgers(&a, &b);
        assert_eq!(audit.divergent, 1);
        assert_eq!(audit.first.unwrap().b_pj, 0.0);
    }

    #[test]
    fn trace_audit_reports_first_cycle_with_context() {
        let spans = [
            span(0, Phase::Address, 0, 1, 0x10, AccessClass::Read),
            span(0, Phase::ReadData, 2, 3, 0x10, AccessClass::Read),
            span(1, Phase::Address, 40, 41, 0x110, AccessClass::Write),
        ];
        let a = [1.0, 1.0, 2.0, 2.0];
        let b = [1.0, 1.0, 2.0, 9.0];
        let div = DivergenceAuditor::default()
            .audit_traces(&a, &b, &spans, 2)
            .unwrap();
        assert_eq!(div.cycle, 3);
        assert_eq!((div.a_pj, div.b_pj), (2.0, 9.0));
        // Context excludes the far-away span at cycle 40.
        assert_eq!(div.context.len(), 2);
        assert!(div.context.iter().all(|s| s.trace_id == 0));
    }

    #[test]
    fn trace_audit_flags_length_mismatch_tail() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 1.0];
        let div = DivergenceAuditor::default()
            .audit_traces(&a, &b, &[], 1)
            .unwrap();
        assert_eq!(div.cycle, 2);
        assert_eq!(div.b_pj, 0.0);
    }

    #[test]
    fn trace_audit_passes_within_tolerance() {
        let a = [1.0, 2.0];
        let b = [1.0, 2.0 + 1e-12];
        assert!(DivergenceAuditor::default()
            .audit_traces(&a, &b, &[], 1)
            .is_none());
    }
}
