//! Hierarchical transaction-level bus models — the paper's contribution.
//!
//! Two models of the same EC-like core bus at two transaction-level layers
//! (in the layering of Haverinen et al. that the paper adopts):
//!
//! * [`tlm1::Tlm1Bus`] — **layer 1, transfer layer**: cycle-accurate.
//!   Non-blocking master interfaces return
//!   [`BusStatus`](hierbus_ec::BusStatus) each cycle; internally four
//!   queues (request, read, write, finish) connect the interface calls to
//!   a bus process that runs at the falling clock edge in four phases —
//!   get-slave-state, address phase (an FSM), read phase, write phase.
//!   Each cycle it can reconstruct the full signal-level
//!   [`SignalFrame`](hierbus_ec::SignalFrame), which is what makes the
//!   layer-1 energy model a "transaction level to RTL adapter".
//! * [`tlm2::Tlm2Bus`] — **layer 2, transaction layer**: timed but not
//!   cycle-accurate. One shared transaction list, wait-state counters
//!   decremented per cycle, a burst transferred as a single transaction
//!   with data passed by slice ("pointer passing"), and per-phase
//!   completion events for the coarse layer-2 energy model.
//!
//! [`master::TlmMaster`] replays [`MasterOp`](hierbus_ec::MasterOp)
//! stimuli against either bus through the [`master::CycleBus`] trait and
//! produces the same [`TxnRecord`](hierbus_ec::TxnRecord)s as the RTL
//! reference, so cycle-exactness (layer 1) and timing error (layer 2) are
//! directly measurable.
//!
//! # Example
//!
//! ```
//! use hierbus_core::{MemSlave, TlmSystem, Tlm1Bus};
//! use hierbus_ec::{sequences, Address, AddressRange, AccessRights,
//!                  SlaveConfig, WaitProfile};
//!
//! let scenario = sequences::single_read(false);
//! let mem = MemSlave::new(SlaveConfig::new(
//!     AddressRange::new(Address::new(0), 0x1_0000),
//!     scenario.waits,
//!     AccessRights::RWX,
//! ));
//! let bus = Tlm1Bus::new(vec![Box::new(mem)]);
//! let mut sys = TlmSystem::new(bus, scenario.ops);
//! let report = sys.run(1_000, |_bus| {});
//! assert_eq!(report.cycles, 1); // a zero-wait read completes in one cycle
//! ```

pub mod master;
pub mod multi;
pub(crate) mod obs_util;
pub mod sc;
pub mod slave;
pub mod tlm1;
pub mod tlm2;
pub mod tlm3;

pub use master::{Completed, CycleBus, PollStatus, TlmMaster, TlmReport, TlmSystem};
pub use multi::{MasterReport, MultiMasterSystem, MultiReport};
pub use sc::run_on_kernel;
pub use slave::{HasSlaves, MemSlave, SlaveReply, TlmSlave};
pub use tlm1::Tlm1Bus;
pub use tlm2::{PhaseEvent, PhaseKind, Tlm2Bus};
pub use tlm3::Tlm3Bus;
