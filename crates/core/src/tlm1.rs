//! The transaction-level **layer-1** (transfer layer) bus model.
//!
//! Cycle-accurate, as in §3.1 of the paper: the master interfaces are
//! non-blocking and return a [`BusStatus`]; internally four queues carry
//! requests between the interface calls and the bus process —
//!
//! * the **request queue** holds accepted requests awaiting their address
//!   phase,
//! * the **read queue** and **write queue** hold transactions whose
//!   address phase completed, awaiting data beats on the respective
//!   channel, and
//! * the **finish queue** holds completed transactions until the master's
//!   next interface call picks them up.
//!
//! The bus process runs at the falling clock edge in four phases:
//! `get_slave_state()`, `address_phase()` (a finite state machine),
//! `read_phase()`, `write_phase()`. Because the phases execute
//! sequentially within one activation, a zero-wait single transfer moves
//! from the request queue to the finish queue in a single cycle, exactly
//! like the reference RTL.
//!
//! When frame emission is enabled the bus reconstructs the settled
//! [`SignalFrame`] of every cycle — the "transaction level to RTL
//! adapter" on which the layer-1 energy model operates.

use crate::master::{Completed, CycleBus, PollStatus};
use crate::obs_util::access_class;
use crate::slave::{SlaveReply, TlmSlave};
use hierbus_ec::{
    AddressMap, BusError, BusStatus, FastIdMap, FaultKind, SignalFrame, SlaveId, Transaction, TxnId,
};
use hierbus_obs::{Phase, TraceCollector};
use std::collections::VecDeque;

#[derive(Debug)]
struct Active {
    txn: Transaction,
    slave: Option<SlaveId>,
    addr_done: Option<u64>,
    done: Option<u64>,
    error: Option<BusError>,
    /// Lane-extracted read results, collected beat by beat.
    read_data: Vec<u32>,
}

#[derive(Debug)]
enum AddrFsm {
    Idle,
    Phase {
        idx: usize,
        waits_left: u32,
        error: Option<BusError>,
    },
}

#[derive(Debug)]
struct Beat {
    idx: usize,
    beat: u32,
    waits_left: u32,
}

/// The layer-1 bus. See the [module docs](self) for the architecture.
pub struct Tlm1Bus {
    map: AddressMap,
    slaves: Vec<Box<dyn TlmSlave>>,
    /// Slaves with per-cycle behaviour ([`TlmSlave::wants_tick`]),
    /// cached at construction so pure-memory systems skip the
    /// notification loop entirely.
    ticking: Vec<usize>,
    active: Vec<Active>,
    /// Indices of `active` slots whose transaction was picked up and can
    /// be reused — keeps the table at outstanding-limit size instead of
    /// growing one slot per transaction for the whole run.
    free: Vec<usize>,
    request_q: VecDeque<usize>,
    addr_fsm: AddrFsm,
    read_q: VecDeque<usize>,
    write_q: VecDeque<usize>,
    read_beat: Option<Beat>,
    write_beat: Option<Beat>,
    /// Completed transactions awaiting master pickup, as `(id, active
    /// slot)`. Holds at most the outstanding limit, so a flat vector
    /// beats a hash map on both insert and the poll-side lookup.
    finish_q: Vec<(TxnId, usize)>,
    faults: FastIdMap<TxnId, FaultKind>,
    discard_read_data: bool,
    emit_frames: bool,
    frame: SignalFrame,
    irq_mask: u64,
    obs: TraceCollector,
}

impl Tlm1Bus {
    /// Builds the bus; the address map derives from the slaves'
    /// configurations in order.
    ///
    /// # Panics
    ///
    /// Panics if slave address windows overlap.
    pub fn new(slaves: Vec<Box<dyn TlmSlave>>) -> Self {
        let mut map = AddressMap::new();
        for s in &slaves {
            map.add_slave(s.config())
                .expect("slave windows must not overlap");
        }
        let ticking = slaves
            .iter()
            .enumerate()
            .filter(|(_, s)| s.wants_tick())
            .map(|(i, _)| i)
            .collect();
        Tlm1Bus {
            map,
            slaves,
            ticking,
            active: Vec::new(),
            free: Vec::new(),
            request_q: VecDeque::new(),
            addr_fsm: AddrFsm::Idle,
            read_q: VecDeque::new(),
            write_q: VecDeque::new(),
            read_beat: None,
            write_beat: None,
            finish_q: Vec::new(),
            faults: FastIdMap::default(),
            discard_read_data: false,
            emit_frames: false,
            frame: SignalFrame::default(),
            irq_mask: 0,
            obs: TraceCollector::disabled("tlm1"),
        }
    }

    /// Enables transaction-span collection (request/address/data phase
    /// events per transaction; read back via [`Tlm1Bus::obs`]).
    pub fn enable_obs(&mut self) {
        self.obs.enable();
    }

    /// The span collector (meaningful after [`Tlm1Bus::enable_obs`]).
    pub fn obs(&self) -> &TraceCollector {
        &self.obs
    }

    /// Exclusive access to the span collector (e.g. to add counter
    /// tracks or clear between runs).
    pub fn obs_mut(&mut self) -> &mut TraceCollector {
        &mut self.obs
    }

    /// Enables per-cycle signal-frame reconstruction (required by the
    /// layer-1 energy model; costs a frame build per active cycle).
    pub fn enable_frames(&mut self) {
        self.emit_frames = true;
    }

    /// The settled frame of the last bus-process activation (only
    /// meaningful when frames are enabled).
    pub fn last_frame(&self) -> &SignalFrame {
        &self.frame
    }

    /// Interrupt lines sampled at the last bus-process activation, one
    /// bit per slave (bit *n* = slave *n*).
    pub fn irq_mask(&self) -> u64 {
        self.irq_mask
    }

    /// Access to a slave (e.g. to inspect memory after a run).
    pub fn slave(&self, id: SlaveId) -> &dyn TlmSlave {
        self.slaves[id.0].as_ref()
    }

    /// Exclusive access to a slave.
    pub fn slave_mut(&mut self, id: SlaveId) -> &mut dyn TlmSlave {
        self.slaves[id.0].as_mut()
    }

    /// Extra first-beat wait states injected into the transaction at
    /// `idx`, if a stall fault is attached.
    fn injected_stall(&self, idx: usize) -> u32 {
        if self.faults.is_empty() {
            return 0;
        }
        match self.faults.get(&self.active[idx].txn.id) {
            Some(FaultKind::Stall(n)) => *n,
            _ => 0,
        }
    }

    /// True when a slave-error fault is attached to the transaction at
    /// `idx`. The error fires on the first data beat, before the slave
    /// is consulted — no data is ever committed.
    fn injected_error(&self, idx: usize) -> bool {
        !self.faults.is_empty()
            && matches!(
                self.faults.get(&self.active[idx].txn.id),
                Some(FaultKind::SlaveError)
            )
    }

    /// Phase 1 of the bus process: the address-phase FSM.
    fn address_phase(&mut self, cycle: u64, frame: &mut SignalFrame) {
        if matches!(self.addr_fsm, AddrFsm::Idle) {
            if let Some(idx) = self.request_q.pop_front() {
                {
                    let t = &self.active[idx].txn;
                    let (id, addr, class) = (t.id.0, t.addr.raw(), access_class(t.kind));
                    self.obs.end(id, Phase::Request, cycle, false);
                    self.obs.begin(id, Phase::Address, cycle, addr, class);
                }
                let a = &mut self.active[idx];
                match self.map.decode(a.txn.addr, a.txn.kind) {
                    Ok(slave) => {
                        a.slave = Some(slave);
                        self.addr_fsm = AddrFsm::Phase {
                            idx,
                            waits_left: self.map.config(slave).waits.address,
                            error: None,
                        };
                    }
                    Err(e) => {
                        self.addr_fsm = AddrFsm::Phase {
                            idx,
                            waits_left: 0,
                            error: Some(e),
                        };
                    }
                }
            } else {
                return;
            }
        }
        let AddrFsm::Phase {
            idx,
            waits_left,
            error,
        } = &mut self.addr_fsm
        else {
            return;
        };
        let idx = *idx;
        let t = &self.active[idx].txn;
        if *waits_left > 0 {
            *waits_left -= 1;
            if self.emit_frames {
                frame.drive_address(t.addr.raw(), t.kind, t.width, t.burst, false, false);
            }
            return;
        }
        let error = *error;
        if self.emit_frames {
            frame.drive_address(
                t.addr.raw(),
                t.kind,
                t.width,
                t.burst,
                true,
                error.is_some(),
            );
        }
        self.addr_fsm = AddrFsm::Idle;
        self.obs.end(
            self.active[idx].txn.id.0,
            Phase::Address,
            cycle,
            error.is_some(),
        );
        match error {
            Some(e) => {
                let a = &mut self.active[idx];
                a.done = Some(cycle);
                a.error = Some(e);
                self.finish_q.push((a.txn.id, idx));
            }
            None => {
                self.active[idx].addr_done = Some(cycle);
                if self.active[idx].txn.kind.is_read() {
                    self.read_q.push_back(idx);
                } else {
                    self.write_q.push_back(idx);
                }
            }
        }
    }

    /// Phase 2: the read phase.
    fn read_phase(&mut self, cycle: u64, frame: &mut SignalFrame) {
        if self.read_beat.is_none() {
            if let Some(idx) = self.read_q.pop_front() {
                let slave = self.active[idx].slave.expect("decoded");
                let waits = self.map.config(slave).waits.read + self.injected_stall(idx);
                let t = &self.active[idx].txn;
                self.obs.begin(
                    t.id.0,
                    Phase::ReadData,
                    cycle,
                    t.addr.raw(),
                    access_class(t.kind),
                );
                self.read_beat = Some(Beat {
                    idx,
                    beat: 0,
                    waits_left: waits,
                });
            } else {
                return;
            }
        }
        let beat = self.read_beat.as_mut().expect("beat just ensured");
        if beat.waits_left > 0 {
            beat.waits_left -= 1;
            return;
        }
        let idx = beat.idx;
        let beat_no = beat.beat;
        let (addr, slave, tag, width) = {
            let a = &self.active[idx];
            (
                a.txn.beat_addr(beat_no),
                a.slave.expect("decoded"),
                a.txn.id.tag(),
                a.txn.width,
            )
        };
        let reply = if beat_no == 0 && self.injected_error(idx) {
            SlaveReply::Error
        } else {
            self.slaves[slave.0].read_word(addr)
        };
        match reply {
            SlaveReply::Wait => (), // dynamic stall: retry next cycle
            SlaveReply::Error => {
                if self.emit_frames {
                    frame.drive_read(self.frame.r_data, tag, true, true);
                }
                self.read_beat = None;
                let a = &mut self.active[idx];
                a.done = Some(cycle);
                a.error = Some(BusError::SlaveError(addr));
                self.finish_q.push((a.txn.id, idx));
                self.obs
                    .end(self.active[idx].txn.id.0, Phase::ReadData, cycle, true);
            }
            SlaveReply::Ok(word) => {
                if self.emit_frames {
                    frame.drive_read(word, tag, true, false);
                }
                let a = &mut self.active[idx];
                if !self.discard_read_data {
                    a.read_data.push(width.extract(addr, word));
                }
                let last = beat_no + 1 == a.txn.beats();
                if last {
                    a.done = Some(cycle);
                    let id = a.txn.id;
                    self.finish_q.push((id, idx));
                    self.read_beat = None;
                    self.obs.end(id.0, Phase::ReadData, cycle, false);
                } else {
                    let waits = self.map.config(slave).waits.read;
                    self.read_beat = Some(Beat {
                        idx,
                        beat: beat_no + 1,
                        waits_left: waits,
                    });
                }
            }
        }
    }

    /// Phase 3: the write phase.
    fn write_phase(&mut self, cycle: u64, frame: &mut SignalFrame) {
        if self.write_beat.is_none() {
            if let Some(idx) = self.write_q.pop_front() {
                let slave = self.active[idx].slave.expect("decoded");
                let waits = self.map.config(slave).waits.write + self.injected_stall(idx);
                let t = &self.active[idx].txn;
                self.obs.begin(
                    t.id.0,
                    Phase::WriteData,
                    cycle,
                    t.addr.raw(),
                    access_class(t.kind),
                );
                self.write_beat = Some(Beat {
                    idx,
                    beat: 0,
                    waits_left: waits,
                });
            } else {
                return;
            }
        }
        let beat = self.write_beat.as_mut().expect("beat just ensured");
        if beat.waits_left > 0 {
            beat.waits_left -= 1;
            return;
        }
        let idx = beat.idx;
        let beat_no = beat.beat;
        let (addr, slave, tag, width, value) = {
            let a = &self.active[idx];
            (
                a.txn.beat_addr(beat_no),
                a.slave.expect("decoded"),
                a.txn.id.tag(),
                a.txn.width,
                a.txn.data[beat_no as usize],
            )
        };
        let ben = width.byte_enables(addr);
        // Non-enabled lanes of the write bus hold the previous bus value
        // (keeper behaviour), matching the RTL reference's wires.
        let bus_word = width.insert(addr, self.frame.w_data, value);
        let reply = if beat_no == 0 && self.injected_error(idx) {
            SlaveReply::Error
        } else {
            self.slaves[slave.0].write_word(addr, bus_word, ben)
        };
        match reply {
            SlaveReply::Wait => (),
            SlaveReply::Error => {
                if self.emit_frames {
                    frame.drive_write(bus_word, ben, tag, true, true);
                }
                self.write_beat = None;
                let a = &mut self.active[idx];
                a.done = Some(cycle);
                a.error = Some(BusError::SlaveError(addr));
                self.finish_q.push((a.txn.id, idx));
                self.obs
                    .end(self.active[idx].txn.id.0, Phase::WriteData, cycle, true);
            }
            SlaveReply::Ok(()) => {
                if self.emit_frames {
                    frame.drive_write(bus_word, ben, tag, true, false);
                }
                let a = &mut self.active[idx];
                let last = beat_no + 1 == a.txn.beats();
                if last {
                    a.done = Some(cycle);
                    let id = a.txn.id;
                    self.finish_q.push((id, idx));
                    self.write_beat = None;
                    self.obs.end(id.0, Phase::WriteData, cycle, false);
                } else {
                    let waits = self.map.config(slave).waits.write;
                    self.write_beat = Some(Beat {
                        idx,
                        beat: beat_no + 1,
                        waits_left: waits,
                    });
                }
            }
        }
    }
}

impl CycleBus for Tlm1Bus {
    fn reserve_transactions(&mut self, n: usize) {
        // Active slots are recycled through the free list, so the table
        // peaks near the outstanding limit, not at the stimulus length.
        self.active.reserve(n.min(64));
    }

    fn issue(&mut self, txn: Transaction, cycle: u64) -> BusStatus {
        self.obs.begin(
            txn.id.0,
            Phase::Request,
            cycle,
            txn.addr.raw(),
            access_class(txn.kind),
        );
        let read_beats = if txn.kind.is_read() && !self.discard_read_data {
            txn.beats() as usize
        } else {
            0
        };
        let entry = Active {
            txn,
            slave: None,
            addr_done: None,
            done: None,
            error: None,
            read_data: Vec::with_capacity(read_beats),
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.active[i] = entry;
                i
            }
            None => {
                self.active.push(entry);
                self.active.len() - 1
            }
        };
        self.request_q.push_back(idx);
        BusStatus::Request
    }

    fn inject(&mut self, id: TxnId, fault: FaultKind) {
        self.faults.insert(id, fault);
    }

    fn obs_counter(&mut self, track: &'static str, cycle: u64, value: f64) {
        self.obs.counter_sample(track, cycle, value);
    }

    fn poll(&mut self, id: TxnId) -> PollStatus {
        match self.finish_q.iter().position(|&(fid, _)| fid == id) {
            None => PollStatus::Pending,
            Some(pos) => {
                let (_, idx) = self.finish_q.swap_remove(pos);
                if !self.faults.is_empty() {
                    self.faults.remove(&id);
                }
                let a = &mut self.active[idx];
                let done = Completed {
                    addr_done_cycle: a.addr_done,
                    done_cycle: a.done.expect("finished entries have a done cycle"),
                    error: a.error,
                    data: std::mem::take(&mut a.read_data),
                };
                self.free.push(idx);
                PollStatus::Done(done)
            }
        }
    }

    fn bus_process(&mut self, cycle: u64) {
        // Phase 0, get_slave_state(): slave configurations are consulted
        // through the address map inside each phase below; peripherals
        // get their time notification first.
        if !self.ticking.is_empty() {
            let mut irq = 0u64;
            for &i in &self.ticking {
                let s = &mut self.slaves[i];
                s.tick(cycle);
                if s.irq() {
                    irq |= 1 << i;
                }
            }
            self.irq_mask = irq;
        }
        let mut frame = if self.emit_frames {
            self.frame.to_idle()
        } else {
            SignalFrame::default()
        };
        self.address_phase(cycle, &mut frame);
        self.read_phase(cycle, &mut frame);
        self.write_phase(cycle, &mut frame);
        if self.emit_frames {
            self.frame = frame;
        }
    }

    fn is_idle(&self) -> bool {
        self.request_q.is_empty()
            && matches!(self.addr_fsm, AddrFsm::Idle)
            && self.read_q.is_empty()
            && self.write_q.is_empty()
            && self.read_beat.is_none()
            && self.write_beat.is_none()
    }

    fn wants_every_cycle(&self) -> bool {
        self.emit_frames
    }

    fn has_finished(&self) -> bool {
        !self.finish_q.is_empty()
    }

    fn discard_read_data(&mut self) {
        self.discard_read_data = true;
    }
}

impl crate::slave::HasSlaves for Tlm1Bus {
    fn slave_ref(&self, id: SlaveId) -> &dyn TlmSlave {
        self.slaves[id.0].as_ref()
    }

    fn slave_count(&self) -> usize {
        self.slaves.len()
    }
}

impl std::fmt::Debug for Tlm1Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tlm1Bus")
            .field("slaves", &self.slaves.len())
            .field("active", &self.active.len())
            .field("request_q", &self.request_q.len())
            .field("finish_q", &self.finish_q.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::TlmSystem;
    use crate::slave::MemSlave;
    use hierbus_ec::sequences::{self, MasterOp};
    use hierbus_ec::{AccessRights, Address, AddressRange, BurstLen, SlaveConfig, WaitProfile};

    fn bus_with_waits(waits: WaitProfile) -> Tlm1Bus {
        let mem = MemSlave::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1_0000),
            waits,
            AccessRights::RWX,
        ));
        Tlm1Bus::new(vec![Box::new(mem)])
    }

    fn run(
        ops: impl Into<std::sync::Arc<[MasterOp]>>,
        waits: WaitProfile,
    ) -> crate::master::TlmReport {
        let mut sys = TlmSystem::new(bus_with_waits(waits), ops);
        sys.run(10_000, |_| {})
    }

    #[test]
    fn zero_wait_single_read_takes_one_cycle() {
        let report = run(vec![MasterOp::read(0x100)], WaitProfile::ZERO);
        let r = &report.records[0];
        assert_eq!(r.issue_cycle, 0);
        assert_eq!(r.addr_done_cycle, Some(0));
        assert_eq!(r.done_cycle, Some(0));
        assert_eq!(report.cycles, 1);
        assert_eq!(r.data[0], MemSlave::fill_pattern(Address::new(0x100)));
    }

    #[test]
    fn wait_states_stretch_phases() {
        let report = run(vec![MasterOp::read(0x100)], WaitProfile::new(1, 2, 0));
        let r = &report.records[0];
        assert_eq!(r.addr_done_cycle, Some(1));
        assert_eq!(r.done_cycle, Some(3));
    }

    #[test]
    fn back_to_back_reads_pipeline() {
        let report = run(sequences::back_to_back_reads().ops, WaitProfile::ZERO);
        assert_eq!(report.cycles, 4);
    }

    #[test]
    fn burst_write_lands_in_memory() {
        let data = vec![0x11, 0x22, 0x33, 0x44];
        let ops = vec![MasterOp::burst_write(0x200, data.clone())];
        let mem = MemSlave::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1_0000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        ));
        let bus = Tlm1Bus::new(vec![Box::new(mem)]);
        let mut sys = TlmSystem::new(bus, ops);
        let report = sys.run(100, |_| {});
        assert_eq!(report.cycles, 4);
        // Read back through a fresh transaction.
        let mut sys2 = TlmSystem::new(
            std::mem::replace(sys.bus_mut(), Tlm1Bus::new(vec![])),
            vec![MasterOp::burst_read(0x200, BurstLen::B4)],
        );
        let report2 = sys2.run(100, |_| {});
        assert_eq!(report2.records[0].data, data);
    }

    #[test]
    fn decode_error_reported() {
        let report = run(vec![MasterOp::read(0xF_0000)], WaitProfile::ZERO);
        assert!(matches!(report.records[0].error, Some(BusError::Decode(_))));
    }

    #[test]
    fn reads_overtake_slow_writes() {
        let s = sequences::read_after_write_reordered();
        let report = run(s.ops, s.waits);
        let write = &report.records[0];
        let read = &report.records[1];
        assert!(read.done_cycle.unwrap() < write.done_cycle.unwrap());
    }

    #[test]
    fn all_spec_scenarios_complete_without_error() {
        for scenario in sequences::all_scenarios() {
            let report = run(scenario.ops.clone(), scenario.waits);
            for r in &report.records {
                assert!(r.error.is_none(), "{}: {:?}", scenario.name, r.error);
            }
        }
    }

    #[test]
    fn frames_reconstruct_bus_activity() {
        let mut bus = bus_with_waits(WaitProfile::ZERO);
        bus.enable_frames();
        let mut sys = TlmSystem::new(bus, vec![MasterOp::read(0x100)]);
        let mut frames = Vec::new();
        sys.run(100, |b: &mut Tlm1Bus| frames.push(*b.last_frame()));
        // One active cycle plus the return-to-idle cycle (the process
        // stays statically sensitive while frames are emitted).
        assert_eq!(frames.len(), 2);
        let f = &frames[0];
        assert!(f.a_valid && f.a_ready && f.r_valid && f.r_ready);
        assert_eq!(f.a_addr, 0x100);
        assert_eq!(f.r_data, MemSlave::fill_pattern(Address::new(0x100)));
        let idle = &frames[1];
        assert!(!idle.a_valid && !idle.r_valid, "handshakes fall on idle");
        assert_eq!(idle.r_data, f.r_data, "buses hold their values");
    }

    #[test]
    fn dynamic_wait_slave_extends_beat() {
        /// Replies `Wait` a fixed number of times before each read.
        struct BusySlave {
            cfg: SlaveConfig,
            stalls: u32,
            left: u32,
        }
        impl TlmSlave for BusySlave {
            fn config(&self) -> SlaveConfig {
                self.cfg
            }
            fn read_word(&mut self, _addr: Address) -> SlaveReply<u32> {
                if self.left > 0 {
                    self.left -= 1;
                    SlaveReply::Wait
                } else {
                    self.left = self.stalls;
                    SlaveReply::Ok(0x77)
                }
            }
            fn write_word(&mut self, _: Address, _: u32, _: u8) -> SlaveReply<()> {
                SlaveReply::Ok(())
            }
        }
        let slave = BusySlave {
            cfg: SlaveConfig::new(
                AddressRange::new(Address::new(0), 0x1000),
                WaitProfile::ZERO,
                AccessRights::RWX,
            ),
            stalls: 2,
            left: 2,
        };
        let bus = Tlm1Bus::new(vec![Box::new(slave)]);
        let mut sys = TlmSystem::new(bus, vec![MasterOp::read(0x0)]);
        let report = sys.run(100, |_| {});
        // Address done at cycle 0, two dynamic stalls, data at cycle 2.
        assert_eq!(report.records[0].done_cycle, Some(2));
        assert_eq!(report.records[0].data, vec![0x77]);
    }

    #[test]
    fn slave_error_terminates_transaction() {
        struct ErrSlave(SlaveConfig);
        impl TlmSlave for ErrSlave {
            fn config(&self) -> SlaveConfig {
                self.0
            }
            fn read_word(&mut self, _: Address) -> SlaveReply<u32> {
                SlaveReply::Error
            }
            fn write_word(&mut self, _: Address, _: u32, _: u8) -> SlaveReply<()> {
                SlaveReply::Error
            }
        }
        let slave = ErrSlave(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        ));
        let bus = Tlm1Bus::new(vec![Box::new(slave)]);
        let mut sys = TlmSystem::new(bus, vec![MasterOp::read(0x0)]);
        let report = sys.run(100, |_| {});
        assert!(matches!(
            report.records[0].error,
            Some(BusError::SlaveError(_))
        ));
    }

    #[test]
    fn sub_word_write_merges_lanes() {
        let mut mem = MemSlave::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1_0000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        ));
        mem.load(Address::new(0x300), &[0xAAAA_AAAA]);
        let bus = Tlm1Bus::new(vec![Box::new(mem)]);
        let mut sys = TlmSystem::new(
            bus,
            vec![
                MasterOp {
                    idle_before: 0,
                    kind: hierbus_ec::AccessKind::DataWrite,
                    addr: Address::new(0x301),
                    width: hierbus_ec::DataWidth::W8,
                    burst: BurstLen::Single,
                    data: vec![0xEE].into(),
                },
                MasterOp::read(0x300).after_idle(2),
            ],
        );
        let report = sys.run(100, |_| {});
        assert_eq!(report.records[1].data[0], 0xAAAA_EEAA);
    }
}
