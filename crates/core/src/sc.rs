//! Kernel-driven execution — the SystemC process structure of the paper.
//!
//! The direct cycle loop of [`TlmSystem`](crate::master::TlmSystem) is
//! the fast path; this module provides the *faithful* path: master and
//! bus as processes on the [`hierbus_sim`] discrete-event kernel, the
//! master statically sensitive to the **rising** clock edge and the bus
//! process to the **falling** edge, exactly as §3.1 describes. The
//! layer-2 model's dynamic sensitivity ("to avoid calls to processes
//! when they are not necessary") is realised with the kernel's
//! `next_trigger`: the bus process desensitises itself while the bus is
//! idle, and the master notifies the wake event — timed to the falling
//! edge — when it issues into an idle bus.
//!
//! Both paths must agree cycle-for-cycle; `kernel_runs_match_loop_runs`
//! in the tests pins that down.

use crate::master::{CycleBus, TlmMaster, TlmReport};
use hierbus_ec::MasterOp;
use hierbus_sim::{Edge, Kernel};

/// Clock period in kernel ticks (rising at even multiples, falling at
/// odd half-periods). One full period = one bus cycle.
pub const CLOCK_PERIOD: u64 = 10;

/// The world owned by the kernel: master, bus and cycle bookkeeping.
struct ScWorld<B> {
    master: TlmMaster,
    bus: B,
    bus_activations: u64,
    /// Set while the bus process has desensitised itself.
    parked: bool,
    /// The master finished; the bus process stops the kernel after its
    /// final (return-to-idle) activation.
    finishing: bool,
}

/// Runs `ops` against `bus` under the simulation kernel. `hook` runs
/// after every bus-process activation (energy models attach here).
///
/// Returns the usual [`TlmReport`]; process-activation savings from the
/// dynamic sensitivity are visible by comparing the report's
/// `bus_activations` with its `cycles`.
///
/// # Panics
///
/// Panics if the stimulus does not complete within `max_cycles`.
pub fn run_on_kernel<B>(
    bus: B,
    ops: impl Into<std::sync::Arc<[MasterOp]>>,
    max_cycles: u64,
    hook: impl FnMut(&mut B) + 'static,
) -> TlmReport
where
    B: CycleBus + 'static,
{
    let mut kernel = Kernel::new(ScWorld {
        master: TlmMaster::new(ops),
        bus,
        bus_activations: 0,
        parked: false,
        finishing: false,
    });
    let clk = kernel.add_clock(CLOCK_PERIOD);
    let wake = kernel.add_event("bus_wake");

    // Master process: rising edge. Issues/polls, and wakes the parked
    // bus process (timed to this cycle's falling edge) when work arrives.
    kernel
        .register("master", move |w: &mut ScWorld<B>, api| {
            let cycle = api.time().ticks() / CLOCK_PERIOD;
            w.master.rising_edge(&mut w.bus, cycle);
            if w.master.is_finished() {
                if w.parked || (w.bus.is_idle() && !w.bus.wants_every_cycle()) {
                    api.stop();
                } else {
                    // Let the bus process settle (and emit the
                    // return-to-idle frame) before stopping.
                    w.finishing = true;
                }
                return;
            }
            if w.parked && !w.bus.is_idle() {
                api.notify(wake, CLOCK_PERIOD / 2);
                w.parked = false;
            }
        })
        .sensitive_to_clock(clk, Edge::Rising);

    // Bus process: falling edge, desensitising itself while idle (the
    // paper's dynamic-sensitivity optimisation). While parked it is not
    // activated at all — the kernel skips it.
    let mut hook = hook;
    kernel
        .register("bus_process", move |w: &mut ScWorld<B>, api| {
            let cycle = api.time().ticks() / CLOCK_PERIOD;
            w.parked = false;
            if w.bus.is_idle() && !w.bus.wants_every_cycle() && !w.finishing {
                api.next_trigger(wake);
                w.parked = true;
            } else {
                w.bus.bus_process(cycle);
                w.bus_activations += 1;
                hook(&mut w.bus);
            }
            if w.finishing {
                api.stop();
            }
        })
        .sensitive_to_clock(clk, Edge::Falling);

    kernel.run_until(max_cycles.saturating_mul(CLOCK_PERIOD));

    let world = kernel.into_world();
    assert!(
        world.master.is_finished(),
        "stimulus did not complete within {max_cycles} cycles"
    );
    let cycles = if world.master.completed() > 0 {
        world.master.last_done_cycle() + 1
    } else {
        0
    };
    TlmReport {
        cycles,
        records: world.master.records().to_vec(),
        bus_activations: world.bus_activations,
        outcomes: world
            .master
            .outcomes()
            .iter()
            .map(|o| o.expect("all ops settled at end of run"))
            .collect(),
        fault: world.master.fault_counters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::TlmSystem;
    use crate::slave::MemSlave;
    use crate::tlm1::Tlm1Bus;
    use crate::tlm2::Tlm2Bus;
    use hierbus_ec::record::first_divergence;
    use hierbus_ec::sequences::{self, MixParams};
    use hierbus_ec::{AccessRights, Address, AddressRange, SlaveConfig, WaitProfile};

    fn mem(waits: WaitProfile) -> MemSlave {
        MemSlave::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x2_0000),
            waits,
            AccessRights::RWX,
        ))
    }

    #[test]
    fn kernel_runs_match_loop_runs_layer1() {
        for scenario in sequences::all_scenarios() {
            let loop_report = {
                let bus = Tlm1Bus::new(vec![Box::new(mem(scenario.waits))]);
                let mut sys = TlmSystem::new(bus, scenario.ops.clone());
                sys.run(100_000, |_| {})
            };
            let kernel_report = run_on_kernel(
                Tlm1Bus::new(vec![Box::new(mem(scenario.waits))]),
                scenario.ops.clone(),
                100_000,
                |_| {},
            );
            assert_eq!(
                loop_report.cycles, kernel_report.cycles,
                "{}",
                scenario.name
            );
            assert!(
                first_divergence(&loop_report.records, &kernel_report.records).is_none(),
                "{}",
                scenario.name
            );
        }
    }

    #[test]
    fn kernel_runs_match_loop_runs_layer2() {
        let scenario = sequences::random_mix(
            0x5C,
            MixParams {
                count: 300,
                ..MixParams::default()
            },
        );
        let loop_report = {
            let bus = Tlm2Bus::new(vec![Box::new(mem(scenario.waits))]);
            let mut sys = TlmSystem::new(bus, scenario.ops.clone());
            sys.run(1_000_000, |_| {})
        };
        let kernel_report = run_on_kernel(
            Tlm2Bus::new(vec![Box::new(mem(scenario.waits))]),
            scenario.ops,
            1_000_000,
            |_| {},
        );
        assert_eq!(loop_report.cycles, kernel_report.cycles);
        assert!(first_divergence(&loop_report.records, &kernel_report.records).is_none());
    }

    #[test]
    fn dynamic_sensitivity_skips_idle_activations() {
        // Long idle gaps: the bus process must be desensitised, not run.
        let ops = vec![
            hierbus_ec::MasterOp::read(0x100),
            hierbus_ec::MasterOp::read(0x200).after_idle(50),
        ];
        let report = run_on_kernel(
            Tlm2Bus::new(vec![Box::new(mem(WaitProfile::ZERO))]),
            ops,
            100_000,
            |_| {},
        );
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.records[1].done_cycle, Some(51));
        assert!(
            report.bus_activations < 10,
            "bus ran {} times across a 50-cycle idle gap",
            report.bus_activations
        );
    }

    #[test]
    fn frames_flow_through_the_kernel_hook() {
        let mut bus = Tlm1Bus::new(vec![Box::new(mem(WaitProfile::ZERO))]);
        bus.enable_frames();
        let frames = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = std::rc::Rc::clone(&frames);
        let report = run_on_kernel(
            bus,
            vec![hierbus_ec::MasterOp::read(0x100)],
            1_000,
            move |b: &mut Tlm1Bus| sink.borrow_mut().push(*b.last_frame()),
        );
        assert_eq!(report.cycles, 1);
        assert!(frames.borrow().len() >= 2); // active + return-to-idle
        assert!(frames.borrow()[0].a_valid);
    }
}
