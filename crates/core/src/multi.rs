//! Multi-master TLM system: several masters, one arbiter, one bus.
//!
//! Drives any [`CycleBus`] — the layer-1 cycle-accurate bus or the
//! layer-2 timed bus — with an arbitrary number of [`TlmMaster`]s
//! behind a shared [`Arbiter`]. The per-cycle discipline matches the
//! single-master [`TlmSystem`](crate::TlmSystem) exactly, split at the
//! arbitration boundary:
//!
//! 1. every master runs its rising-edge bookkeeping
//!    ([`TlmMaster::begin_cycle`]: completion pickup, timeouts),
//! 2. every master drives its request line
//!    ([`TlmMaster::arbitration_request`]),
//! 3. the arbiter grants at most one master, which then issues
//!    ([`TlmMaster::issue_granted`]),
//! 4. the bus process runs at the falling edge.
//!
//! Because both TLM buses consume issues through FIFO queues, the
//! grant order fully determines bus behavior — so a multi-master run
//! at layer 1 is cycle-exact against the multi-master RTL reference
//! whenever their grant logs agree, which the arbitration-equivalence
//! suite pins.
//!
//! With one master and any policy this reduces to the single-master
//! system: master 0 is granted whenever it requests.

use crate::master::{CycleBus, TlmMaster};
use hierbus_ec::record::TxnRecord;
use hierbus_ec::{
    Arbiter, ArbiterStats, ArbitrationPolicy, FaultCounters, FaultPlan, MasterOp, MultiScenario,
    RetryPolicy, TxnOutcome, DMA_ID_BASE,
};
use hierbus_sim::CycleSchedule;

/// Per-master slice of a finished multi-master run.
#[derive(Debug, Clone)]
pub struct MasterReport {
    /// This master's transaction records (one per attempt), in issue
    /// order.
    pub records: Vec<TxnRecord>,
    /// Final per-stimulus-op outcomes.
    pub outcomes: Vec<TxnOutcome>,
    /// Fault counters for this master alone.
    pub fault: FaultCounters,
    /// Transactions this master completed.
    pub completed: u64,
}

/// Summary of a completed multi-master run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Bus cycles from cycle 0 through the last completion of any
    /// master, inclusive.
    pub cycles: u64,
    /// Falling-edge bus-process activations.
    pub bus_activations: u64,
    /// One slice per master, in master order.
    pub masters: Vec<MasterReport>,
    /// The grant log: `(cycle, master)` per grant, in cycle order.
    pub grants: Vec<(u64, usize)>,
    /// Arbitration statistics (per-master grants/waits, contention).
    pub stats: ArbiterStats,
}

impl MultiReport {
    /// Total fault counters across all masters.
    pub fn fault_total(&self) -> FaultCounters {
        sum_counters(self.masters.iter().map(|m| m.fault))
    }
}

fn sum_counters(it: impl Iterator<Item = FaultCounters>) -> FaultCounters {
    let mut total = FaultCounters::default();
    for c in it {
        total.injected += c.injected;
        total.retried += c.retried;
        total.aborted += c.aborted;
    }
    total
}

/// Drives several [`TlmMaster`]s against one [`CycleBus`] behind an
/// [`Arbiter`]. See the [module docs](self) for the cycle discipline.
#[derive(Debug)]
pub struct MultiMasterSystem<B> {
    bus: B,
    masters: Vec<TlmMaster>,
    arbiter: Arbiter,
    policy: ArbitrationPolicy,
    cycle: u64,
    bus_activations: u64,
    tear: CycleSchedule<()>,
    torn: bool,
    sampled: FaultCounters,
    faults_configured: bool,
    /// Scratch request-line vector, reused every cycle.
    requests: Vec<bool>,
}

impl<B: CycleBus> MultiMasterSystem<B> {
    /// Creates an empty system; add masters before running.
    pub fn new(bus: B, policy: ArbitrationPolicy) -> Self {
        MultiMasterSystem {
            bus,
            masters: Vec::new(),
            arbiter: Arbiter::new(policy, 0),
            policy,
            cycle: 0,
            bus_activations: 0,
            tear: CycleSchedule::new(),
            torn: false,
            sampled: FaultCounters::default(),
            faults_configured: false,
            requests: Vec::new(),
        }
    }

    /// The canonical CPU + DMA configuration: master 0 replays the CPU
    /// scenario with ids from 0, master 1 replays the DMA program with
    /// ids from [`DMA_ID_BASE`].
    pub fn for_multi(bus: B, scenario: &MultiScenario) -> Self {
        let mut sys = MultiMasterSystem::new(bus, scenario.policy);
        sys.add_master(scenario.cpu.ops.clone(), 0);
        sys.add_master(scenario.dma_ops.clone(), DMA_ID_BASE);
        sys
    }

    /// Adds a master replaying `ops` with transaction ids from
    /// `id_base`; returns its index. Must be called before running.
    pub fn add_master(
        &mut self,
        ops: impl Into<std::sync::Arc<[MasterOp]>>,
        id_base: u64,
    ) -> usize {
        assert_eq!(self.cycle, 0, "masters must be added before running");
        let ops = ops.into();
        self.bus.reserve_transactions(ops.len());
        let mut master = TlmMaster::new(ops);
        master.set_id_base(id_base);
        self.masters.push(master);
        self.arbiter = Arbiter::new(self.policy, self.masters.len());
        self.masters.len() - 1
    }

    /// Attaches a fault plan and robustness policy to master `idx`. A
    /// card tear in any plan tears the whole system (power is shared).
    pub fn set_master_faults(&mut self, idx: usize, plan: FaultPlan, policy: RetryPolicy) {
        if let Some(tc) = plan.tear_cycle {
            self.tear.at(tc, ());
        }
        self.masters[idx].set_faults(plan, policy);
        self.faults_configured = true;
    }

    /// Disables per-transaction record keeping on every master and the
    /// grant log (throughput mode).
    pub fn disable_records(&mut self) {
        for m in &mut self.masters {
            m.disable_records();
        }
        self.bus.discard_read_data();
        self.arbiter.disable_log();
    }

    /// Shared access to the bus.
    pub fn bus(&self) -> &B {
        &self.bus
    }

    /// Exclusive access to the bus.
    pub fn bus_mut(&mut self) -> &mut B {
        &mut self.bus
    }

    /// Shared access to master `idx`.
    pub fn master(&self, idx: usize) -> &TlmMaster {
        &self.masters[idx]
    }

    /// Number of masters.
    pub fn master_count(&self) -> usize {
        self.masters.len()
    }

    /// True once the card has been torn.
    pub fn torn(&self) -> bool {
        self.torn
    }

    /// The arbiter's grant log so far.
    pub fn grant_log(&self) -> &[(u64, usize)] {
        self.arbiter.log()
    }

    /// The arbitration statistics so far.
    pub fn arbiter_stats(&self) -> &ArbiterStats {
        self.arbiter.stats()
    }

    /// True once every master's stimulus has fully completed.
    pub fn is_finished(&self) -> bool {
        self.masters.iter().all(|m| m.is_finished())
    }

    /// Executes one bus cycle: bookkeeping and request lines for every
    /// master, one grant, then the falling-edge bus process (skipped
    /// while the bus is idle), then `hook`.
    pub fn step_cycle(&mut self, hook: &mut impl FnMut(&mut B)) {
        let cycle = self.cycle;
        for m in &mut self.masters {
            m.begin_cycle(&mut self.bus, cycle);
        }
        let mut requests = std::mem::take(&mut self.requests);
        requests.clear();
        requests.extend(
            self.masters
                .iter_mut()
                .map(|m| m.arbitration_request(cycle)),
        );
        if let Some(winner) = self.arbiter.grant(cycle, &requests) {
            self.masters[winner].issue_granted(&mut self.bus, cycle);
        }
        self.requests = requests;
        self.sample_fault_counters();
        if self.bus.wants_every_cycle() || !self.bus.is_idle() {
            self.bus.bus_process(cycle);
            self.bus_activations += 1;
            hook(&mut self.bus);
        }
        self.cycle += 1;
    }

    /// Mirrors the aggregate fault counters into the bus trace whenever
    /// they change, like the single-master system.
    fn sample_fault_counters(&mut self) {
        if !self.faults_configured {
            return;
        }
        let c = sum_counters(self.masters.iter().map(|m| m.fault_counters()));
        if c == self.sampled {
            return;
        }
        if c.injected != self.sampled.injected {
            self.bus
                .obs_counter("fault.injected", self.cycle, c.injected as f64);
        }
        if c.retried != self.sampled.retried {
            self.bus
                .obs_counter("fault.retried", self.cycle, c.retried as f64);
        }
        if c.aborted != self.sampled.aborted {
            self.bus
                .obs_counter("fault.aborted", self.cycle, c.aborted as f64);
        }
        self.sampled = c;
    }

    /// Runs to completion — or to the card tear, whichever is first.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus does not finish within `max_cycles`.
    pub fn run(&mut self, max_cycles: u64, mut hook: impl FnMut(&mut B)) -> MultiReport {
        assert!(!self.masters.is_empty(), "no masters added");
        while !self.is_finished() {
            if !self.tear.pop_due(self.cycle).is_empty() {
                // Power is gone: the cycle at the tear never executes.
                self.torn = true;
                break;
            }
            assert!(
                self.cycle < max_cycles,
                "bus deadlock: {max_cycles} cycles without completion"
            );
            self.step_cycle(&mut hook);
        }
        if self.torn {
            // Same tear boundary as the single-master system: pick up
            // completions from already-executed cycles, then abort the
            // rest.
            let cycle = self.cycle;
            for m in &mut self.masters {
                m.pickup(&mut self.bus, cycle);
                m.tear_now();
            }
            self.sample_fault_counters();
        }
        let any_completed = self.masters.iter().any(|m| m.completed() > 0);
        let cycles = if any_completed {
            self.masters
                .iter()
                .filter(|m| m.completed() > 0)
                .map(|m| m.last_done_cycle())
                .max()
                .expect("some master completed")
                + 1
        } else {
            0
        };
        MultiReport {
            cycles,
            bus_activations: self.bus_activations,
            masters: self
                .masters
                .iter()
                .map(|m| MasterReport {
                    records: m.records().to_vec(),
                    outcomes: m
                        .outcomes()
                        .iter()
                        .map(|o| o.expect("all ops settled at end of run"))
                        .collect(),
                    fault: m.fault_counters(),
                    completed: m.completed(),
                })
                .collect(),
            grants: self.arbiter.log().to_vec(),
            stats: self.arbiter.stats().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slave::MemSlave;
    use crate::tlm1::Tlm1Bus;
    use crate::TlmSystem;
    use hierbus_ec::slave::AccessRights;
    use hierbus_ec::{sequences, Address, AddressRange, SlaveConfig, WaitProfile};

    fn bus_with_mem() -> Tlm1Bus {
        let cfg = SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x2_0000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        );
        Tlm1Bus::new(vec![Box::new(MemSlave::new(cfg))])
    }

    #[test]
    fn single_master_multi_system_matches_tlm_system() {
        let scenario = sequences::random_mix(
            42,
            sequences::MixParams {
                count: 200,
                ..sequences::MixParams::default()
            },
        );
        let mut single = TlmSystem::new(bus_with_mem(), scenario.ops.clone());
        let single_report = single.run(1_000_000, |_| {});

        let mut multi = MultiMasterSystem::new(bus_with_mem(), ArbitrationPolicy::RoundRobin);
        multi.add_master(scenario.ops.clone(), 0);
        let multi_report = multi.run(1_000_000, |_| {});

        assert_eq!(multi_report.cycles, single_report.cycles);
        assert_eq!(multi_report.masters[0].records, single_report.records);
        assert_eq!(multi_report.masters[0].outcomes, single_report.outcomes);
        // A lone master is granted exactly once per issued attempt.
        assert_eq!(multi_report.grants.len(), single_report.records.len());
    }

    #[test]
    fn two_masters_complete_disjoint_windows() {
        let cpu = sequences::random_mix(
            7,
            sequences::MixParams {
                count: 40,
                ..sequences::MixParams::default()
            },
        );
        let dma = hierbus_ec::DmaProgram::seeded(9, hierbus_ec::DmaParams::default());
        let ms = MultiScenario::new("t", cpu, &dma, ArbitrationPolicy::FixedPriority);
        let mut sys = MultiMasterSystem::for_multi(bus_with_mem(), &ms);
        let report = sys.run(1_000_000, |_| {});
        assert_eq!(report.masters.len(), 2);
        assert!(report.masters[1].completed > 0);
        assert!(report
            .masters
            .iter()
            .all(|m| m.outcomes.iter().all(|o| *o == TxnOutcome::Ok)));
        // Every DMA record carries a high-range id.
        assert!(report.masters[1]
            .records
            .iter()
            .all(|r| r.id.0 >= DMA_ID_BASE));
        // Fixed priority: the CPU never waits for a grant.
        assert_eq!(report.stats.waits[0], 0);
    }
}
