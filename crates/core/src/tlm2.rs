//! The transaction-level **layer-2** (transaction layer) bus model.
//!
//! Timed but not cycle-accurate (§3.2 of the paper): one shared
//! transaction list connects the interface functions to a bus process
//! that decrements wait-state counters; a burst is carried as a *single*
//! transaction whose data moves as one slice ("pointer passing"); the
//! slave's block data interface is invoked once, at the end of the data
//! phase. Slave wait states are read **once**, when the transaction is
//! created during the first interface call.
//!
//! # The atomicity approximation
//!
//! Because a burst's data moves as one slice at data-phase completion,
//! two *concurrent* transfers whose address ranges overlap (a read
//! racing a write — a data race even on the real bus, where the outcome
//! depends on beat interleaving) may observe a different interleaving
//! than the per-beat reference. Race-free programs see identical data.
//!
//! # The timing approximation
//!
//! Single-beat transfers keep the layer-1 fusion (the data item can
//! complete in the cycle the address phase completes), so they are
//! cycle-exact. A **burst's** data block is handed to the countdown
//! machinery and starts *the cycle after* its address phase completes —
//! one cycle late when the data channel was free. This is the documented
//! source of the layer-2 timing error (the paper's +0.5% row of Table 1):
//! small, always pessimistic, proportional to the burst fraction of the
//! traffic.
//!
//! # Energy hooks
//!
//! The bus emits one [`PhaseEvent`] when an address phase completes and
//! one when a data phase completes. The layer-2 energy model estimates
//! each phase's energy from the event alone — with no knowledge of the
//! signal state left by *previous* transactions, which is exactly the
//! correlation blindness the paper names as this layer's inaccuracy.

use crate::master::{Completed, CycleBus, PollStatus};
use crate::obs_util::access_class;
use crate::slave::{SlaveReply, TlmSlave};
use hierbus_ec::{
    AccessKind, Address, AddressMap, BusError, BusStatus, DataWidth, FaultKind, SlaveId,
    Transaction, TxnId, WaitProfile,
};
use hierbus_obs::{Phase, TraceCollector};
use std::collections::VecDeque;

/// Which protocol phase a [`PhaseEvent`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// An address phase completed.
    Address,
    /// A read data phase (all beats) completed.
    ReadData,
    /// A write data phase (all beats) completed.
    WriteData,
}

/// A completed protocol phase, the layer-2 energy model's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Which phase completed.
    pub kind: PhaseKind,
    /// Transaction start address.
    pub addr: Address,
    /// Fetch, load or store.
    pub access: AccessKind,
    /// Beat width.
    pub width: DataWidth,
    /// Beat count.
    pub beats: u32,
    /// Cycles the phase occupied (elapsed cycles for a partial phase).
    pub cycles: u32,
    /// Cycles the phase would have occupied uninterrupted. Equal to
    /// [`cycles`](Self::cycles) for completed phases; for a phase cut
    /// short by a card tear, the energy model charges its per-phase
    /// average pro-rata as `cycles / planned_cycles`.
    pub planned_cycles: u32,
    /// False for a phase truncated mid-flight (card tear) — no data
    /// moved, only `cycles` of the phase were actually driven.
    pub completed: bool,
    /// Beat words (read results or write payload); empty for address
    /// phases.
    pub data: Vec<u32>,
    /// Cycle the phase completed.
    pub at_cycle: u64,
    /// The owning transaction's id (== its span trace id). In a
    /// multi-master run the issuing master is recoverable from it via
    /// [`hierbus_ec::dma::master_of_trace`].
    pub trace_id: u64,
}

#[derive(Debug)]
struct Active {
    txn: Transaction,
    slave: Option<SlaveId>,
    /// Wait states captured at creation (first interface call).
    waits: WaitProfile,
    addr_done: Option<u64>,
    done: Option<u64>,
    error: Option<BusError>,
    read_data: Vec<u32>,
    /// Injected fault attached at issue time, if any.
    fault: Option<FaultKind>,
}

#[derive(Debug)]
enum AddrState {
    Idle,
    Counting {
        idx: usize,
        left: u32,
        error: Option<BusError>,
    },
}

#[derive(Debug)]
struct DataState {
    idx: usize,
    left: u32,
    total: u32,
}

/// One direction's data machinery: a queue plus the current countdown.
#[derive(Debug, Default)]
struct DataSide {
    queue: VecDeque<usize>,
    current: Option<DataState>,
    /// A data phase completed in the current bus-process activation; the
    /// channel is only *free for fusion* from the next cycle on (the
    /// reference's channel is likewise occupied for the whole completion
    /// cycle).
    completed_this_cycle: bool,
}

/// The layer-2 bus. See the [module docs](self) for semantics.
pub struct Tlm2Bus {
    map: AddressMap,
    slaves: Vec<Box<dyn TlmSlave>>,
    active: Vec<Active>,
    addr_q: VecDeque<usize>,
    addr_state: AddrState,
    read: DataSide,
    write: DataSide,
    finish_q: hierbus_ec::FastIdMap<TxnId, usize>,
    events: Vec<PhaseEvent>,
    emit_events: bool,
    irq_mask: u64,
    obs: TraceCollector,
}

impl Tlm2Bus {
    /// Builds the bus; the address map derives from the slaves'
    /// configurations in order.
    ///
    /// # Panics
    ///
    /// Panics if slave address windows overlap.
    pub fn new(slaves: Vec<Box<dyn TlmSlave>>) -> Self {
        let mut map = AddressMap::new();
        for s in &slaves {
            map.add_slave(s.config())
                .expect("slave windows must not overlap");
        }
        Tlm2Bus {
            map,
            slaves,
            active: Vec::new(),
            addr_q: VecDeque::new(),
            addr_state: AddrState::Idle,
            read: DataSide::default(),
            write: DataSide::default(),
            finish_q: hierbus_ec::FastIdMap::default(),
            events: Vec::new(),
            emit_events: false,
            irq_mask: 0,
            obs: TraceCollector::disabled("tlm2"),
        }
    }

    /// Enables [`PhaseEvent`] emission for the layer-2 energy model.
    pub fn enable_events(&mut self) {
        self.emit_events = true;
    }

    /// Enables transaction-span collection (request/address/data phase
    /// events per transaction; read back via [`Tlm2Bus::obs`]).
    pub fn enable_obs(&mut self) {
        self.obs.enable();
    }

    /// The span collector (meaningful after [`Tlm2Bus::enable_obs`]).
    pub fn obs(&self) -> &TraceCollector {
        &self.obs
    }

    /// Exclusive access to the span collector.
    pub fn obs_mut(&mut self) -> &mut TraceCollector {
        &mut self.obs
    }

    /// Drains the phase events accumulated since the last call.
    pub fn drain_events(&mut self) -> Vec<PhaseEvent> {
        std::mem::take(&mut self.events)
    }

    /// Emits partial [`PhaseEvent`]s (`completed == false`) for phases
    /// mid-flight when the clock stopped at `cycle` (card tear). The
    /// energy model charges them pro-rata; phases still queued drove
    /// nothing and are not reported. No-op unless events are enabled.
    pub fn flush_partial_phases(&mut self, cycle: u64) {
        if !self.emit_events {
            return;
        }
        if let AddrState::Counting { idx, left, error } = &self.addr_state {
            let a = &self.active[*idx];
            let planned = if error.is_some() {
                1
            } else {
                1 + a.waits.address
            };
            let elapsed = planned - 1 - left;
            if elapsed > 0 {
                self.events.push(PhaseEvent {
                    kind: PhaseKind::Address,
                    addr: a.txn.addr,
                    access: a.txn.kind,
                    width: a.txn.width,
                    beats: a.txn.beats(),
                    cycles: elapsed,
                    planned_cycles: planned,
                    completed: false,
                    data: Vec::new(),
                    at_cycle: cycle,
                    trace_id: a.txn.id.0,
                });
            }
        }
        for (side, kind) in [
            (&self.read, PhaseKind::ReadData),
            (&self.write, PhaseKind::WriteData),
        ] {
            if let Some(st) = &side.current {
                let a = &self.active[st.idx];
                let elapsed = st.total - st.left;
                if elapsed > 0 {
                    self.events.push(PhaseEvent {
                        kind,
                        addr: a.txn.addr,
                        access: a.txn.kind,
                        width: a.txn.width,
                        beats: a.txn.beats(),
                        cycles: elapsed,
                        planned_cycles: st.total,
                        completed: false,
                        data: Vec::new(),
                        at_cycle: cycle,
                        trace_id: a.txn.id.0,
                    });
                }
            }
        }
    }

    /// Interrupt lines sampled at the last bus-process activation, one
    /// bit per slave (bit *n* = slave *n*).
    pub fn irq_mask(&self) -> u64 {
        self.irq_mask
    }

    /// Access to a slave (e.g. to inspect memory after a run).
    pub fn slave(&self, id: SlaveId) -> &dyn TlmSlave {
        self.slaves[id.0].as_ref()
    }

    /// Exclusive access to a slave.
    pub fn slave_mut(&mut self, id: SlaveId) -> &mut dyn TlmSlave {
        self.slaves[id.0].as_mut()
    }

    fn data_duration(a: &Active) -> u32 {
        let wait = a.waits.data_wait(a.txn.kind);
        a.txn.beats() * (1 + wait) + Self::injected_stall(a)
    }

    /// Extra first-beat wait states from an injected stall fault.
    fn injected_stall(a: &Active) -> u32 {
        match a.fault {
            Some(FaultKind::Stall(n)) => n,
            _ => 0,
        }
    }

    /// Completes the data phase of `idx`: one block slave call, record
    /// keeping, optional event emission.
    fn complete_data(&mut self, idx: usize, cycle: u64, phase_cycles: u32) {
        let (addr, kind, width, beats, slave) = {
            let a = &self.active[idx];
            (
                a.txn.addr,
                a.txn.kind,
                a.txn.width,
                a.txn.beats(),
                a.slave.expect("decoded"),
            )
        };
        let mut error = None;
        let mut words: Vec<u32> = Vec::new();
        if matches!(self.active[idx].fault, Some(FaultKind::SlaveError)) {
            // Injected slave error: fires before any data is committed
            // (the reference errors on the first beat), so memory state
            // stays identical across layers. Writes still drove their
            // payload onto the bus, so the event keeps it for energy.
            error = Some(BusError::SlaveError(addr));
            if !kind.is_read() {
                words = self.active[idx].txn.data.to_vec();
            }
        } else if kind.is_read() {
            if width == DataWidth::W32 {
                words = vec![0u32; beats as usize];
                if self.slaves[slave.0].read_block(addr, &mut words) == SlaveReply::Error {
                    error = Some(BusError::SlaveError(addr));
                }
            } else {
                // Sub-word single: one word access plus lane extraction.
                match self.slave_read_spin(slave, addr) {
                    Ok(w) => words = vec![width.extract(addr, w)],
                    Err(e) => error = Some(e),
                }
            }
        } else {
            let payload = self.active[idx].txn.data.clone();
            if width == DataWidth::W32 {
                if self.slaves[slave.0].write_block(addr, &payload) == SlaveReply::Error {
                    error = Some(BusError::SlaveError(addr));
                }
            } else {
                let ben = width.byte_enables(addr);
                let bus_word = width.insert(addr, 0, payload[0]);
                match self.slave_write_spin(slave, addr, bus_word, ben) {
                    Ok(()) => {}
                    Err(e) => error = Some(e),
                }
            }
            words = payload.to_vec();
        }
        let a = &mut self.active[idx];
        a.done = Some(cycle);
        a.error = error;
        if kind.is_read() && error.is_none() {
            a.read_data = words.clone();
        }
        let id = a.txn.id;
        self.finish_q.insert(id, idx);
        self.obs.end(
            id.0,
            if kind.is_read() {
                Phase::ReadData
            } else {
                Phase::WriteData
            },
            cycle,
            error.is_some(),
        );
        if self.emit_events {
            self.events.push(PhaseEvent {
                kind: if kind.is_read() {
                    PhaseKind::ReadData
                } else {
                    PhaseKind::WriteData
                },
                addr,
                access: kind,
                width,
                beats,
                cycles: phase_cycles,
                planned_cycles: phase_cycles,
                completed: true,
                data: words,
                at_cycle: cycle,
                trace_id: id.0,
            });
        }
    }

    /// Word read spinning away dynamic waits (layer 2 cannot time them).
    fn slave_read_spin(&mut self, slave: SlaveId, addr: Address) -> Result<u32, BusError> {
        loop {
            match self.slaves[slave.0].read_word(addr) {
                SlaveReply::Ok(w) => return Ok(w),
                SlaveReply::Wait => continue,
                SlaveReply::Error => return Err(BusError::SlaveError(addr)),
            }
        }
    }

    fn slave_write_spin(
        &mut self,
        slave: SlaveId,
        addr: Address,
        word: u32,
        ben: u8,
    ) -> Result<(), BusError> {
        loop {
            match self.slaves[slave.0].write_word(addr, word, ben) {
                SlaveReply::Ok(()) => return Ok(()),
                SlaveReply::Wait => continue,
                SlaveReply::Error => return Err(BusError::SlaveError(addr)),
            }
        }
    }

    /// One direction's countdown step: pop, decrement, complete.
    fn data_step(&mut self, is_read: bool, cycle: u64) {
        let side = if is_read {
            &mut self.read
        } else {
            &mut self.write
        };
        if side.current.is_none() {
            if let Some(idx) = side.queue.pop_front() {
                let total = Self::data_duration(&self.active[idx]);
                let t = &self.active[idx].txn;
                self.obs.begin(
                    t.id.0,
                    if is_read {
                        Phase::ReadData
                    } else {
                        Phase::WriteData
                    },
                    cycle,
                    t.addr.raw(),
                    access_class(t.kind),
                );
                let side = if is_read {
                    &mut self.read
                } else {
                    &mut self.write
                };
                side.current = Some(DataState {
                    idx,
                    left: total,
                    total,
                });
            } else {
                return;
            }
        }
        let side = if is_read {
            &mut self.read
        } else {
            &mut self.write
        };
        let st = side.current.as_mut().expect("state just ensured");
        st.left -= 1;
        if st.left == 0 {
            let idx = st.idx;
            let total = st.total;
            side.current = None;
            side.completed_this_cycle = true;
            self.complete_data(idx, cycle, total);
        }
    }
}

impl CycleBus for Tlm2Bus {
    fn issue(&mut self, txn: Transaction, cycle: u64) -> BusStatus {
        // Read the slave state once, at transaction creation.
        let (slave, waits) = match self.map.decode(txn.addr, txn.kind) {
            Ok(id) => (Some(id), self.map.config(id).waits),
            Err(_) => (None, WaitProfile::ZERO),
        };
        self.obs.begin(
            txn.id.0,
            Phase::Request,
            cycle,
            txn.addr.raw(),
            access_class(txn.kind),
        );
        let idx = self.active.len();
        self.active.push(Active {
            txn,
            slave,
            waits,
            addr_done: None,
            done: None,
            error: None,
            read_data: Vec::new(),
            fault: None,
        });
        self.addr_q.push_back(idx);
        BusStatus::Request
    }

    fn inject(&mut self, id: TxnId, fault: FaultKind) {
        // Inject follows issue immediately, so the target is (almost
        // always) the most recently pushed entry.
        let a = self
            .active
            .iter_mut()
            .rev()
            .find(|a| a.txn.id == id)
            .expect("inject follows issue");
        a.fault = Some(fault);
    }

    fn obs_counter(&mut self, track: &'static str, cycle: u64, value: f64) {
        self.obs.counter_sample(track, cycle, value);
    }

    fn has_finished(&self) -> bool {
        !self.finish_q.is_empty()
    }

    fn poll(&mut self, id: TxnId) -> PollStatus {
        match self.finish_q.remove(&id) {
            None => PollStatus::Pending,
            Some(idx) => {
                let a = &mut self.active[idx];
                PollStatus::Done(Completed {
                    addr_done_cycle: a.addr_done,
                    done_cycle: a.done.expect("finished entries have a done cycle"),
                    error: a.error,
                    data: std::mem::take(&mut a.read_data),
                })
            }
        }
    }

    fn bus_process(&mut self, cycle: u64) {
        let mut irq = 0u64;
        for (i, s) in self.slaves.iter_mut().enumerate() {
            s.tick(cycle);
            if s.irq() {
                irq |= 1 << i;
            }
        }
        self.irq_mask = irq;
        // Data countdowns first: a block that finishes this cycle frees
        // its channel for a pop next cycle, like the reference.
        self.read.completed_this_cycle = false;
        self.write.completed_this_cycle = false;
        self.data_step(true, cycle);
        self.data_step(false, cycle);

        // Address phase countdown.
        if matches!(self.addr_state, AddrState::Idle) {
            if let Some(idx) = self.addr_q.pop_front() {
                {
                    let t = &self.active[idx].txn;
                    let (id, addr, class) = (t.id.0, t.addr.raw(), access_class(t.kind));
                    self.obs.end(id, Phase::Request, cycle, false);
                    self.obs.begin(id, Phase::Address, cycle, addr, class);
                }
                let a = &self.active[idx];
                let error = match a.slave {
                    Some(_) => None,
                    None => Some(
                        self.map
                            .decode(a.txn.addr, a.txn.kind)
                            .expect_err("slave absent implies decode failure"),
                    ),
                };
                self.addr_state = AddrState::Counting {
                    idx,
                    left: if error.is_some() { 0 } else { a.waits.address },
                    error,
                };
            }
        }
        if let AddrState::Counting { idx, left, error } = &mut self.addr_state {
            if *left > 0 {
                *left -= 1;
            } else {
                let idx = *idx;
                let error = *error;
                self.addr_state = AddrState::Idle;
                self.obs.end(
                    self.active[idx].txn.id.0,
                    Phase::Address,
                    cycle,
                    error.is_some(),
                );
                let (addr, kind, width, burst_beats, addr_waits, trace_id) = {
                    let a = &self.active[idx];
                    (
                        a.txn.addr,
                        a.txn.kind,
                        a.txn.width,
                        a.txn.beats(),
                        a.waits.address,
                        a.txn.id.0,
                    )
                };
                if self.emit_events {
                    self.events.push(PhaseEvent {
                        kind: PhaseKind::Address,
                        addr,
                        access: kind,
                        width,
                        beats: burst_beats,
                        cycles: 1 + addr_waits,
                        planned_cycles: 1 + addr_waits,
                        completed: true,
                        data: Vec::new(),
                        at_cycle: cycle,
                        trace_id,
                    });
                }
                match error {
                    Some(e) => {
                        let a = &mut self.active[idx];
                        a.done = Some(cycle);
                        a.error = Some(e);
                        self.finish_q.insert(a.txn.id, idx);
                    }
                    None => {
                        self.active[idx].addr_done = Some(cycle);
                        let is_read = kind.is_read();
                        let side = if is_read {
                            &mut self.read
                        } else {
                            &mut self.write
                        };
                        let single = burst_beats == 1;
                        if single
                            && side.current.is_none()
                            && side.queue.is_empty()
                            && !side.completed_this_cycle
                        {
                            // Fusion: a single data item may complete in
                            // the cycle its address phase completes.
                            let data_phase = if is_read {
                                Phase::ReadData
                            } else {
                                Phase::WriteData
                            };
                            self.obs.begin(
                                self.active[idx].txn.id.0,
                                data_phase,
                                cycle,
                                addr.raw(),
                                access_class(kind),
                            );
                            let a = &self.active[idx];
                            let wait = a.waits.data_wait(kind) + Self::injected_stall(a);
                            if wait == 0 {
                                self.complete_data(idx, cycle, 1);
                            } else {
                                let side = if is_read {
                                    &mut self.read
                                } else {
                                    &mut self.write
                                };
                                side.current = Some(DataState {
                                    idx,
                                    left: wait,
                                    total: 1 + wait,
                                });
                            }
                        } else {
                            // Bursts (and contended singles) go through
                            // the queue — the documented +1-cycle
                            // approximation for uncontended bursts.
                            side.queue.push_back(idx);
                        }
                    }
                }
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.addr_q.is_empty()
            && matches!(self.addr_state, AddrState::Idle)
            && self.read.queue.is_empty()
            && self.read.current.is_none()
            && self.write.queue.is_empty()
            && self.write.current.is_none()
    }
}

impl crate::slave::HasSlaves for Tlm2Bus {
    fn slave_ref(&self, id: SlaveId) -> &dyn TlmSlave {
        self.slaves[id.0].as_ref()
    }

    fn slave_count(&self) -> usize {
        self.slaves.len()
    }
}

impl std::fmt::Debug for Tlm2Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tlm2Bus")
            .field("slaves", &self.slaves.len())
            .field("active", &self.active.len())
            .field("addr_q", &self.addr_q.len())
            .field("finish_q", &self.finish_q.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::TlmSystem;
    use crate::slave::MemSlave;
    use hierbus_ec::sequences::{self, MasterOp};
    use hierbus_ec::{AccessRights, AddressRange, BurstLen, SlaveConfig};

    fn bus_with_waits(waits: WaitProfile) -> Tlm2Bus {
        let mem = MemSlave::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1_0000),
            waits,
            AccessRights::RWX,
        ));
        Tlm2Bus::new(vec![Box::new(mem)])
    }

    fn run(
        ops: impl Into<std::sync::Arc<[MasterOp]>>,
        waits: WaitProfile,
    ) -> crate::master::TlmReport {
        let mut sys = TlmSystem::new(bus_with_waits(waits), ops);
        sys.run(10_000, |_| {})
    }

    #[test]
    fn zero_wait_single_read_is_cycle_exact() {
        let report = run(vec![MasterOp::read(0x100)], WaitProfile::ZERO);
        let r = &report.records[0];
        assert_eq!(r.addr_done_cycle, Some(0));
        assert_eq!(r.done_cycle, Some(0));
        assert_eq!(report.cycles, 1);
    }

    #[test]
    fn waited_single_read_is_cycle_exact() {
        // addr_wait 1, read_wait 2: layer 1 finishes at cycle 3.
        let report = run(vec![MasterOp::read(0x100)], WaitProfile::new(1, 2, 0));
        assert_eq!(report.records[0].done_cycle, Some(3));
    }

    #[test]
    fn back_to_back_single_reads_are_cycle_exact() {
        let report = run(sequences::back_to_back_reads().ops, WaitProfile::ZERO);
        assert_eq!(report.cycles, 4);
    }

    #[test]
    fn uncontended_burst_pays_one_extra_cycle() {
        // Reference timing: addr done cycle 0, 4 beats at 1/cycle →
        // done cycle 3, total 4. Layer 2: data starts cycle 1 → done
        // cycle 4, total 5.
        let report = run(
            vec![MasterOp::burst_read(0x100, BurstLen::B4)],
            WaitProfile::ZERO,
        );
        assert_eq!(report.records[0].done_cycle, Some(4));
        assert_eq!(report.cycles, 5);
    }

    #[test]
    fn burst_data_matches_memory_contents() {
        let data = vec![0xA1, 0xB2, 0xC3, 0xD4];
        let mut mem = MemSlave::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1_0000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        ));
        mem.load(Address::new(0x400), &data);
        let bus = Tlm2Bus::new(vec![Box::new(mem)]);
        let mut sys = TlmSystem::new(bus, vec![MasterOp::burst_read(0x400, BurstLen::B4)]);
        let report = sys.run(100, |_| {});
        assert_eq!(report.records[0].data, data);
    }

    #[test]
    fn burst_write_lands_in_memory_as_block() {
        let data = vec![0x11, 0x22];
        let bus = bus_with_waits(WaitProfile::ZERO);
        let mut sys = TlmSystem::new(bus, vec![MasterOp::burst_write(0x500, data)]);
        sys.run(100, |_| {});
        let slave = sys.bus().slave(SlaveId(0));
        let cfg = slave.config();
        assert!(cfg.range.contains(Address::new(0x500)));
        // Inspect through the trait by downcast-free read.
        let mut sys2 = TlmSystem::new(
            std::mem::replace(sys.bus_mut(), Tlm2Bus::new(vec![])),
            vec![MasterOp::read(0x500), MasterOp::read(0x504)],
        );
        let report = sys2.run(100, |_| {});
        assert_eq!(report.records[0].data, vec![0x11]);
        assert_eq!(report.records[1].data, vec![0x22]);
    }

    #[test]
    fn decode_error_reported() {
        let report = run(vec![MasterOp::read(0xF_0000)], WaitProfile::ZERO);
        assert!(matches!(report.records[0].error, Some(BusError::Decode(_))));
    }

    #[test]
    fn phase_events_emitted_in_order() {
        let mut bus = bus_with_waits(WaitProfile::new(1, 1, 0));
        bus.enable_events();
        let mut sys = TlmSystem::new(bus, vec![MasterOp::burst_read(0x100, BurstLen::B2)]);
        let mut events = Vec::new();
        sys.run(100, |b: &mut Tlm2Bus| events.extend(b.drain_events()));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, PhaseKind::Address);
        assert_eq!(events[0].cycles, 2); // 1 + addr_wait
        assert_eq!(events[1].kind, PhaseKind::ReadData);
        assert_eq!(events[1].beats, 2);
        assert_eq!(events[1].cycles, 4); // 2 beats × (1 + 1 wait)
        assert_eq!(events[1].data.len(), 2);
    }

    #[test]
    fn all_spec_scenarios_complete_without_error() {
        for scenario in sequences::all_scenarios() {
            let report = run(scenario.ops.clone(), scenario.waits);
            for r in &report.records {
                assert!(r.error.is_none(), "{}: {:?}", scenario.name, r.error);
            }
        }
    }

    #[test]
    fn layer2_never_finishes_before_layer1_on_the_suite() {
        use crate::tlm1::Tlm1Bus;
        for scenario in sequences::all_scenarios() {
            let l2 = run(scenario.ops.clone(), scenario.waits);
            let mem = MemSlave::new(SlaveConfig::new(
                AddressRange::new(Address::new(0), 0x1_0000),
                scenario.waits,
                AccessRights::RWX,
            ));
            let mut sys1 = TlmSystem::new(Tlm1Bus::new(vec![Box::new(mem)]), scenario.ops.clone());
            let l1 = sys1.run(10_000, |_| {});
            assert!(
                l2.cycles >= l1.cycles,
                "{}: layer2 {} < layer1 {}",
                scenario.name,
                l2.cycles,
                l1.cycles
            );
        }
    }
}
