//! The abstract slave interface of the TLM models.

use hierbus_ec::{Address, SlaveConfig};

/// Reply of a slave data-interface call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaveReply<T> {
    /// The access completed.
    Ok(T),
    /// The slave is dynamically busy this cycle; the layer-1 bus retries
    /// next cycle (extends the beat beyond the static wait states). The
    /// layer-2 model cannot represent dynamic waits — its block transfers
    /// spin them away, a documented source of layer-2 timing error on
    /// peripherals that use them.
    Wait,
    /// The slave signals a bus error for this access.
    Error,
}

impl<T> SlaveReply<T> {
    /// Maps the payload of an `Ok` reply.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> SlaveReply<U> {
        match self {
            SlaveReply::Ok(v) => SlaveReply::Ok(f(v)),
            SlaveReply::Wait => SlaveReply::Wait,
            SlaveReply::Error => SlaveReply::Error,
        }
    }
}

/// The TLM slave interface used by both layers.
///
/// Word-level calls carry full 32-bit bus words; byte-lane selection is
/// the master/bus side's job via the merge patterns. The block calls are
/// the layer-2 "data pointer plus byte length" interface; their default
/// implementations loop over the word interface, spinning away dynamic
/// waits (see [`SlaveReply::Wait`]).
pub trait TlmSlave {
    /// The slave control interface: address range, wait states, rights.
    fn config(&self) -> SlaveConfig;

    /// Time notification: both buses call this once per bus-process
    /// activation, before any phase runs. Peripherals with internal
    /// behaviour (timers, transmitters, coprocessor pipelines) advance by
    /// the *delta* from the last cycle they saw, so skipped idle cycles
    /// are not lost. Pure memories ignore it.
    fn tick(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// True when this slave has per-cycle behaviour (a [`tick`] body or
    /// an interrupt line) the bus must consult every activation. Pure
    /// memories return `false`, letting the bus skip the per-cycle
    /// notification loop entirely. Defaults to `true` — the safe answer
    /// for any peripheral that overrides [`tick`] or [`irq`].
    ///
    /// [`tick`]: TlmSlave::tick
    /// [`irq`]: TlmSlave::irq
    fn wants_tick(&self) -> bool {
        true
    }

    /// Opt-in downcasting hook so post-run analyses (e.g. the component
    /// energy models) can read a peripheral's activity counters back out
    /// of the bus. Peripherals that expose counters override this with
    /// `Some(self)`; the default hides the concrete type.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// The peripheral's interrupt line (level-sensitive; the target
    /// platform's interrupt system). The buses aggregate all lines into
    /// a mask, sampled once per bus-process activation. Memories and
    /// line-less peripherals keep the default.
    fn irq(&self) -> bool {
        false
    }

    /// Reads the word containing `addr`.
    fn read_word(&mut self, addr: Address) -> SlaveReply<u32>;

    /// Writes `data` to the word containing `addr` under byte enables
    /// `ben`.
    fn write_word(&mut self, addr: Address, data: u32, ben: u8) -> SlaveReply<()>;

    /// Layer-2 block read: fills `words` from consecutive word addresses
    /// starting at `addr`. Returns `Error` if any word access errors.
    fn read_block(&mut self, addr: Address, words: &mut [u32]) -> SlaveReply<()> {
        for (i, slot) in words.iter_mut().enumerate() {
            let a = addr + 4 * i as u64;
            loop {
                match self.read_word(a) {
                    SlaveReply::Ok(w) => {
                        *slot = w;
                        break;
                    }
                    SlaveReply::Wait => continue,
                    SlaveReply::Error => return SlaveReply::Error,
                }
            }
        }
        SlaveReply::Ok(())
    }

    /// Layer-2 block write: stores `words` to consecutive word addresses
    /// starting at `addr`.
    fn write_block(&mut self, addr: Address, words: &[u32]) -> SlaveReply<()> {
        for (i, &w) in words.iter().enumerate() {
            let a = addr + 4 * i as u64;
            loop {
                match self.write_word(a, w, 0b1111) {
                    SlaveReply::Ok(()) => break,
                    SlaveReply::Wait => continue,
                    SlaveReply::Error => return SlaveReply::Error,
                }
            }
        }
        SlaveReply::Ok(())
    }
}

/// Shared-slave access for post-run inspection, implemented by both bus
/// layers.
pub trait HasSlaves {
    /// The slave registered under `id` (construction order).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    fn slave_ref(&self, id: hierbus_ec::SlaveId) -> &dyn TlmSlave;

    /// Number of slaves on the bus.
    fn slave_count(&self) -> usize;

    /// Downcasts the slave under `id` to a concrete peripheral type (via
    /// [`TlmSlave::as_any`]).
    fn slave_as<T: 'static>(&self, id: hierbus_ec::SlaveId) -> Option<&T> {
        self.slave_ref(id).as_any()?.downcast_ref::<T>()
    }
}

/// Largest address window (bytes) backed by the dense array. A 1 MiB
/// window costs 1 MiB of values plus a 32 KiB written-bitmap once the
/// first write lands; larger windows stay on the sparse map.
const DENSE_LIMIT_BYTES: u64 = 1 << 20;

/// Storage behind a [`MemSlave`]: a flat array indexed by the word
/// offset within the slave's window (lazily allocated on first write,
/// with a written-bitmap so untouched words keep the fill pattern), or
/// the sparse map for windows too large to back densely. Both report
/// identical contents; dense exists because the layer-1 hot loop pays a
/// hash probe per data beat otherwise.
#[derive(Debug, Clone)]
enum Backing {
    Dense {
        /// Word offset of the window base.
        base_word: u64,
        /// Window length in words.
        len_words: u64,
        /// Current word values; empty until the first write.
        values: Vec<u32>,
        /// One bit per word: written at least once.
        written: Vec<u64>,
    },
    Sparse(hierbus_ec::FastIdMap<u64, u32>),
}

/// A memory slave with the same deterministic fill pattern as the RTL
/// reference's memory, so both models observe identical data.
#[derive(Debug, Clone)]
pub struct MemSlave {
    config: SlaveConfig,
    backing: Backing,
}

fn fill_of(word_offset: u64) -> u32 {
    (word_offset as u32).wrapping_mul(0x9E37_79B9) ^ 0x5A5A_5A5A
}

impl MemSlave {
    /// Creates a memory slave.
    pub fn new(config: SlaveConfig) -> Self {
        let range = config.range;
        let backing = if range.size() <= DENSE_LIMIT_BYTES {
            let base_word = range.base().word_offset();
            let last_word = (range.base().raw() + range.size() - 1) >> 2;
            Backing::Dense {
                base_word,
                len_words: last_word - base_word + 1,
                values: Vec::new(),
                written: Vec::new(),
            }
        } else {
            Backing::Sparse(hierbus_ec::FastIdMap::default())
        };
        MemSlave { config, backing }
    }

    /// The background pattern of a never-written word (identical to the
    /// RTL reference's `SimpleMem::fill_pattern`).
    pub fn fill_pattern(addr: Address) -> u32 {
        fill_of(addr.word_offset())
    }

    fn get_word(&self, key: u64) -> u32 {
        match &self.backing {
            Backing::Dense {
                base_word,
                len_words,
                values,
                written,
            } => {
                let idx = key.wrapping_sub(*base_word);
                if idx < *len_words && !values.is_empty() {
                    let i = idx as usize;
                    if written[i >> 6] & (1u64 << (i & 63)) != 0 {
                        return values[i];
                    }
                }
                fill_of(key)
            }
            Backing::Sparse(map) => *map.get(&key).unwrap_or(&fill_of(key)),
        }
    }

    fn set_word(&mut self, key: u64, value: u32) {
        match &mut self.backing {
            Backing::Dense {
                base_word,
                len_words,
                values,
                written,
            } => {
                let idx = key.wrapping_sub(*base_word);
                if idx < *len_words {
                    if values.is_empty() {
                        values.resize(*len_words as usize, 0);
                        written.resize((*len_words as usize).div_ceil(64), 0);
                    }
                    let i = idx as usize;
                    values[i] = value;
                    written[i >> 6] |= 1u64 << (i & 63);
                    return;
                }
                // A write outside the configured window (possible only
                // through `load`, never through the decoded bus): fall
                // back to the sparse map, carrying the dense contents.
                let mut map = hierbus_ec::FastIdMap::default();
                for (k, v) in self.snapshot() {
                    map.insert(k, v);
                }
                map.insert(key, value);
                self.backing = Backing::Sparse(map);
            }
            Backing::Sparse(map) => {
                map.insert(key, value);
            }
        }
    }

    /// Pre-loads consecutive words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word aligned.
    pub fn load(&mut self, addr: Address, words: &[u32]) {
        assert!(addr.is_aligned(4), "load base {addr} must be word aligned");
        for (i, &w) in words.iter().enumerate() {
            self.set_word(addr.word_offset() + i as u64, w);
        }
    }

    /// Reads back a word without bus semantics (test/inspection aid).
    pub fn peek(&self, addr: Address) -> u32 {
        self.get_word(addr.word_offset())
    }

    /// All explicitly written words as `(word_offset, value)`, sorted —
    /// the committed-memory fingerprint for cross-layer equality checks.
    pub fn snapshot(&self) -> Vec<(u64, u32)> {
        match &self.backing {
            Backing::Dense {
                base_word,
                values,
                written,
                ..
            } => {
                let mut v = Vec::new();
                for (w, &bits) in written.iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let bit = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let i = (w << 6) | bit;
                        v.push((base_word + i as u64, values[i]));
                    }
                }
                v
            }
            Backing::Sparse(map) => {
                let mut v: Vec<(u64, u32)> = map.iter().map(|(&k, &w)| (k, w)).collect();
                v.sort_unstable();
                v
            }
        }
    }
}

impl TlmSlave for MemSlave {
    fn config(&self) -> SlaveConfig {
        self.config
    }

    fn wants_tick(&self) -> bool {
        false
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn read_word(&mut self, addr: Address) -> SlaveReply<u32> {
        SlaveReply::Ok(self.peek(addr))
    }

    fn write_word(&mut self, addr: Address, data: u32, ben: u8) -> SlaveReply<()> {
        let key = addr.word_offset();
        let old = self.get_word(key);
        let mut merged = old;
        for lane in 0..4 {
            if ben & (1 << lane) != 0 {
                let mask = 0xFFu32 << (8 * lane);
                merged = (merged & !mask) | (data & mask);
            }
        }
        self.set_word(key, merged);
        SlaveReply::Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::{AccessRights, AddressRange, WaitProfile};

    fn mem() -> MemSlave {
        MemSlave::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x1000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        ))
    }

    #[test]
    fn reply_map_preserves_variant() {
        assert_eq!(SlaveReply::Ok(2).map(|v| v * 2), SlaveReply::Ok(4));
        assert_eq!(SlaveReply::<u32>::Wait.map(|v| v), SlaveReply::Wait);
        assert_eq!(SlaveReply::<u32>::Error.map(|v| v), SlaveReply::Error);
    }

    #[test]
    fn mem_word_roundtrip_with_lanes() {
        let mut m = mem();
        m.write_word(Address::new(0x20), 0x4433_2211, 0b1111);
        m.write_word(Address::new(0x20), 0xAABB_CCDD, 0b1010);
        assert_eq!(m.read_word(Address::new(0x20)), SlaveReply::Ok(0xAA33_CC11));
    }

    #[test]
    fn default_block_read_fills_words() {
        let mut m = mem();
        m.load(Address::new(0x40), &[1, 2, 3, 4]);
        let mut buf = [0u32; 4];
        assert_eq!(
            m.read_block(Address::new(0x40), &mut buf),
            SlaveReply::Ok(())
        );
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn default_block_write_stores_words() {
        let mut m = mem();
        assert_eq!(
            m.write_block(Address::new(0x80), &[9, 8]),
            SlaveReply::Ok(())
        );
        assert_eq!(m.peek(Address::new(0x80)), 9);
        assert_eq!(m.peek(Address::new(0x84)), 8);
    }

    #[test]
    fn fill_pattern_matches_documented_formula() {
        let a = Address::new(0x100);
        assert_eq!(
            MemSlave::fill_pattern(a),
            (a.word_offset() as u32).wrapping_mul(0x9E37_79B9) ^ 0x5A5A_5A5A
        );
    }

    #[test]
    fn snapshot_is_sorted_and_exact_dense_and_sparse() {
        let dense = SlaveConfig::new(
            AddressRange::new(Address::new(0x100), 0x1000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        );
        let sparse = SlaveConfig::new(
            AddressRange::new(Address::new(0x100), super::DENSE_LIMIT_BYTES * 2),
            WaitProfile::ZERO,
            AccessRights::RWX,
        );
        for cfg in [dense, sparse] {
            let mut m = MemSlave::new(cfg);
            m.write_word(Address::new(0x200), 7, 0b1111);
            m.write_word(Address::new(0x104), 9, 0b1111);
            assert_eq!(m.snapshot(), vec![(0x104 >> 2, 9), (0x200 >> 2, 7)]);
            assert_eq!(
                m.peek(Address::new(0x108)),
                MemSlave::fill_pattern(Address::new(0x108))
            );
        }
    }

    #[test]
    fn load_outside_window_falls_back_to_sparse() {
        let mut m = mem(); // window [0, 0x1000): dense
        m.write_word(Address::new(0x10), 1, 0b1111);
        m.load(Address::new(0x4000), &[5, 6]); // outside the window
        assert_eq!(m.peek(Address::new(0x10)), 1);
        assert_eq!(m.peek(Address::new(0x4000)), 5);
        assert_eq!(m.peek(Address::new(0x4004)), 6);
        assert_eq!(
            m.snapshot(),
            vec![(0x10 >> 2, 1), (0x4000 >> 2, 5), (0x4004 >> 2, 6)]
        );
    }

    #[test]
    fn block_errors_propagate() {
        struct ErrSlave(SlaveConfig);
        impl TlmSlave for ErrSlave {
            fn config(&self) -> SlaveConfig {
                self.0
            }
            fn read_word(&mut self, _: Address) -> SlaveReply<u32> {
                SlaveReply::Error
            }
            fn write_word(&mut self, _: Address, _: u32, _: u8) -> SlaveReply<()> {
                SlaveReply::Error
            }
        }
        let mut s = ErrSlave(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x100),
            WaitProfile::ZERO,
            AccessRights::RWX,
        ));
        let mut buf = [0u32; 2];
        assert_eq!(s.read_block(Address::new(0), &mut buf), SlaveReply::Error);
        assert_eq!(s.write_block(Address::new(0), &buf), SlaveReply::Error);
    }
}
