//! Master-side replay of stimulus against a TLM bus, and the run harness.

use hierbus_ec::record::TxnRecord;
use hierbus_ec::{
    AccessKind, BusError, BusStatus, MasterOp, OutstandingLimits, OutstandingTracker, Transaction,
    TxnCategory, TxnId,
};

/// The completion payload a bus hands back when a transaction is picked
/// up from the finish queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completed {
    /// Cycle the address phase completed.
    pub addr_done_cycle: Option<u64>,
    /// Cycle the transaction completed.
    pub done_cycle: u64,
    /// Error that terminated it, if any.
    pub error: Option<BusError>,
    /// Read results (lane-extracted architectural values), empty for
    /// writes.
    pub data: Vec<u32>,
}

/// Result of polling an in-flight transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollStatus {
    /// Still in progress — poll again next cycle (the paper's `wait`).
    Pending,
    /// Finished; the completion payload (the paper's `ok`/`error`).
    Done(Completed),
}

/// The cycle-driven interface both TLM bus layers expose to a master.
///
/// The master calls [`issue`](CycleBus::issue)/[`poll`](CycleBus::poll)
/// at the rising clock edge and the kernel (or harness) calls
/// [`bus_process`](CycleBus::bus_process) at the falling edge — the
/// paper's clocking discipline.
pub trait CycleBus {
    /// Presents a new transaction. Returns
    /// [`BusStatus::Request`](hierbus_ec::BusStatus) when accepted.
    fn issue(&mut self, txn: Transaction, cycle: u64) -> BusStatus;

    /// Polls an in-flight transaction; removes and returns it once done.
    fn poll(&mut self, id: TxnId) -> PollStatus;

    /// The bus process (falling edge).
    fn bus_process(&mut self, cycle: u64);

    /// True when the bus has no queued or in-progress work, allowing the
    /// harness to skip the bus process — the dynamic-sensitivity
    /// optimisation of the layer-2 model.
    fn is_idle(&self) -> bool;

    /// True if the bus process must run even on idle cycles. The layer-1
    /// bus returns true while frame emission is enabled: its power module
    /// watches the wires every cycle (handshake signals *fall* on the
    /// first idle cycle, and that transition costs energy), so the
    /// process stays statically sensitive like the paper's SC_METHOD.
    fn wants_every_cycle(&self) -> bool {
        false
    }
}

/// Replays a [`MasterOp`] list against a [`CycleBus`], enforcing the
/// one-issue-per-cycle rule and the outstanding-transaction ceilings, and
/// producing [`TxnRecord`]s directly comparable with the RTL reference's.
#[derive(Debug)]
pub struct TlmMaster {
    ops: Vec<MasterOp>,
    next_op: usize,
    idle_left: u32,
    next_id: TxnId,
    tracker: OutstandingTracker,
    records: Vec<TxnRecord>,
    in_flight: Vec<(TxnId, usize, TxnCategory)>,
    keep_records: bool,
    completed: u64,
    last_done_cycle: u64,
}

impl TlmMaster {
    /// Creates a master for `ops` with the core's default limits.
    pub fn new(ops: Vec<MasterOp>) -> Self {
        Self::with_limits(ops, OutstandingLimits::CORE_DEFAULT)
    }

    /// Creates a master with explicit limits.
    pub fn with_limits(ops: Vec<MasterOp>, limits: OutstandingLimits) -> Self {
        let idle_left = ops.first().map_or(0, |op| op.idle_before);
        TlmMaster {
            ops,
            next_op: 0,
            idle_left,
            next_id: TxnId(0),
            tracker: OutstandingTracker::new(limits),
            records: Vec::new(),
            in_flight: Vec::new(),
            keep_records: true,
            completed: 0,
            last_done_cycle: 0,
        }
    }

    /// Disables per-transaction record keeping (throughput measurement
    /// mode): only the completion count and the final cycle survive.
    pub fn disable_records(&mut self) {
        self.keep_records = false;
    }

    /// Transactions completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The cycle of the latest completion seen so far.
    pub fn last_done_cycle(&self) -> u64 {
        self.last_done_cycle
    }

    /// Rising-edge step: picks up finished transactions (freeing limit
    /// slots), then issues the next op if its idle gap has elapsed and a
    /// slot is free.
    pub fn rising_edge<B: CycleBus>(&mut self, bus: &mut B, cycle: u64) {
        // Pick up completions first so a freed slot can be reused in the
        // same cycle (matching the reference master's bookkeeping).
        let mut i = 0;
        while i < self.in_flight.len() {
            let (id, rec, cat) = self.in_flight[i];
            match bus.poll(id) {
                PollStatus::Pending => i += 1,
                PollStatus::Done(done) => {
                    self.completed += 1;
                    self.last_done_cycle = self.last_done_cycle.max(done.done_cycle);
                    if self.keep_records {
                        let r = &mut self.records[rec];
                        r.addr_done_cycle = done.addr_done_cycle;
                        r.done_cycle = Some(done.done_cycle);
                        r.error = done.error;
                        if r.kind != AccessKind::DataWrite {
                            r.data = done.data;
                        }
                    }
                    self.tracker.complete(cat);
                    self.in_flight.swap_remove(i);
                }
            }
        }

        if self.next_op >= self.ops.len() {
            return;
        }
        if self.idle_left > 0 {
            self.idle_left -= 1;
            return;
        }
        let op = &self.ops[self.next_op];
        let category = TxnCategory::of(op.kind);
        if !self.tracker.try_issue(category) {
            return; // stalled on the outstanding limit
        }
        let id = self.next_id;
        self.next_id = id.next();
        let txn = Transaction::new(id, op.kind, op.addr, op.width, op.burst, op.data.clone());
        let status = bus.issue(txn, cycle);
        debug_assert_eq!(status, BusStatus::Request, "bus rejected a legal issue");
        let rec = self.records.len();
        if self.keep_records {
            self.records.push(TxnRecord {
                id,
                kind: op.kind,
                addr: op.addr,
                width: op.width,
                burst: op.burst,
                issue_cycle: cycle,
                addr_done_cycle: None,
                done_cycle: None,
                error: None,
                data: if op.kind == AccessKind::DataWrite {
                    op.data.clone()
                } else {
                    Vec::new()
                },
            });
        }
        self.in_flight.push((id, rec, category));
        self.next_op += 1;
        self.idle_left = self.ops.get(self.next_op).map_or(0, |op| op.idle_before);
    }

    /// True once every op has been issued and picked up.
    pub fn is_finished(&self) -> bool {
        self.next_op >= self.ops.len() && self.in_flight.is_empty()
    }

    /// The records accumulated so far.
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }
}

/// Summary of a completed TLM run.
#[derive(Debug, Clone)]
pub struct TlmReport {
    /// Bus cycles from cycle 0 through the last completion, inclusive.
    pub cycles: u64,
    /// Per-transaction lifecycle records.
    pub records: Vec<TxnRecord>,
    /// How many falling-edge bus-process activations actually ran (idle
    /// cycles are skipped — the dynamic-sensitivity saving).
    pub bus_activations: u64,
}

/// Drives a [`TlmMaster`] and a [`CycleBus`] cycle by cycle.
///
/// See the [crate example](crate) for typical use. A per-cycle `hook`
/// closure receives the bus after each bus-process activation so energy
/// models can drain frames or phase events.
#[derive(Debug)]
pub struct TlmSystem<B> {
    bus: B,
    master: TlmMaster,
    cycle: u64,
    bus_activations: u64,
}

impl<B: CycleBus> TlmSystem<B> {
    /// Creates a system replaying `ops` on `bus`.
    pub fn new(bus: B, ops: Vec<MasterOp>) -> Self {
        TlmSystem {
            bus,
            master: TlmMaster::new(ops),
            cycle: 0,
            bus_activations: 0,
        }
    }

    /// Disables per-transaction record keeping (throughput measurement
    /// mode); [`TlmReport::records`] will be empty but cycle and
    /// completion counts stay correct.
    pub fn disable_records(&mut self) {
        self.master.disable_records();
    }

    /// Transactions completed so far.
    pub fn completed(&self) -> u64 {
        self.master.completed()
    }

    /// Shared access to the bus.
    pub fn bus(&self) -> &B {
        &self.bus
    }

    /// Exclusive access to the bus.
    pub fn bus_mut(&mut self) -> &mut B {
        &mut self.bus
    }

    /// The records accumulated so far.
    pub fn records(&self) -> &[TxnRecord] {
        self.master.records()
    }

    /// Executes one bus cycle: master at the rising edge, bus process at
    /// the falling edge (skipped while the bus is idle), then `hook`.
    pub fn step_cycle(&mut self, hook: &mut impl FnMut(&mut B)) {
        self.master.rising_edge(&mut self.bus, self.cycle);
        if !self.bus.is_idle() || self.bus.wants_every_cycle() {
            self.bus.bus_process(self.cycle);
            self.bus_activations += 1;
            hook(&mut self.bus);
        }
        self.cycle += 1;
    }

    /// True once the stimulus has fully completed.
    pub fn is_finished(&self) -> bool {
        self.master.is_finished()
    }

    /// Runs to completion.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus does not finish within `max_cycles`.
    pub fn run(&mut self, max_cycles: u64, mut hook: impl FnMut(&mut B)) -> TlmReport {
        while !self.master.is_finished() {
            assert!(
                self.cycle < max_cycles,
                "bus deadlock: {max_cycles} cycles without completion"
            );
            self.step_cycle(&mut hook);
        }
        let cycles = if self.master.completed() > 0 {
            self.master.last_done_cycle() + 1
        } else {
            0
        };
        TlmReport {
            cycles,
            records: self.master.records().to_vec(),
            bus_activations: self.bus_activations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::{Address, BurstLen, DataWidth};
    use std::collections::HashMap;

    /// A bus that completes everything `LAT` cycles after issue.
    #[derive(Debug, Default)]
    struct FixedLatencyBus<const LAT: u64> {
        pending: HashMap<TxnId, u64>,
        cycle: u64,
        processed: u64,
    }

    impl<const LAT: u64> CycleBus for FixedLatencyBus<LAT> {
        fn issue(&mut self, txn: Transaction, cycle: u64) -> BusStatus {
            self.pending.insert(txn.id, cycle + LAT);
            BusStatus::Request
        }
        fn poll(&mut self, id: TxnId) -> PollStatus {
            let due = self.pending[&id];
            if self.cycle > due {
                self.pending.remove(&id);
                PollStatus::Done(Completed {
                    addr_done_cycle: Some(due),
                    done_cycle: due,
                    error: None,
                    data: vec![0xAB],
                })
            } else {
                PollStatus::Pending
            }
        }
        fn bus_process(&mut self, cycle: u64) {
            self.cycle = cycle + 1; // completions visible next rising edge
            self.processed += 1;
        }
        fn is_idle(&self) -> bool {
            self.pending.is_empty()
        }
    }

    fn ops(n: u64) -> Vec<MasterOp> {
        (0..n).map(|i| MasterOp::read(0x100 + 4 * i)).collect()
    }

    #[test]
    fn runs_to_completion_and_counts_cycles() {
        let mut sys = TlmSystem::new(FixedLatencyBus::<0>::default(), ops(3));
        let report = sys.run(100, |_| {});
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.cycles, 3);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.issue_cycle, i as u64);
            assert_eq!(r.done_cycle, Some(i as u64));
            assert_eq!(r.data, vec![0xAB]);
        }
    }

    #[test]
    fn idle_gaps_delay_issue() {
        let mut stim = ops(2);
        stim[1].idle_before = 3;
        let mut sys = TlmSystem::new(FixedLatencyBus::<0>::default(), stim);
        let report = sys.run(100, |_| {});
        assert_eq!(report.records[1].issue_cycle, 4);
    }

    #[test]
    fn limit_stalls_are_respected() {
        // Latency 10 with a 4-deep read window: the 5th read must wait
        // for the 1st to be picked up.
        let mut sys = TlmSystem::new(FixedLatencyBus::<10>::default(), ops(5));
        let report = sys.run(1_000, |_| {});
        let r4 = &report.records[4];
        let r0 = &report.records[0];
        assert!(r4.issue_cycle > r0.done_cycle.unwrap());
    }

    #[test]
    fn write_records_keep_their_payload() {
        let stim = vec![MasterOp::write(0x10, 0xDEAD_BEEF)];
        let mut sys = TlmSystem::new(FixedLatencyBus::<0>::default(), stim);
        let report = sys.run(100, |_| {});
        assert_eq!(report.records[0].data, vec![0xDEAD_BEEF]);
    }

    #[test]
    fn hook_runs_once_per_bus_activation() {
        let mut sys = TlmSystem::new(FixedLatencyBus::<0>::default(), ops(2));
        let mut hooks = 0u64;
        let report = sys.run(100, |_| hooks += 1);
        assert_eq!(hooks, report.bus_activations);
        assert!(hooks > 0);
    }

    #[test]
    fn master_records_match_txn_shape() {
        let stim = vec![MasterOp {
            idle_before: 0,
            kind: AccessKind::InstrFetch,
            addr: Address::new(0x40),
            width: DataWidth::W32,
            burst: BurstLen::B4,
            data: Vec::new(),
        }];
        let mut sys = TlmSystem::new(FixedLatencyBus::<1>::default(), stim);
        let report = sys.run(100, |_| {});
        let r = &report.records[0];
        assert_eq!(r.kind, AccessKind::InstrFetch);
        assert_eq!(r.burst, BurstLen::B4);
        assert!(r.error.is_none());
    }
}
