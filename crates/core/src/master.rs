//! Master-side replay of stimulus against a TLM bus, and the run harness.

use hierbus_ec::record::TxnRecord;
use hierbus_ec::{
    AccessKind, BusError, BusStatus, FaultCounters, FaultKind, FaultPlan, MasterOp,
    OutstandingLimits, OutstandingTracker, RetryPolicy, Transaction, TxnCategory, TxnId,
    TxnOutcome,
};
use hierbus_sim::CycleSchedule;

/// The completion payload a bus hands back when a transaction is picked
/// up from the finish queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completed {
    /// Cycle the address phase completed.
    pub addr_done_cycle: Option<u64>,
    /// Cycle the transaction completed.
    pub done_cycle: u64,
    /// Error that terminated it, if any.
    pub error: Option<BusError>,
    /// Read results (lane-extracted architectural values), empty for
    /// writes.
    pub data: Vec<u32>,
}

/// Result of polling an in-flight transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollStatus {
    /// Still in progress — poll again next cycle (the paper's `wait`).
    Pending,
    /// Finished; the completion payload (the paper's `ok`/`error`).
    Done(Completed),
}

/// The cycle-driven interface both TLM bus layers expose to a master.
///
/// The master calls [`issue`](CycleBus::issue)/[`poll`](CycleBus::poll)
/// at the rising clock edge and the kernel (or harness) calls
/// [`bus_process`](CycleBus::bus_process) at the falling edge — the
/// paper's clocking discipline.
pub trait CycleBus {
    /// Presents a new transaction. Returns
    /// [`BusStatus::Request`](hierbus_ec::BusStatus) when accepted.
    fn issue(&mut self, txn: Transaction, cycle: u64) -> BusStatus;

    /// Polls an in-flight transaction; removes and returns it once done.
    fn poll(&mut self, id: TxnId) -> PollStatus;

    /// The bus process (falling edge).
    fn bus_process(&mut self, cycle: u64);

    /// True when the bus has no queued or in-progress work, allowing the
    /// harness to skip the bus process — the dynamic-sensitivity
    /// optimisation of the layer-2 model.
    fn is_idle(&self) -> bool;

    /// True if the bus process must run even on idle cycles. The layer-1
    /// bus returns true while frame emission is enabled: its power module
    /// watches the wires every cycle (handshake signals *fall* on the
    /// first idle cycle, and that transition costs energy), so the
    /// process stays statically sensitive like the paper's SC_METHOD.
    fn wants_every_cycle(&self) -> bool {
        false
    }

    /// True if at least one transaction is waiting in the finish queue.
    /// Purely an optimisation hint: the master skips per-transaction
    /// polling on cycles where nothing can have completed, which is
    /// observationally invisible — a poll only ever succeeds when the
    /// finish queue is non-empty. The conservative default keeps
    /// polling every cycle.
    fn has_finished(&self) -> bool {
        true
    }

    /// Hints that the master will discard read data (records disabled),
    /// so the bus may skip collecting per-beat read results. Purely an
    /// optimisation hint; buses may ignore it.
    fn discard_read_data(&mut self) {}

    /// Attaches an injected fault to the transaction just issued as
    /// `id`. Called by the master immediately after a successful
    /// [`issue`](CycleBus::issue); buses without fault support ignore
    /// it.
    fn inject(&mut self, id: TxnId, fault: FaultKind) {
        let _ = (id, fault);
    }

    /// Records an observability counter sample on the bus's trace
    /// collector, if it has one. Used by the harness to mirror the
    /// master's `fault.*` counters into the trace.
    fn obs_counter(&mut self, track: &'static str, cycle: u64, value: f64) {
        let _ = (track, cycle, value);
    }

    /// Hints the expected number of transactions so the bus can pre-size
    /// its bookkeeping and never reallocate on the issue path. Purely a
    /// capacity hint; buses may ignore it.
    fn reserve_transactions(&mut self, n: usize) {
        let _ = n;
    }
}

/// One in-flight attempt and the bookkeeping needed to judge it.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: TxnId,
    rec: usize,
    cat: TxnCategory,
    /// Stimulus position this attempt serves.
    op: usize,
    /// 0-based attempt number (0 = first issue, 1 = first retry, ...).
    attempt: u32,
    issue_cycle: u64,
    /// Timed out: the master no longer waits for it, but keeps polling
    /// so the bus drains to a defined idle state.
    abandoned: bool,
}

/// A scheduled reissue of a failed attempt.
#[derive(Debug, Clone, Copy)]
struct Retry {
    op: usize,
    attempt: u32,
    /// Earliest cycle the reissue may happen (completion + backoff).
    earliest: u64,
}

/// Replays a [`MasterOp`] list against a [`CycleBus`], enforcing the
/// one-issue-per-cycle rule and the outstanding-transaction ceilings, and
/// producing [`TxnRecord`]s directly comparable with the RTL reference's.
///
/// With a [`FaultPlan`] and [`RetryPolicy`] attached the master also
/// implements the robustness policy: faults resolved from the plan are
/// injected at issue time, slave errors are retried with bounded
/// backoff, attempts that outlive the timeout are abandoned (the bus
/// drains them naturally), and every stimulus op ends with a
/// [`TxnOutcome`].
#[derive(Debug)]
pub struct TlmMaster {
    ops: std::sync::Arc<[MasterOp]>,
    next_op: usize,
    idle_left: u32,
    next_id: TxnId,
    tracker: OutstandingTracker,
    records: Vec<TxnRecord>,
    in_flight: Vec<InFlight>,
    keep_records: bool,
    completed: u64,
    last_done_cycle: u64,
    plan: FaultPlan,
    policy: RetryPolicy,
    retries: Vec<Retry>,
    outcomes: Vec<Option<TxnOutcome>>,
    counters: FaultCounters,
}

impl TlmMaster {
    /// Creates a master for `ops` with the core's default limits.
    pub fn new(ops: impl Into<std::sync::Arc<[MasterOp]>>) -> Self {
        Self::with_limits(ops, OutstandingLimits::CORE_DEFAULT)
    }

    /// Creates a master with explicit limits.
    pub fn with_limits(
        ops: impl Into<std::sync::Arc<[MasterOp]>>,
        limits: OutstandingLimits,
    ) -> Self {
        let ops = ops.into();
        let idle_left = ops.first().map_or(0, |op| op.idle_before);
        let outcomes = vec![None; ops.len()];
        TlmMaster {
            ops,
            next_op: 0,
            idle_left,
            next_id: TxnId(0),
            tracker: OutstandingTracker::new(limits),
            records: Vec::new(),
            in_flight: Vec::new(),
            keep_records: true,
            completed: 0,
            last_done_cycle: 0,
            plan: FaultPlan::new(),
            policy: RetryPolicy::NONE,
            retries: Vec::new(),
            outcomes,
            counters: FaultCounters::default(),
        }
    }

    /// Attaches a fault plan and robustness policy. Must be called
    /// before the first cycle.
    pub fn set_faults(&mut self, plan: FaultPlan, policy: RetryPolicy) {
        assert_eq!(self.next_op, 0, "faults must be configured before running");
        self.plan = plan;
        self.policy = policy;
    }

    /// Sets the first transaction id this master will use. Multi-master
    /// systems give each master a disjoint id range (the DMA engine
    /// counts from [`hierbus_ec::dma::DMA_ID_BASE`]) so every span and
    /// phase event stays attributable to its master. Must be called
    /// before the first issue.
    pub fn set_id_base(&mut self, base: u64) {
        assert!(
            self.next_op == 0 && self.records.is_empty(),
            "id base must be configured before running"
        );
        self.next_id = TxnId(base);
    }

    /// The attached fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Disables per-transaction record keeping (throughput measurement
    /// mode): only the completion count and the final cycle survive.
    pub fn disable_records(&mut self) {
        self.keep_records = false;
    }

    /// Transactions completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The cycle of the latest completion seen so far.
    pub fn last_done_cycle(&self) -> u64 {
        self.last_done_cycle
    }

    /// The `fault.*` counters so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    /// Per-op outcomes; `None` while the op is still unresolved.
    pub fn outcomes(&self) -> &[Option<TxnOutcome>] {
        &self.outcomes
    }

    /// Rising-edge step: picks up finished transactions (freeing limit
    /// slots), applies the timeout, then issues — a due retry first,
    /// else the next op if its idle gap has elapsed and a slot is free.
    ///
    /// Single-master form of the split interface: equivalent to
    /// [`begin_cycle`](Self::begin_cycle), then
    /// [`issue_granted`](Self::issue_granted) whenever
    /// [`arbitration_request`](Self::arbitration_request) raises — i.e.
    /// a bus whose arbiter grants this master unconditionally.
    pub fn rising_edge<B: CycleBus>(&mut self, bus: &mut B, cycle: u64) {
        self.begin_cycle(bus, cycle);
        if self.arbitration_request(cycle) {
            self.issue_granted(bus, cycle);
        }
    }

    /// Rising-edge bookkeeping that happens whether or not this master
    /// wins the bus: picks up completions first so a freed slot can be
    /// reused in the same cycle (matching the reference master's
    /// bookkeeping), then applies the timeout — abandoning attempts
    /// past their deadline. The bus is not cancelled on timeout; it
    /// drains the transaction on its own, so the FSM always returns to
    /// idle. A multi-master system calls this for every master before
    /// arbitrating.
    pub fn begin_cycle<B: CycleBus>(&mut self, bus: &mut B, cycle: u64) {
        self.pickup(bus, cycle);
        if let Some(t) = self.policy.timeout {
            for f in &mut self.in_flight {
                if !f.abandoned && cycle >= f.issue_cycle + t {
                    f.abandoned = true;
                    self.outcomes[f.op] = Some(TxnOutcome::Aborted);
                    self.counters.aborted += 1;
                }
            }
        }
    }

    /// This master's request line for `cycle`: true when it has a
    /// transaction ready to issue (a due retry, or fresh stimulus whose
    /// idle gap has elapsed) *and* a free outstanding-limit slot for it.
    ///
    /// Consumes exactly the state an ungranted cycle consumes — an
    /// elapsed idle cycle is decremented here because the engine idles
    /// regardless of what the arbiter decides. Call once per cycle,
    /// after [`begin_cycle`](Self::begin_cycle); when the arbiter
    /// grants, follow up with [`issue_granted`](Self::issue_granted)
    /// in the same cycle.
    pub fn arbitration_request(&mut self, cycle: u64) -> bool {
        // A due retry has priority over fresh stimulus (and, like fresh
        // stimulus, waits head-of-line on a free limit slot).
        if let Some(pos) = self.due_retry(cycle) {
            let category = TxnCategory::of(self.ops[self.retries[pos].op].kind);
            return self.tracker.can_issue(category);
        }
        if self.next_op >= self.ops.len() {
            return false;
        }
        if self.idle_left > 0 {
            self.idle_left -= 1;
            return false;
        }
        self.tracker
            .can_issue(TxnCategory::of(self.ops[self.next_op].kind))
    }

    /// Issues the transaction [`arbitration_request`](Self::arbitration_request)
    /// raised for — the granted master's drive of the address channel.
    ///
    /// # Panics
    ///
    /// Panics if called without a raised request (nothing to issue or
    /// no limit slot).
    pub fn issue_granted<B: CycleBus>(&mut self, bus: &mut B, cycle: u64) {
        if let Some(pos) = self.due_retry(cycle) {
            let retry = self.retries[pos];
            let category = TxnCategory::of(self.ops[retry.op].kind);
            assert!(
                self.tracker.try_issue(category),
                "granted retry without a free limit slot"
            );
            self.retries.remove(pos);
            self.issue_attempt(bus, cycle, retry.op, retry.attempt, category);
            return;
        }
        let category = TxnCategory::of(self.ops[self.next_op].kind);
        assert!(
            self.tracker.try_issue(category),
            "granted issue without a free limit slot"
        );
        let op = self.next_op;
        self.issue_attempt(bus, cycle, op, 0, category);
        self.next_op += 1;
        self.idle_left = self.ops.get(self.next_op).map_or(0, |op| op.idle_before);
    }

    /// Polls every in-flight attempt and settles the finished ones. The
    /// reference master settles an outcome at the falling edge the
    /// transaction completes; this runs at the next rising edge, which
    /// is the same decision point — except at a card tear, where
    /// [`TlmSystem`] calls it once more so completions from already
    /// executed cycles are not spuriously aborted.
    pub fn pickup<B: CycleBus>(&mut self, bus: &mut B, cycle: u64) {
        if self.in_flight.is_empty() || !bus.has_finished() {
            return;
        }
        let mut i = 0;
        while i < self.in_flight.len() {
            let f = self.in_flight[i];
            match bus.poll(f.id) {
                PollStatus::Pending => i += 1,
                PollStatus::Done(done) => {
                    self.completed += 1;
                    self.last_done_cycle = self.last_done_cycle.max(done.done_cycle);
                    if self.keep_records {
                        let r = &mut self.records[f.rec];
                        r.addr_done_cycle = done.addr_done_cycle;
                        r.done_cycle = Some(done.done_cycle);
                        r.error = done.error;
                        if r.kind != AccessKind::DataWrite {
                            r.data = done.data;
                        }
                    }
                    self.tracker.complete(f.cat);
                    if !f.abandoned {
                        self.settle_attempt(f.op, f.attempt, done.error, cycle);
                    }
                    self.in_flight.swap_remove(i);
                }
            }
        }
    }

    /// Issues attempt `attempt` of op `op_idx` and injects its planned
    /// fault, if any.
    fn issue_attempt<B: CycleBus>(
        &mut self,
        bus: &mut B,
        cycle: u64,
        op_idx: usize,
        attempt: u32,
        category: TxnCategory,
    ) {
        let op = &self.ops[op_idx];
        let id = self.next_id;
        self.next_id = id.next();
        let txn = Transaction::new(id, op.kind, op.addr, op.width, op.burst, op.data.clone());
        let status = bus.issue(txn, cycle);
        debug_assert_eq!(status, BusStatus::Request, "bus rejected a legal issue");
        if !self.plan.is_empty() {
            if let Some(kind) = self.plan.resolve(op_idx, attempt) {
                self.counters.injected += 1;
                bus.inject(id, kind);
            }
        }
        let rec = self.records.len();
        if self.keep_records {
            self.records.push(TxnRecord {
                id,
                kind: op.kind,
                addr: op.addr,
                width: op.width,
                burst: op.burst,
                issue_cycle: cycle,
                addr_done_cycle: None,
                done_cycle: None,
                error: None,
                data: if op.kind == AccessKind::DataWrite {
                    op.data.to_vec()
                } else {
                    Vec::new()
                },
            });
        }
        self.in_flight.push(InFlight {
            id,
            rec,
            cat: category,
            op: op_idx,
            attempt,
            issue_cycle: cycle,
            abandoned: false,
        });
    }

    /// Judges a finished (non-abandoned) attempt: schedule a retry for a
    /// retryable error with budget left, otherwise settle the outcome.
    fn settle_attempt(&mut self, op: usize, attempt: u32, error: Option<BusError>, cycle: u64) {
        match error {
            Some(BusError::SlaveError(_)) if attempt < self.policy.max_retries => {
                self.counters.retried += 1;
                self.retries.push(Retry {
                    op,
                    attempt: attempt + 1,
                    earliest: cycle + u64::from(self.policy.backoff(attempt)),
                });
            }
            Some(e) => self.outcomes[op] = Some(TxnOutcome::Error(e)),
            None => self.outcomes[op] = Some(TxnOutcome::Ok),
        }
    }

    /// The due retry to issue this cycle: earliest deadline first, ties
    /// broken by op index — fully deterministic.
    fn due_retry(&self, cycle: u64) -> Option<usize> {
        self.retries
            .iter()
            .enumerate()
            .filter(|(_, r)| r.earliest <= cycle)
            .min_by_key(|(_, r)| (r.earliest, r.op))
            .map(|(i, _)| i)
    }

    /// Card tear: the clock stopped. Every op without a settled outcome
    /// — in flight, awaiting retry, or never issued — is aborted.
    pub fn tear_now(&mut self) {
        for o in &mut self.outcomes {
            if o.is_none() {
                *o = Some(TxnOutcome::Aborted);
                self.counters.aborted += 1;
            }
        }
        self.retries.clear();
    }

    /// True once every op has been issued and picked up and no retry is
    /// pending.
    pub fn is_finished(&self) -> bool {
        self.next_op >= self.ops.len() && self.in_flight.is_empty() && self.retries.is_empty()
    }

    /// The records accumulated so far.
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }
}

/// Summary of a completed TLM run.
#[derive(Debug, Clone)]
pub struct TlmReport {
    /// Bus cycles from cycle 0 through the last completion, inclusive.
    pub cycles: u64,
    /// Per-transaction lifecycle records (one per *attempt* when the
    /// retry policy reissues).
    pub records: Vec<TxnRecord>,
    /// How many falling-edge bus-process activations actually ran (idle
    /// cycles are skipped — the dynamic-sensitivity saving).
    pub bus_activations: u64,
    /// Final per-stimulus-op outcomes, parallel to the op list.
    pub outcomes: Vec<TxnOutcome>,
    /// Fault-injection and robustness counters.
    pub fault: FaultCounters,
}

/// Drives a [`TlmMaster`] and a [`CycleBus`] cycle by cycle.
///
/// See the [crate example](crate) for typical use. A per-cycle `hook`
/// closure receives the bus after each bus-process activation so energy
/// models can drain frames or phase events.
#[derive(Debug)]
pub struct TlmSystem<B> {
    bus: B,
    master: TlmMaster,
    cycle: u64,
    bus_activations: u64,
    tear: CycleSchedule<()>,
    torn: bool,
    sampled: FaultCounters,
    /// True once a fault plan/policy is attached; the per-cycle counter
    /// sampling is skipped entirely on clean runs.
    faults_configured: bool,
}

impl<B: CycleBus> TlmSystem<B> {
    /// Creates a system replaying `ops` on `bus`.
    pub fn new(mut bus: B, ops: impl Into<std::sync::Arc<[MasterOp]>>) -> Self {
        let ops = ops.into();
        bus.reserve_transactions(ops.len());
        TlmSystem {
            bus,
            master: TlmMaster::new(ops),
            cycle: 0,
            bus_activations: 0,
            tear: CycleSchedule::new(),
            torn: false,
            sampled: FaultCounters::default(),
            faults_configured: false,
        }
    }

    /// Attaches a fault plan and robustness policy; builder-style. Must
    /// be called before the first cycle.
    pub fn with_faults(mut self, plan: FaultPlan, policy: RetryPolicy) -> Self {
        self.tear = CycleSchedule::new();
        if let Some(tc) = plan.tear_cycle {
            self.tear.at(tc, ());
        }
        self.master.set_faults(plan, policy);
        self.faults_configured = true;
        self
    }

    /// Disables per-transaction record keeping (throughput measurement
    /// mode); [`TlmReport::records`] will be empty but cycle and
    /// completion counts stay correct. The bus is also told it may
    /// discard read data, since nothing will keep it.
    pub fn disable_records(&mut self) {
        self.master.disable_records();
        self.bus.discard_read_data();
    }

    /// Transactions completed so far.
    pub fn completed(&self) -> u64 {
        self.master.completed()
    }

    /// Shared access to the bus.
    pub fn bus(&self) -> &B {
        &self.bus
    }

    /// Exclusive access to the bus.
    pub fn bus_mut(&mut self) -> &mut B {
        &mut self.bus
    }

    /// The records accumulated so far.
    pub fn records(&self) -> &[TxnRecord] {
        self.master.records()
    }

    /// True once the card has been torn.
    pub fn torn(&self) -> bool {
        self.torn
    }

    /// Executes one bus cycle: master at the rising edge, bus process at
    /// the falling edge (skipped while the bus is idle), then `hook`.
    pub fn step_cycle(&mut self, hook: &mut impl FnMut(&mut B)) {
        self.master.rising_edge(&mut self.bus, self.cycle);
        self.sample_fault_counters();
        if self.bus.wants_every_cycle() || !self.bus.is_idle() {
            self.bus.bus_process(self.cycle);
            self.bus_activations += 1;
            hook(&mut self.bus);
        }
        self.cycle += 1;
    }

    /// Mirrors the master's fault counters into the bus trace whenever
    /// they change.
    fn sample_fault_counters(&mut self) {
        if !self.faults_configured {
            return;
        }
        let c = self.master.fault_counters();
        if c == self.sampled {
            return;
        }
        if c.injected != self.sampled.injected {
            self.bus
                .obs_counter("fault.injected", self.cycle, c.injected as f64);
        }
        if c.retried != self.sampled.retried {
            self.bus
                .obs_counter("fault.retried", self.cycle, c.retried as f64);
        }
        if c.aborted != self.sampled.aborted {
            self.bus
                .obs_counter("fault.aborted", self.cycle, c.aborted as f64);
        }
        self.sampled = c;
    }

    /// True once the stimulus has fully completed.
    pub fn is_finished(&self) -> bool {
        self.master.is_finished()
    }

    /// Runs to completion — or to the card tear, whichever is first.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus does not finish within `max_cycles`.
    pub fn run(&mut self, max_cycles: u64, mut hook: impl FnMut(&mut B)) -> TlmReport {
        while !self.master.is_finished() {
            if !self.tear.pop_due(self.cycle).is_empty() {
                // Power is gone: the cycle at the tear never executes.
                self.torn = true;
                break;
            }
            assert!(
                self.cycle < max_cycles,
                "bus deadlock: {max_cycles} cycles without completion"
            );
            self.step_cycle(&mut hook);
        }
        if self.torn {
            // Completions from already-executed cycles settled at the
            // reference's falling edge; pick them up before aborting the
            // rest, so the tear boundary agrees across layers.
            let cycle = self.cycle;
            self.master.pickup(&mut self.bus, cycle);
            self.master.tear_now();
            self.sample_fault_counters();
        }
        let cycles = if self.master.completed() > 0 {
            self.master.last_done_cycle() + 1
        } else {
            0
        };
        TlmReport {
            cycles,
            records: self.master.records().to_vec(),
            bus_activations: self.bus_activations,
            outcomes: self
                .master
                .outcomes()
                .iter()
                .map(|o| o.expect("all ops settled at end of run"))
                .collect(),
            fault: self.master.fault_counters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::{Address, BurstLen, DataWidth, OpFault};
    use std::collections::HashMap;

    /// A bus that completes everything `LAT` cycles after issue, and
    /// honours injected faults: `SlaveError` fails the transaction,
    /// `Stall(n)` adds `n` cycles of latency.
    #[derive(Debug, Default)]
    struct FixedLatencyBus<const LAT: u64> {
        pending: HashMap<TxnId, (u64, Option<BusError>)>,
        cycle: u64,
        processed: u64,
    }

    impl<const LAT: u64> CycleBus for FixedLatencyBus<LAT> {
        fn issue(&mut self, txn: Transaction, cycle: u64) -> BusStatus {
            self.pending.insert(txn.id, (cycle + LAT, None));
            BusStatus::Request
        }
        fn inject(&mut self, id: TxnId, fault: FaultKind) {
            let entry = self.pending.get_mut(&id).expect("inject follows issue");
            match fault {
                FaultKind::SlaveError => entry.1 = Some(BusError::SlaveError(Address::new(0))),
                FaultKind::Stall(n) => entry.0 += u64::from(n),
            }
        }
        fn poll(&mut self, id: TxnId) -> PollStatus {
            let (due, error) = self.pending[&id];
            if self.cycle > due {
                self.pending.remove(&id);
                PollStatus::Done(Completed {
                    addr_done_cycle: Some(due),
                    done_cycle: due,
                    error,
                    data: vec![0xAB],
                })
            } else {
                PollStatus::Pending
            }
        }
        fn bus_process(&mut self, cycle: u64) {
            self.cycle = cycle + 1; // completions visible next rising edge
            self.processed += 1;
        }
        fn is_idle(&self) -> bool {
            self.pending.is_empty()
        }
    }

    fn ops(n: u64) -> Vec<MasterOp> {
        (0..n).map(|i| MasterOp::read(0x100 + 4 * i)).collect()
    }

    #[test]
    fn runs_to_completion_and_counts_cycles() {
        let mut sys = TlmSystem::new(FixedLatencyBus::<0>::default(), ops(3));
        let report = sys.run(100, |_| {});
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.cycles, 3);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.issue_cycle, i as u64);
            assert_eq!(r.done_cycle, Some(i as u64));
            assert_eq!(r.data, vec![0xAB]);
        }
        assert_eq!(report.outcomes, vec![TxnOutcome::Ok; 3]);
        assert!(report.fault.is_zero());
    }

    #[test]
    fn idle_gaps_delay_issue() {
        let mut stim = ops(2);
        stim[1].idle_before = 3;
        let mut sys = TlmSystem::new(FixedLatencyBus::<0>::default(), stim);
        let report = sys.run(100, |_| {});
        assert_eq!(report.records[1].issue_cycle, 4);
    }

    #[test]
    fn limit_stalls_are_respected() {
        // Latency 10 with a 4-deep read window: the 5th read must wait
        // for the 1st to be picked up.
        let mut sys = TlmSystem::new(FixedLatencyBus::<10>::default(), ops(5));
        let report = sys.run(1_000, |_| {});
        let r4 = &report.records[4];
        let r0 = &report.records[0];
        assert!(r4.issue_cycle > r0.done_cycle.unwrap());
    }

    #[test]
    fn write_records_keep_their_payload() {
        let stim = vec![MasterOp::write(0x10, 0xDEAD_BEEF)];
        let mut sys = TlmSystem::new(FixedLatencyBus::<0>::default(), stim);
        let report = sys.run(100, |_| {});
        assert_eq!(report.records[0].data, vec![0xDEAD_BEEF]);
    }

    #[test]
    fn hook_runs_once_per_bus_activation() {
        let mut sys = TlmSystem::new(FixedLatencyBus::<0>::default(), ops(2));
        let mut hooks = 0u64;
        let report = sys.run(100, |_| hooks += 1);
        assert_eq!(hooks, report.bus_activations);
        assert!(hooks > 0);
    }

    #[test]
    fn master_records_match_txn_shape() {
        let stim = vec![MasterOp {
            idle_before: 0,
            kind: AccessKind::InstrFetch,
            addr: Address::new(0x40),
            width: DataWidth::W32,
            burst: BurstLen::B4,
            data: Vec::new().into(),
        }];
        let mut sys = TlmSystem::new(FixedLatencyBus::<1>::default(), stim);
        let report = sys.run(100, |_| {});
        let r = &report.records[0];
        assert_eq!(r.kind, AccessKind::InstrFetch);
        assert_eq!(r.burst, BurstLen::B4);
        assert!(r.error.is_none());
    }

    #[test]
    fn retry_reissues_after_backoff_and_succeeds() {
        let plan = FaultPlan::new().with_fault(1, OpFault::once(FaultKind::SlaveError));
        let mut sys = TlmSystem::new(FixedLatencyBus::<2>::default(), ops(3))
            .with_faults(plan, RetryPolicy::retries(3));
        let report = sys.run(1_000, |_| {});
        assert_eq!(report.outcomes, vec![TxnOutcome::Ok; 3]);
        assert_eq!(report.fault.injected, 1);
        assert_eq!(report.fault.retried, 1);
        assert_eq!(report.fault.aborted, 0);
        // One record per attempt: 3 ops + 1 retry.
        assert_eq!(report.records.len(), 4);
        let failed = report
            .records
            .iter()
            .find(|r| r.error.is_some())
            .expect("the faulted attempt keeps its error record");
        let retried = report
            .records
            .iter()
            .rfind(|r| r.addr == failed.addr)
            .unwrap();
        // Reissue respects the backoff gap after the failure was seen.
        assert!(
            retried.issue_cycle >= failed.done_cycle.unwrap() + 1 + 2,
            "retry at {} too close to failure at {}",
            retried.issue_cycle,
            failed.done_cycle.unwrap()
        );
    }

    #[test]
    fn exhausted_retries_settle_as_error() {
        let plan = FaultPlan::new().with_fault(0, OpFault::always(FaultKind::SlaveError));
        let mut sys = TlmSystem::new(FixedLatencyBus::<0>::default(), ops(1))
            .with_faults(plan, RetryPolicy::retries(2));
        let report = sys.run(1_000, |_| {});
        assert_eq!(report.records.len(), 3); // initial + 2 retries
        assert!(matches!(
            report.outcomes[0],
            TxnOutcome::Error(BusError::SlaveError(_))
        ));
        assert_eq!(report.fault.retried, 2);
        assert_eq!(report.fault.injected, 3);
    }

    #[test]
    fn timeout_aborts_but_bus_still_drains() {
        let plan = FaultPlan::new().with_fault(0, OpFault::always(FaultKind::Stall(50)));
        let policy = RetryPolicy {
            timeout: Some(8),
            ..RetryPolicy::NONE
        };
        let mut sys =
            TlmSystem::new(FixedLatencyBus::<2>::default(), ops(2)).with_faults(plan, policy);
        let report = sys.run(1_000, |_| {});
        assert_eq!(report.outcomes[0], TxnOutcome::Aborted);
        assert_eq!(report.outcomes[1], TxnOutcome::Ok);
        assert_eq!(report.fault.aborted, 1);
        // The abandoned transaction was still drained from the bus.
        assert!(sys.bus().is_idle());
        assert!(sys.is_finished());
    }

    #[test]
    fn tear_truncates_and_aborts_the_rest() {
        let plan = FaultPlan::new().with_tear(2);
        let mut sys = TlmSystem::new(FixedLatencyBus::<10>::default(), ops(3))
            .with_faults(plan, RetryPolicy::NONE);
        let report = sys.run(1_000, |_| {});
        assert!(sys.torn());
        assert_eq!(report.outcomes, vec![TxnOutcome::Aborted; 3]);
        assert_eq!(report.fault.aborted, 3);
        assert_eq!(report.cycles, 0); // nothing completed before the tear
    }
}
