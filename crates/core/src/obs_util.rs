//! Shared helpers for wiring the TLM buses into `hierbus-obs`.

use hierbus_ec::AccessKind;
use hierbus_obs::AccessClass;

/// Maps a bus access kind onto the obs-local access class.
///
/// `hierbus-obs` is dependency-free, so it cannot name
/// [`AccessKind`] itself; every instrumented crate carries this
/// three-line translation instead.
pub(crate) fn access_class(kind: AccessKind) -> AccessClass {
    match kind {
        AccessKind::InstrFetch => AccessClass::Fetch,
        AccessKind::DataRead => AccessClass::Read,
        AccessKind::DataWrite => AccessClass::Write,
    }
}
