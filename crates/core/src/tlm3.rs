//! The transaction-level **layer-3** (message layer) bus model.
//!
//! The paper adopts Haverinen et al.'s layering, whose top layer is the
//! *message layer*: untimed, event-driven, abstract data, several data
//! items per transaction — used for functional partitioning and
//! algorithm work before any timing exists. The paper's own Java Card
//! model starts life at this level (Fig. 7a). This module completes the
//! hierarchy in code:
//!
//! * the native interface is *blocking and untimed*: [`Tlm3Bus::read`]
//!   and [`Tlm3Bus::write`] move whole buffers in one call;
//! * a [`CycleBus`] bridge (Haverinen: "bridging layer three or layer
//!   two components to cycle accurate systems") lets the same stimulus
//!   machinery drive it — every transaction completes in its issue
//!   cycle, so "timing" collapses to the issue schedule, which is
//!   exactly what an untimed model should report.

use crate::master::{Completed, CycleBus, PollStatus};
use crate::slave::{SlaveReply, TlmSlave};
use hierbus_ec::{
    Address, AddressMap, BusError, BusStatus, DataWidth, SlaveId, Transaction, TxnId,
};

/// The layer-3 bus. See the [module docs](self).
pub struct Tlm3Bus {
    map: AddressMap,
    slaves: Vec<Box<dyn TlmSlave>>,
    finish_q: hierbus_ec::FastIdMap<TxnId, Completed>,
    messages: u64,
}

impl Tlm3Bus {
    /// Builds the bus; the address map derives from the slaves'
    /// configurations in order.
    ///
    /// # Panics
    ///
    /// Panics if slave address windows overlap.
    pub fn new(slaves: Vec<Box<dyn TlmSlave>>) -> Self {
        let mut map = AddressMap::new();
        for s in &slaves {
            map.add_slave(s.config())
                .expect("slave windows must not overlap");
        }
        Tlm3Bus {
            map,
            slaves,
            finish_q: hierbus_ec::FastIdMap::default(),
            messages: 0,
        }
    }

    /// Messages (untimed transfers) completed so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Access to a slave (e.g. to inspect memory).
    pub fn slave(&self, id: SlaveId) -> &dyn TlmSlave {
        self.slaves[id.0].as_ref()
    }

    /// Exclusive access to a slave.
    pub fn slave_mut(&mut self, id: SlaveId) -> &mut dyn TlmSlave {
        self.slaves[id.0].as_mut()
    }

    /// Untimed block read: fills `buf` from consecutive words at `addr`.
    ///
    /// # Errors
    ///
    /// Decode, rights or slave errors as [`BusError`].
    pub fn read(&mut self, addr: Address, buf: &mut [u32]) -> Result<(), BusError> {
        let slave = self.map.decode(addr, hierbus_ec::AccessKind::DataRead)?;
        self.messages += 1;
        match self.slaves[slave.0].read_block(addr, buf) {
            SlaveReply::Ok(()) => Ok(()),
            _ => Err(BusError::SlaveError(addr)),
        }
    }

    /// Untimed block write: stores `data` to consecutive words at `addr`.
    ///
    /// # Errors
    ///
    /// Decode, rights or slave errors as [`BusError`].
    pub fn write(&mut self, addr: Address, data: &[u32]) -> Result<(), BusError> {
        let slave = self.map.decode(addr, hierbus_ec::AccessKind::DataWrite)?;
        self.messages += 1;
        match self.slaves[slave.0].write_block(addr, data) {
            SlaveReply::Ok(()) => Ok(()),
            _ => Err(BusError::SlaveError(addr)),
        }
    }

    /// Executes a whole transaction immediately (the bridge's engine).
    fn execute(&mut self, txn: &Transaction) -> Completed {
        let result = self.map.decode(txn.addr, txn.kind);
        let (error, data) = match result {
            Err(e) => (Some(e), Vec::new()),
            Ok(slave) => {
                self.messages += 1;
                if txn.kind.is_read() {
                    if txn.width == DataWidth::W32 {
                        let mut buf = vec![0u32; txn.beats() as usize];
                        match self.slaves[slave.0].read_block(txn.addr, &mut buf) {
                            SlaveReply::Ok(()) => (None, buf),
                            _ => (Some(BusError::SlaveError(txn.addr)), Vec::new()),
                        }
                    } else {
                        match self.read_word_spin(slave, txn.addr) {
                            Ok(w) => (None, vec![txn.width.extract(txn.addr, w)]),
                            Err(e) => (Some(e), Vec::new()),
                        }
                    }
                } else if txn.width == DataWidth::W32 {
                    match self.slaves[slave.0].write_block(txn.addr, &txn.data) {
                        SlaveReply::Ok(()) => (None, Vec::new()),
                        _ => (Some(BusError::SlaveError(txn.addr)), Vec::new()),
                    }
                } else {
                    let ben = txn.width.byte_enables(txn.addr);
                    let word = txn.width.insert(txn.addr, 0, txn.data[0]);
                    match self.slaves[slave.0].write_word(txn.addr, word, ben) {
                        SlaveReply::Ok(()) => (None, Vec::new()),
                        SlaveReply::Wait => (None, Vec::new()), // untimed: waits vanish
                        SlaveReply::Error => (Some(BusError::SlaveError(txn.addr)), Vec::new()),
                    }
                }
            }
        };
        Completed {
            addr_done_cycle: None,
            done_cycle: 0, // patched by the bridge with the issue cycle
            error,
            data,
        }
    }

    fn read_word_spin(&mut self, slave: SlaveId, addr: Address) -> Result<u32, BusError> {
        loop {
            match self.slaves[slave.0].read_word(addr) {
                SlaveReply::Ok(w) => return Ok(w),
                SlaveReply::Wait => continue,
                SlaveReply::Error => return Err(BusError::SlaveError(addr)),
            }
        }
    }
}

impl CycleBus for Tlm3Bus {
    fn issue(&mut self, txn: Transaction, cycle: u64) -> BusStatus {
        let mut done = self.execute(&txn);
        done.addr_done_cycle = Some(cycle);
        done.done_cycle = cycle;
        self.finish_q.insert(txn.id, done);
        BusStatus::Request
    }

    fn has_finished(&self) -> bool {
        !self.finish_q.is_empty()
    }

    fn poll(&mut self, id: TxnId) -> PollStatus {
        match self.finish_q.remove(&id) {
            Some(done) => PollStatus::Done(done),
            None => PollStatus::Pending,
        }
    }

    fn bus_process(&mut self, _cycle: u64) {
        // Untimed: everything already happened at issue.
    }

    fn is_idle(&self) -> bool {
        // No cycle-driven work ever pends; pickups happen at the
        // master's next rising edge regardless.
        self.finish_q.is_empty()
    }
}

impl crate::slave::HasSlaves for Tlm3Bus {
    fn slave_ref(&self, id: SlaveId) -> &dyn TlmSlave {
        self.slaves[id.0].as_ref()
    }

    fn slave_count(&self) -> usize {
        self.slaves.len()
    }
}

impl std::fmt::Debug for Tlm3Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tlm3Bus")
            .field("slaves", &self.slaves.len())
            .field("messages", &self.messages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::TlmSystem;
    use crate::slave::MemSlave;
    use hierbus_ec::sequences::{self, MasterOp, MixParams};
    use hierbus_ec::{AccessRights, AddressRange, SlaveConfig, WaitProfile};

    fn bus() -> Tlm3Bus {
        let mem = MemSlave::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x2_0000),
            WaitProfile::new(2, 3, 3), // waits are irrelevant at layer 3
            AccessRights::RWX,
        ));
        Tlm3Bus::new(vec![Box::new(mem)])
    }

    #[test]
    fn untimed_block_roundtrip() {
        let mut b = bus();
        b.write(Address::new(0x100), &[1, 2, 3]).unwrap();
        let mut buf = [0u32; 3];
        b.read(Address::new(0x100), &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(b.messages(), 2);
    }

    #[test]
    fn decode_errors_surface() {
        let mut b = bus();
        let mut buf = [0u32; 1];
        assert!(matches!(
            b.read(Address::new(0xF_0000), &mut buf),
            Err(BusError::Decode(_))
        ));
    }

    #[test]
    fn bridge_completes_everything_in_the_issue_cycle() {
        let mut sys = TlmSystem::new(bus(), sequences::back_to_back_reads().ops);
        let report = sys.run(1_000, |_| {});
        for r in &report.records {
            assert_eq!(r.done_cycle, Some(r.issue_cycle));
            assert!(r.error.is_none());
        }
    }

    #[test]
    fn bridge_matches_layer1_architectural_results() {
        use crate::tlm1::Tlm1Bus;
        let scenario = sequences::random_mix(
            3,
            MixParams {
                count: 200,
                max_idle: 6, // serialize enough to stay race-free
                burst_pct: 30,
                ..MixParams::default()
            },
        );
        let mem = MemSlave::new(SlaveConfig::new(
            AddressRange::new(Address::new(0), 0x2_0000),
            WaitProfile::ZERO,
            AccessRights::RWX,
        ));
        let mut l1 = TlmSystem::new(Tlm1Bus::new(vec![Box::new(mem)]), scenario.ops.clone());
        let l1_report = l1.run(1_000_000, |_| {});
        let mut l3 = TlmSystem::new(bus(), scenario.ops);
        let l3_report = l3.run(1_000_000, |_| {});
        assert_eq!(l1_report.records.len(), l3_report.records.len());
        for (a, b) in l1_report.records.iter().zip(&l3_report.records) {
            assert_eq!(a.data, b.data, "{}", a.id);
            assert_eq!(a.error, b.error, "{}", a.id);
        }
        // Untimed means *faster* than any timed model, never slower.
        assert!(l3_report.cycles <= l1_report.cycles);
    }

    #[test]
    fn sub_word_accesses_work() {
        let mut sys = TlmSystem::new(
            bus(),
            vec![
                MasterOp::write(0x200, 0xAABB_CCDD),
                MasterOp {
                    idle_before: 1,
                    kind: hierbus_ec::AccessKind::DataRead,
                    addr: Address::new(0x201),
                    width: DataWidth::W8,
                    burst: hierbus_ec::BurstLen::Single,
                    data: Vec::new().into(),
                },
            ],
        );
        let report = sys.run(1_000, |_| {});
        assert_eq!(report.records[1].data, vec![0xCC]);
    }
}
