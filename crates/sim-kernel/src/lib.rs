//! A compact discrete-event simulation kernel standing in for SystemC 2.0.
//!
//! The hierarchical bus models of the DATE 2004 paper are SystemC modules:
//! `SC_METHOD` processes statically sensitive to clock edges, plus
//! dynamically notified events used by the layer-2 model to avoid waking the
//! bus process when no transaction is pending. This crate provides exactly
//! that subset:
//!
//! * [`Kernel`] — the scheduler, generic over a user-owned *world* type `W`
//!   that holds all module state. Processes are closures over `&mut W`,
//!   which sidesteps the shared-ownership problems a literal SystemC port
//!   would have in Rust while keeping module code readable.
//! * [`ClockId`]/[`Edge`] — free-running clocks; processes register
//!   sensitivity to rising or falling edges, mirroring the paper's split
//!   (masters and slaves on the rising edge, the bus process on the falling
//!   edge).
//! * [`EventId`] — dynamically notified events with zero-delay ("delta")
//!   or timed notification.
//! * [`signal`] — [`signal::Wire`] and [`signal::Vector`]
//!   two-phase signals whose `update()` step counts bit transitions; the
//!   gate-level power estimator and the layer-1 energy model are built on
//!   these counters.
//!
//! # Example
//!
//! ```
//! use hierbus_sim::{Kernel, Edge};
//!
//! struct World { ticks: u64 }
//! let mut kernel = Kernel::new(World { ticks: 0 });
//! let clk = kernel.add_clock(10); // period of 10 time units
//! kernel.register("counter", move |w: &mut World, _api| w.ticks += 1)
//!     .sensitive_to_clock(clk, Edge::Rising);
//! kernel.run_until(100);
//! assert_eq!(kernel.world().ticks, 11); // rising edges at t = 0, 10, ..., 100
//! ```

pub mod clock;
pub mod event;
pub mod kernel;
pub mod prng;
pub mod process;
pub mod schedule;
pub mod signal;
pub mod stats;
pub mod time;
pub mod trace;

pub use clock::{ClockId, ClockSpec, Edge};
pub use event::EventId;
pub use kernel::{Api, Kernel, ProcessBuilder};
pub use prng::SplitMix64;
pub use process::{ProcessId, ProcessProfile};
pub use schedule::CycleSchedule;
pub use signal::{Transition, Vector, Wire};
pub use stats::KernelStats;
pub use time::SimTime;
