//! Free-running clocks.

use crate::time::SimTime;
use std::fmt;

/// Identifies a clock registered with [`Kernel::add_clock`].
///
/// [`Kernel::add_clock`]: crate::Kernel::add_clock
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClockId(pub(crate) usize);

impl ClockId {
    /// Returns the kernel-internal index of this clock.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

/// A clock edge. The bus models follow the paper's convention: masters and
/// slaves are triggered at the [`Rising`](Edge::Rising) edge, the bus
/// process at the [`Falling`](Edge::Falling) edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low-to-high transition; first edge of each period.
    Rising,
    /// High-to-low transition; occurs half a period after the rising edge.
    Falling,
}

impl Edge {
    /// The edge that follows this one within a clock period.
    pub fn opposite(self) -> Edge {
        match self {
            Edge::Rising => Edge::Falling,
            Edge::Falling => Edge::Rising,
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edge::Rising => f.write_str("rising"),
            Edge::Falling => f.write_str("falling"),
        }
    }
}

/// Static description of a clock: full period in ticks and the time of its
/// first rising edge.
///
/// The falling edge occurs `period / 2` ticks after each rising edge, so
/// periods should be even; [`ClockSpec::new`] enforces this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSpec {
    period: u64,
    start: SimTime,
}

impl ClockSpec {
    /// Creates a clock with the given period whose first rising edge fires
    /// at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or odd (the kernel schedules the falling
    /// edge at exactly half a period).
    pub fn new(period: u64, start: SimTime) -> Self {
        assert!(period > 0, "clock period must be non-zero");
        assert!(
            period.is_multiple_of(2),
            "clock period must be even, got {period}"
        );
        ClockSpec { period, start }
    }

    /// Full period in ticks.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Time of the first rising edge.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Half period (rising-to-falling distance) in ticks.
    pub fn half_period(&self) -> u64 {
        self.period / 2
    }
}

/// Mutable per-clock scheduling state tracked by the kernel.
#[derive(Debug, Clone)]
pub(crate) struct ClockState {
    pub spec: ClockSpec,
    /// Cycles completed, counted at rising edges.
    pub cycles: u64,
}

impl ClockState {
    pub fn new(spec: ClockSpec) -> Self {
        ClockState { spec, cycles: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_half_period() {
        let s = ClockSpec::new(10, SimTime::ZERO);
        assert_eq!(s.half_period(), 5);
        assert_eq!(s.period(), 10);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        let _ = ClockSpec::new(0, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_period_rejected() {
        let _ = ClockSpec::new(3, SimTime::ZERO);
    }

    #[test]
    fn edge_opposite() {
        assert_eq!(Edge::Rising.opposite(), Edge::Falling);
        assert_eq!(Edge::Falling.opposite(), Edge::Rising);
    }
}
