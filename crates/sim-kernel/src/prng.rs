//! A small deterministic PRNG (SplitMix64), replacing the external
//! `rand` crate so the workspace builds with no registry access.
//!
//! Every consumer in the workspace needs *reproducible* streams — the
//! synthetic layout database, the random traffic mixes and the
//! randomized tests all key their identity off a seed — and none needs
//! cryptographic strength. SplitMix64 (Steele, Lea & Flood, "Fast
//! Splittable Pseudorandom Number Generators", OOPSLA 2014) passes
//! BigCrush, needs eight bytes of state, and is trivially portable, so
//! the same seed yields the same "chip", the same traffic and the same
//! test cases on every host.

/// A seeded SplitMix64 generator.
///
/// ```
/// use hierbus_sim::prng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `lo..hi` (exclusive upper bound).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // Multiply-shift bounded rejection-free mapping (Lemire). The
        // tiny modulo bias is irrelevant for stimulus generation.
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform value in `lo..hi` (exclusive upper bound).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.f64() * (hi - lo)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// True with probability `pct`/100 — the shape every traffic
    /// generator parameter uses.
    pub fn chance(&mut self, pct: u32) -> bool {
        self.range_u32(0, 100) < pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 0 from the published algorithm.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.range_f64(-1.5, 2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_hits_every_bucket() {
        let mut r = SplitMix64::new(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.range_u32(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_tracks_percentage() {
        let mut r = SplitMix64::new(3);
        let hits = (0..10_000).filter(|_| r.chance(30)).count();
        assert!((2_500..3_500).contains(&hits), "30% gave {hits}/10000");
        assert!(!(0..100).any(|_| r.chance(0)));
        assert!((0..100).all(|_| r.chance(100)));
    }

    #[test]
    fn f64_is_in_unit_interval_and_balanced() {
        let mut r = SplitMix64::new(4);
        let mean: f64 = (0..10_000).map(|_| r.f64()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::new(0).range_u64(5, 5);
    }
}
