//! A minimal value-change-dump (VCD) style recorder.
//!
//! Useful for inspecting bus waveforms from the RTL reference model in any
//! VCD viewer. The recorder is deliberately simple: scalar and vector
//! channels, explicit sampling (typically once per half-cycle), text output
//! via [`TraceRecorder::write_vcd`].

use crate::time::SimTime;
use std::fmt::Write as _;

/// Identifies a channel registered with [`TraceRecorder::add_channel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(usize);

#[derive(Debug, Clone)]
struct Channel {
    name: String,
    width: u32,
    /// (time, value) pairs, recorded only on change.
    changes: Vec<(SimTime, u64)>,
    last: Option<u64>,
}

/// Records named signal values over time and serialises them as VCD.
///
/// ```
/// use hierbus_sim::{trace::TraceRecorder, SimTime};
/// let mut rec = TraceRecorder::new("1ns");
/// let clk = rec.add_channel("clk", 1);
/// rec.sample(SimTime::ZERO, clk, 0);
/// rec.sample(SimTime::from_ticks(5), clk, 1);
/// let vcd = rec.to_vcd();
/// assert!(vcd.contains("$var"));
/// ```
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    timescale: String,
    channels: Vec<Channel>,
}

impl TraceRecorder {
    /// Creates a recorder; `timescale` is the VCD timescale string, e.g.
    /// `"1ns"`.
    pub fn new(timescale: &str) -> Self {
        TraceRecorder {
            timescale: timescale.to_owned(),
            channels: Vec::new(),
        }
    }

    /// Registers a channel of the given bit width (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn add_channel(&mut self, name: &str, width: u32) -> ChannelId {
        assert!(
            (1..=64).contains(&width),
            "channel width {width} out of 1..=64"
        );
        let id = ChannelId(self.channels.len());
        self.channels.push(Channel {
            name: name.to_owned(),
            width,
            changes: Vec::new(),
            last: None,
        });
        id
    }

    /// Records `value` on `channel` at `time`; consecutive identical values
    /// are stored once.
    pub fn sample(&mut self, time: SimTime, channel: ChannelId, value: u64) {
        let ch = &mut self.channels[channel.0];
        if ch.last != Some(value) {
            ch.changes.push((time, value));
            ch.last = Some(value);
        }
    }

    /// Number of recorded change points across all channels.
    pub fn change_count(&self) -> usize {
        self.channels.iter().map(|c| c.changes.len()).sum()
    }

    /// Serialises the recording as a VCD document.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale {} $end", self.timescale);
        let _ = writeln!(out, "$scope module hierbus $end");
        for (i, ch) in self.channels.iter().enumerate() {
            let code = Self::id_code(i);
            let _ = writeln!(out, "$var wire {} {} {} $end", ch.width, code, ch.name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        // Initial-value dump: every channel starts unknown until its
        // first sample. Some viewers reject files whose first `#time`
        // section references an identifier never dumped before, so the
        // block must cover all channels.
        let _ = writeln!(out, "$dumpvars");
        for (i, ch) in self.channels.iter().enumerate() {
            let code = Self::id_code(i);
            if ch.width == 1 {
                let _ = writeln!(out, "x{code}");
            } else {
                let _ = writeln!(out, "bx {code}");
            }
        }
        let _ = writeln!(out, "$end");

        // Merge-sort all change points by time (stable by channel order).
        let mut points: Vec<(SimTime, usize, u64)> = Vec::new();
        for (i, ch) in self.channels.iter().enumerate() {
            for &(t, v) in &ch.changes {
                points.push((t, i, v));
            }
        }
        points.sort_by_key(|&(t, i, _)| (t, i));

        let mut current: Option<SimTime> = None;
        for (t, i, v) in points {
            if current != Some(t) {
                let _ = writeln!(out, "#{}", t.ticks());
                current = Some(t);
            }
            let code = Self::id_code(i);
            if self.channels[i].width == 1 {
                let _ = writeln!(out, "{}{}", v & 1, code);
            } else {
                let _ = writeln!(out, "b{:b} {}", v, code);
            }
        }
        out
    }

    /// Writes the VCD document to `w`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_vcd<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(self.to_vcd().as_bytes())
    }

    fn id_code(index: usize) -> String {
        // VCD identifier codes: printable ASCII 33..=126, base-94.
        let mut n = index;
        let mut code = String::new();
        loop {
            code.push((33 + (n % 94)) as u8 as char);
            n /= 94;
            if n == 0 {
                break;
            }
            n -= 1;
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedupes_consecutive_values() {
        let mut rec = TraceRecorder::new("1ns");
        let ch = rec.add_channel("sig", 1);
        rec.sample(SimTime::from_ticks(0), ch, 1);
        rec.sample(SimTime::from_ticks(1), ch, 1);
        rec.sample(SimTime::from_ticks(2), ch, 0);
        assert_eq!(rec.change_count(), 2);
    }

    #[test]
    fn vcd_contains_header_and_changes() {
        let mut rec = TraceRecorder::new("1ns");
        let clk = rec.add_channel("clk", 1);
        let bus = rec.add_channel("addr", 36);
        rec.sample(SimTime::ZERO, clk, 0);
        rec.sample(SimTime::ZERO, bus, 0xA5);
        rec.sample(SimTime::from_ticks(5), clk, 1);
        let vcd = rec.to_vcd();
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$var wire 1 ! clk $end"));
        assert!(vcd.contains("$var wire 36 \" addr $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#5"));
        assert!(vcd.contains("b10100101 \""));
    }

    #[test]
    fn vcd_emits_initial_dumpvars_block_for_every_channel() {
        let mut rec = TraceRecorder::new("1ns");
        let _clk = rec.add_channel("clk", 1);
        let _bus = rec.add_channel("addr", 36);
        // A channel with no sample before the first time stamp must
        // still appear in the initial dump.
        rec.sample(SimTime::from_ticks(7), _clk, 1);
        let vcd = rec.to_vcd();
        let dump_start = vcd.find("$dumpvars").expect("has $dumpvars");
        let defs_end = vcd.find("$enddefinitions $end").unwrap();
        let first_stamp = vcd.find("#7").unwrap();
        assert!(defs_end < dump_start && dump_start < first_stamp);
        let block = &vcd[dump_start..vcd[dump_start..].find("$end").unwrap() + dump_start];
        assert!(block.contains("x!"), "scalar unknown: {block}");
        assert!(block.contains("bx \""), "vector unknown: {block}");
    }

    #[test]
    fn id_codes_are_unique_for_many_channels() {
        let codes: Vec<String> = (0..200).map(TraceRecorder::id_code).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }
}
