//! Dynamically notified events.

use std::fmt;

/// Identifies an event created with [`Kernel::add_event`].
///
/// Events are the kernel's dynamic-sensitivity mechanism: a process that
/// registered interest via
/// [`ProcessBuilder::sensitive_to_event`](crate::ProcessBuilder::sensitive_to_event)
/// runs whenever the event fires. The layer-2 bus model uses this to sleep
/// while no transaction is outstanding — the master interface notifies the
/// bus event on the first request, exactly as the SystemC original uses
/// `sc_event::notify` to avoid useless process activations.
///
/// [`Kernel::add_event`]: crate::Kernel::add_event
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) usize);

impl EventId {
    /// Returns the kernel-internal index of this event.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev{}", self.0)
    }
}

/// Per-event kernel state: the processes statically sensitive to it.
#[derive(Debug, Default, Clone)]
pub(crate) struct EventState {
    pub name: String,
    pub waiters: Vec<crate::process::ProcessId>,
    /// Number of times the event has fired (for statistics and tests).
    pub fire_count: u64,
}
