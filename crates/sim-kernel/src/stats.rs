//! Scheduler statistics.

/// Counters the kernel accumulates while running.
///
/// These are deterministic (no wall-clock content) so they can be asserted
/// in tests; the benchmark harness measures wall time around
/// [`Kernel::run_until`](crate::Kernel::run_until) itself.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Total process activations.
    pub activations: u64,
    /// Clock edges dispatched (both polarities, all clocks).
    pub edges: u64,
    /// Event notifications delivered.
    pub events_fired: u64,
    /// Zero-delay (delta) notifications requested.
    pub delta_events: u64,
    /// High-water mark of the scheduler queue depth.
    pub queue_hwm: u64,
}

impl KernelStats {
    /// Difference between two snapshots (`self` taken after `earlier`).
    /// `queue_hwm` is a watermark, not a counter, so the later reading
    /// is kept as-is.
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            activations: self.activations - earlier.activations,
            edges: self.edges - earlier.edges,
            events_fired: self.events_fired - earlier.events_fired,
            delta_events: self.delta_events - earlier.delta_events,
            queue_hwm: self.queue_hwm,
        }
    }
}

impl std::fmt::Display for KernelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} activations, {} edges, {} events ({} delta), queue hwm {}",
            self.activations, self.edges, self.events_fired, self.delta_events, self.queue_hwm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = KernelStats {
            activations: 10,
            edges: 20,
            events_fired: 3,
            delta_events: 2,
            queue_hwm: 9,
        };
        let b = KernelStats {
            activations: 4,
            edges: 5,
            events_fired: 1,
            delta_events: 1,
            queue_hwm: 7,
        };
        let d = a.since(&b);
        assert_eq!(d.activations, 6);
        assert_eq!(d.edges, 15);
        assert_eq!(d.events_fired, 2);
        assert_eq!(d.delta_events, 1);
        // Watermarks don't subtract.
        assert_eq!(d.queue_hwm, 9);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!KernelStats::default().to_string().is_empty());
    }
}
