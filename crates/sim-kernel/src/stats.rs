//! Scheduler statistics.

/// Counters the kernel accumulates while running.
///
/// These are deterministic (no wall-clock content) so they can be asserted
/// in tests; the benchmark harness measures wall time around
/// [`Kernel::run_until`](crate::Kernel::run_until) itself.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Total process activations.
    pub activations: u64,
    /// Clock edges dispatched (both polarities, all clocks).
    pub edges: u64,
    /// Event notifications delivered.
    pub events_fired: u64,
}

impl KernelStats {
    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            activations: self.activations - earlier.activations,
            edges: self.edges - earlier.edges,
            events_fired: self.events_fired - earlier.events_fired,
        }
    }
}

impl std::fmt::Display for KernelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} activations, {} edges, {} events",
            self.activations, self.edges, self.events_fired
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = KernelStats {
            activations: 10,
            edges: 20,
            events_fired: 3,
        };
        let b = KernelStats {
            activations: 4,
            edges: 5,
            events_fired: 1,
        };
        let d = a.since(&b);
        assert_eq!(d.activations, 6);
        assert_eq!(d.edges, 15);
        assert_eq!(d.events_fired, 2);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!KernelStats::default().to_string().is_empty());
    }
}
