//! The discrete-event scheduler.

use crate::clock::{ClockId, ClockSpec, ClockState, Edge};
use crate::event::{EventId, EventState};
use crate::process::{ProcessId, ProcessMeta, ProcessProfile, WakeCause};
use crate::stats::KernelStats;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type Handler<W> = Box<dyn FnMut(&mut W, &mut Api)>;

/// What a queue entry activates when it is popped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Activity {
    ClockEdgeRising(usize),
    ClockEdgeFalling(usize),
    Event(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    what: Activity,
}

/// Services available to a process while it runs.
///
/// Handlers receive `(&mut W, &mut Api)`: full access to the world plus
/// this restricted view of the kernel. Notifications and stop requests are
/// buffered and applied when the handler returns, so a handler never
/// observes a half-updated scheduler.
#[derive(Debug)]
pub struct Api {
    time: SimTime,
    cause: WakeCause,
    cycle: u64,
    notifications: Vec<(EventId, u64)>,
    cancellations: Vec<EventId>,
    next_trigger: Option<EventId>,
    stop: bool,
}

impl Api {
    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// What woke this process.
    pub fn cause(&self) -> WakeCause {
        self.cause
    }

    /// Completed cycles of the triggering clock (0 when woken by an event).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Schedules `event` to fire `delay` ticks from now. A zero delay is a
    /// *delta* notification: it fires at the current time, but strictly
    /// after every activity already scheduled for this instant.
    pub fn notify(&mut self, event: EventId, delay: u64) {
        self.notifications.push((event, delay));
    }

    /// Cancels all pending notifications of `event` (SystemC
    /// `sc_event::cancel`). Applied when the handler returns, before any
    /// notification issued by the same handler.
    pub fn cancel(&mut self, event: EventId) {
        self.cancellations.push(event);
    }

    /// Suspends this process's *static* sensitivities until `event` next
    /// fires — SystemC's `next_trigger(event)` for `SC_METHOD`s. The
    /// process skips clock edges while suspended, runs once when the
    /// event fires, and is statically sensitive again afterwards. This
    /// is the dynamic-sensitivity mechanism the layer-2 bus model uses
    /// to sleep while no transaction is pending.
    pub fn next_trigger(&mut self, event: EventId) {
        self.next_trigger = Some(event);
    }

    /// Asks the kernel to stop after the current activity completes.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Finishes registration of a process: attach clock-edge and event
/// sensitivities, then drop the builder (or keep the [`ProcessId`]).
///
/// Returned by [`Kernel::register`]. A process with no attached
/// sensitivity never runs.
pub struct ProcessBuilder<'k, W> {
    kernel: &'k mut Kernel<W>,
    id: ProcessId,
}

impl<W> ProcessBuilder<'_, W> {
    /// Runs the process at every `edge` of `clock`. Processes fire in
    /// registration order within one edge.
    pub fn sensitive_to_clock(self, clock: ClockId, edge: Edge) -> Self {
        let lists = &mut self.kernel.clock_sensitivity[clock.0];
        let list = match edge {
            Edge::Rising => &mut lists.0,
            Edge::Falling => &mut lists.1,
        };
        list.push(self.id);
        self
    }

    /// Runs the process whenever `event` fires.
    pub fn sensitive_to_event(self, event: EventId) -> Self {
        self.kernel.events[event.0].waiters.push(self.id);
        self
    }

    /// The id of the process being built.
    pub fn id(&self) -> ProcessId {
        self.id
    }
}

/// The simulation kernel: owns the world, the processes and the schedule.
///
/// See the [crate-level documentation](crate) for a usage example.
pub struct Kernel<W> {
    world: W,
    time: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    clocks: Vec<ClockState>,
    /// Per clock: (rising-sensitive, falling-sensitive) process lists.
    clock_sensitivity: Vec<(Vec<ProcessId>, Vec<ProcessId>)>,
    events: Vec<EventState>,
    handlers: Vec<Option<Handler<W>>>,
    meta: Vec<ProcessMeta>,
    /// Per-process dynamic-sensitivity override (`next_trigger`).
    suspensions: Vec<Option<EventId>>,
    stats: KernelStats,
    stopped: bool,
    /// Scratch buffer reused across activities to avoid per-edge allocation.
    run_list: Vec<ProcessId>,
}

impl<W> Kernel<W> {
    /// Creates a kernel owning `world`.
    pub fn new(world: W) -> Self {
        Kernel {
            world,
            time: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            clocks: Vec::new(),
            clock_sensitivity: Vec::new(),
            events: Vec::new(),
            handlers: Vec::new(),
            meta: Vec::new(),
            suspensions: Vec::new(),
            stats: KernelStats::default(),
            stopped: false,
            run_list: Vec::new(),
        }
    }

    /// Adds a free-running clock with the given even `period`, first rising
    /// edge at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or odd (see [`ClockSpec::new`]).
    pub fn add_clock(&mut self, period: u64) -> ClockId {
        self.add_clock_spec(ClockSpec::new(period, SimTime::ZERO))
    }

    /// Adds a clock from a full [`ClockSpec`].
    pub fn add_clock_spec(&mut self, spec: ClockSpec) -> ClockId {
        let id = ClockId(self.clocks.len());
        self.schedule(spec.start(), Activity::ClockEdgeRising(id.0));
        self.clocks.push(ClockState::new(spec));
        self.clock_sensitivity.push((Vec::new(), Vec::new()));
        id
    }

    /// Creates a named event for dynamic notification.
    pub fn add_event(&mut self, name: &str) -> EventId {
        let id = EventId(self.events.len());
        self.events.push(EventState {
            name: name.to_owned(),
            ..EventState::default()
        });
        id
    }

    /// Registers a process; attach sensitivities via the returned builder.
    pub fn register<F>(&mut self, name: &str, handler: F) -> ProcessBuilder<'_, W>
    where
        F: FnMut(&mut W, &mut Api) + 'static,
    {
        let id = ProcessId(self.handlers.len());
        self.handlers.push(Some(Box::new(handler)));
        self.suspensions.push(None);
        self.meta.push(ProcessMeta {
            name: name.to_owned(),
            ..ProcessMeta::default()
        });
        ProcessBuilder { kernel: self, id }
    }

    /// Notifies `event` to fire `delay` ticks from the current time
    /// (from outside any process; inside a process use [`Api::notify`]).
    pub fn notify(&mut self, event: EventId, delay: u64) {
        if delay == 0 {
            self.stats.delta_events += 1;
        }
        let at = self.time.saturating_add(delay);
        self.schedule(at, Activity::Event(event.0));
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Completed cycles of `clock` (counted at rising edges).
    pub fn cycles(&self, clock: ClockId) -> u64 {
        self.clocks[clock.0].cycles
    }

    /// Scheduler statistics accumulated so far.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to inspect or reconfigure
    /// modules between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the kernel and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// True once a process has called [`Api::stop`].
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Runs until simulated time would exceed `limit`, the schedule drains,
    /// or a process stops the kernel. On return [`Kernel::time`] is exactly
    /// `limit` unless stopped early.
    pub fn run_until(&mut self, limit: impl Into<SimTime>) {
        let limit = limit.into();
        while !self.stopped {
            match self.queue.peek() {
                Some(Reverse(s)) if s.time <= limit => self.dispatch_next(),
                _ => break,
            }
        }
        if !self.stopped && self.time < limit {
            self.time = limit;
        }
    }

    /// Runs for `ticks` beyond the current time.
    pub fn run_for(&mut self, ticks: u64) {
        let limit = self.time.saturating_add(ticks);
        self.run_until(limit);
    }

    /// Executes exactly one scheduled activity. Returns `false` when the
    /// schedule is empty or the kernel is stopped.
    pub fn step(&mut self) -> bool {
        if self.stopped || self.queue.is_empty() {
            return false;
        }
        self.dispatch_next();
        true
    }

    fn schedule(&mut self, time: SimTime, what: Activity) {
        debug_assert!(time >= self.time, "cannot schedule into the past");
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            time,
            seq: self.seq,
            what,
        }));
        self.stats.queue_hwm = self.stats.queue_hwm.max(self.queue.len() as u64);
    }

    fn dispatch_next(&mut self) {
        let Some(Reverse(item)) = self.queue.pop() else {
            return;
        };
        self.time = item.time;
        match item.what {
            Activity::ClockEdgeRising(c) => self.run_clock_edge(ClockId(c), Edge::Rising),
            Activity::ClockEdgeFalling(c) => self.run_clock_edge(ClockId(c), Edge::Falling),
            Activity::Event(e) => self.run_event(EventId(e)),
        }
    }

    fn run_clock_edge(&mut self, clock: ClockId, edge: Edge) {
        self.stats.edges += 1;
        let (half, next_activity) = {
            let st = &mut self.clocks[clock.0];
            if edge == Edge::Rising {
                st.cycles += 1;
            }
            let next = match edge {
                Edge::Rising => Activity::ClockEdgeFalling(clock.0),
                Edge::Falling => Activity::ClockEdgeRising(clock.0),
            };
            (st.spec.half_period(), next)
        };
        // Schedule the next edge before running processes so a process that
        // stops the kernel still leaves a coherent schedule behind.
        let next_time = self.time.saturating_add(half);
        self.schedule(next_time, next_activity);

        self.run_list.clear();
        {
            let lists = &self.clock_sensitivity[clock.0];
            let list = match edge {
                Edge::Rising => &lists.0,
                Edge::Falling => &lists.1,
            };
            self.run_list.extend_from_slice(list);
        }
        let cycle = self.clocks[clock.0].cycles;
        let cause = WakeCause::ClockEdge(clock, edge);
        let list = std::mem::take(&mut self.run_list);
        for &pid in &list {
            if self.suspensions[pid.0].is_some() {
                continue; // dynamically desensitised (next_trigger)
            }
            self.run_process(pid, cause, cycle);
            if self.stopped {
                break;
            }
        }
        self.run_list = list;
    }

    fn run_event(&mut self, event: EventId) {
        self.stats.events_fired += 1;
        self.events[event.0].fire_count += 1;
        self.run_list.clear();
        self.run_list
            .extend_from_slice(&self.events[event.0].waiters);
        // Processes dynamically waiting on this event (next_trigger) run
        // too, and their static sensitivity resumes.
        for (i, susp) in self.suspensions.iter_mut().enumerate() {
            if *susp == Some(event) {
                *susp = None;
                let pid = ProcessId(i);
                if !self.run_list.contains(&pid) {
                    self.run_list.push(pid);
                }
            }
        }
        let cause = WakeCause::Event(event);
        let list = std::mem::take(&mut self.run_list);
        for &pid in &list {
            self.run_process(pid, cause, 0);
            if self.stopped {
                break;
            }
        }
        self.run_list = list;
    }

    fn run_process(&mut self, pid: ProcessId, cause: WakeCause, cycle: u64) {
        let mut api = Api {
            time: self.time,
            cause,
            cycle,
            notifications: Vec::new(),
            cancellations: Vec::new(),
            next_trigger: None,
            stop: false,
        };
        // Take the handler out so it can borrow the kernel's world without
        // aliasing the handler table.
        let mut handler = self.handlers[pid.0]
            .take()
            .expect("process re-entered itself");
        handler(&mut self.world, &mut api);
        self.handlers[pid.0] = Some(handler);
        let meta = &mut self.meta[pid.0];
        meta.activations += 1;
        if meta.last_instant != Some(self.time) {
            meta.last_instant = Some(self.time);
            meta.occupied_instants += 1;
        }
        self.stats.activations += 1;

        for ev in api.cancellations {
            self.cancel_event(ev);
        }
        for (ev, delay) in api.notifications {
            if delay == 0 {
                self.stats.delta_events += 1;
            }
            let at = self.time.saturating_add(delay);
            self.schedule(at, Activity::Event(ev.0));
        }
        if let Some(ev) = api.next_trigger {
            self.suspensions[pid.0] = Some(ev);
        }
        if api.stop {
            self.stopped = true;
        }
    }

    fn cancel_event(&mut self, event: EventId) {
        let target = Activity::Event(event.0);
        let drained: Vec<_> = std::mem::take(&mut self.queue)
            .into_iter()
            .filter(|Reverse(s)| s.what != target)
            .collect();
        self.queue = drained.into();
    }

    /// Number of activations of a single process (test/diagnostic aid).
    pub fn activations(&self, pid: ProcessId) -> u64 {
        self.meta[pid.0].activations
    }

    /// Distinct simulation instants at which `pid` ran (its sim-time
    /// occupancy).
    pub fn occupied_instants(&self, pid: ProcessId) -> u64 {
        self.meta[pid.0].occupied_instants
    }

    /// Per-process profiling rows (name, activation count, sim-time
    /// occupancy), in registration order — the kernel-level feed for the
    /// observability layer's metrics export.
    pub fn process_profile(&self) -> Vec<ProcessProfile> {
        self.meta
            .iter()
            .map(|m| ProcessProfile {
                name: m.name.clone(),
                activations: m.activations,
                occupied_instants: m.occupied_instants,
            })
            .collect()
    }

    /// Number of times `event` has fired.
    pub fn event_fires(&self, event: EventId) -> u64 {
        self.events[event.0].fire_count
    }

    /// The name a process was registered with.
    pub fn process_name(&self, pid: ProcessId) -> &str {
        &self.meta[pid.0].name
    }

    /// The name an event was created with.
    pub fn event_name(&self, event: EventId) -> &str {
        &self.events[event.0].name
    }
}

impl<W: std::fmt::Debug> std::fmt::Debug for Kernel<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("time", &self.time)
            .field("world", &self.world)
            .field("clocks", &self.clocks.len())
            .field("processes", &self.handlers.len())
            .field("events", &self.events.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
        count: u64,
    }

    #[test]
    fn clock_edges_alternate_and_count_cycles() {
        let mut k = Kernel::new(W::default());
        let clk = k.add_clock(10);
        k.register("r", |w: &mut W, api| w.log.push((api.time().ticks(), "R")))
            .sensitive_to_clock(clk, Edge::Rising);
        k.register("f", |w: &mut W, api| w.log.push((api.time().ticks(), "F")))
            .sensitive_to_clock(clk, Edge::Falling);
        k.run_until(20);
        assert_eq!(
            k.world().log,
            vec![(0, "R"), (5, "F"), (10, "R"), (15, "F"), (20, "R")]
        );
        assert_eq!(k.cycles(clk), 3);
        assert_eq!(k.time(), SimTime::from_ticks(20));
    }

    #[test]
    fn processes_run_in_registration_order() {
        let mut k = Kernel::new(W::default());
        let clk = k.add_clock(2);
        k.register("a", |w: &mut W, _| w.log.push((0, "a")))
            .sensitive_to_clock(clk, Edge::Rising);
        k.register("b", |w: &mut W, _| w.log.push((0, "b")))
            .sensitive_to_clock(clk, Edge::Rising);
        k.run_until(0);
        assert_eq!(k.world().log, vec![(0, "a"), (0, "b")]);
    }

    #[test]
    fn event_notification_wakes_waiter() {
        let mut k = Kernel::new(W::default());
        let ev = k.add_event("go");
        k.register("w", |w: &mut W, api| {
            w.log.push((api.time().ticks(), "woke"))
        })
        .sensitive_to_event(ev);
        k.notify(ev, 7);
        k.run_until(100);
        assert_eq!(k.world().log, vec![(7, "woke")]);
        assert_eq!(k.event_fires(ev), 1);
    }

    #[test]
    fn delta_notification_runs_after_current_instant() {
        let mut k = Kernel::new(W::default());
        let clk = k.add_clock(10);
        let ev = k.add_event("delta");
        k.register("edge", move |w: &mut W, api| {
            w.log.push((api.time().ticks(), "edge"));
            if api.time() == SimTime::ZERO {
                api.notify(ev, 0);
            }
        })
        .sensitive_to_clock(clk, Edge::Rising);
        k.register("delta", |w: &mut W, api| {
            w.log.push((api.time().ticks(), "delta"))
        })
        .sensitive_to_event(ev);
        k.run_until(0);
        assert_eq!(k.world().log, vec![(0, "edge"), (0, "delta")]);
        // The zero-delay notification is counted as a delta event, and
        // it briefly coexists in the queue with the pending falling edge.
        assert_eq!(k.stats().delta_events, 1);
        assert_eq!(k.stats().queue_hwm, 2);
    }

    #[test]
    fn stop_halts_simulation() {
        let mut k = Kernel::new(W::default());
        let clk = k.add_clock(2);
        k.register("stopper", |w: &mut W, api| {
            w.count += 1;
            if w.count == 3 {
                api.stop();
            }
        })
        .sensitive_to_clock(clk, Edge::Rising);
        k.run_until(1_000);
        assert!(k.is_stopped());
        assert_eq!(k.world().count, 3);
        assert_eq!(k.time(), SimTime::from_ticks(4));
    }

    #[test]
    fn cancel_removes_pending_notification() {
        let mut k = Kernel::new(W::default());
        let ev = k.add_event("maybe");
        let clk = k.add_clock(10);
        k.register("canceller", move |_w: &mut W, api| {
            if api.time() == SimTime::ZERO {
                api.notify(ev, 3);
                api.cancel(ev); // cancels nothing yet (applied first)...
            } else if api.time().ticks() == 10 {
                api.cancel(ev); // ...but this one is too late, ev fired at 3
            }
        })
        .sensitive_to_clock(clk, Edge::Rising);
        k.register("w", |w: &mut W, api| {
            w.log.push((api.time().ticks(), "fired"))
        })
        .sensitive_to_event(ev);
        k.run_until(20);
        assert_eq!(k.world().log, vec![(3, "fired")]);
    }

    #[test]
    fn run_for_advances_relative() {
        let mut k = Kernel::new(W::default());
        let _ = k.add_clock(4);
        k.run_for(10);
        assert_eq!(k.time().ticks(), 10);
        k.run_for(5);
        assert_eq!(k.time().ticks(), 15);
    }

    #[test]
    fn stats_accumulate() {
        let mut k = Kernel::new(W::default());
        let clk = k.add_clock(2);
        k.register("n", |w: &mut W, _| w.count += 1)
            .sensitive_to_clock(clk, Edge::Rising);
        k.run_until(10);
        assert_eq!(k.stats().activations, 6);
        assert_eq!(k.stats().edges, 11);
        // A lone free-running clock keeps exactly one pending edge and
        // never requests a delta notification.
        assert_eq!(k.stats().queue_hwm, 1);
        assert_eq!(k.stats().delta_events, 0);
        // Each activation happened at a distinct instant.
        let profile = k.process_profile();
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].name, "n");
        assert_eq!(profile[0].activations, 6);
        assert_eq!(profile[0].occupied_instants, 6);
    }

    #[test]
    fn two_clocks_interleave_deterministically() {
        let mut k = Kernel::new(W::default());
        let fast = k.add_clock(4);
        let slow = k.add_clock(8);
        k.register("fast", |w: &mut W, api| {
            w.log.push((api.time().ticks(), "fast"))
        })
        .sensitive_to_clock(fast, Edge::Rising);
        k.register("slow", |w: &mut W, api| {
            w.log.push((api.time().ticks(), "slow"))
        })
        .sensitive_to_clock(slow, Edge::Rising);
        k.run_until(8);
        // Coincident edges dispatch in schedule order: at t=8 the slow
        // clock's edge was enqueued (from its t=4 falling edge) before the
        // fast clock's (from its t=6 falling edge), so slow runs first.
        assert_eq!(
            k.world().log,
            vec![
                (0, "fast"),
                (0, "slow"),
                (4, "fast"),
                (8, "slow"),
                (8, "fast")
            ]
        );
    }
}
