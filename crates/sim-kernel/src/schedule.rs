//! Cycle-keyed event schedules for scripted stimulus.
//!
//! The fault-injection layer needs to fire events (card tear, brownout)
//! at predetermined cycles of a run, identically at every abstraction
//! level. [`CycleSchedule`] is the deterministic primitive for that: a
//! sorted list of `(cycle, payload)` entries with a monotone cursor.
//! Unlike the dynamic [`Kernel`](crate::Kernel) event queue it is plain
//! data — clonable, comparable, and trivially replayable — which is
//! what differential tests across model layers require.

/// A sorted, replayable schedule of cycle-keyed events.
///
/// Entries fire in `(cycle, insertion order)` order; [`pop_due`]
/// consumes everything scheduled at or before the polled cycle.
///
/// [`pop_due`]: CycleSchedule::pop_due
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleSchedule<T> {
    entries: Vec<(u64, T)>,
    cursor: usize,
}

impl<T> CycleSchedule<T> {
    /// An empty schedule.
    pub fn new() -> Self {
        CycleSchedule {
            entries: Vec::new(),
            cursor: 0,
        }
    }

    /// Builds a schedule from arbitrary-order entries; the sort is
    /// stable, so same-cycle events keep their insertion order.
    pub fn from_entries(mut entries: Vec<(u64, T)>) -> Self {
        entries.sort_by_key(|&(cycle, _)| cycle);
        CycleSchedule { entries, cursor: 0 }
    }

    /// Adds an event at `cycle`. Events may be added after popping has
    /// begun as long as `cycle` has not been passed yet.
    pub fn at(&mut self, cycle: u64, payload: T) {
        debug_assert!(
            self.next_cycle().is_none() || cycle >= self.entries[self.cursor].0 || self.cursor == 0,
            "scheduling into the past"
        );
        let pos = self.entries[self.cursor..]
            .iter()
            .position(|&(c, _)| c > cycle)
            .map(|p| self.cursor + p)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, (cycle, payload));
    }

    /// The cycle of the next unfired event.
    pub fn next_cycle(&self) -> Option<u64> {
        self.entries.get(self.cursor).map(|&(c, _)| c)
    }

    /// True when every event has fired.
    pub fn is_drained(&self) -> bool {
        self.cursor >= self.entries.len()
    }

    /// Fires and returns every event scheduled at or before `cycle`.
    pub fn pop_due(&mut self, cycle: u64) -> Vec<&T> {
        let start = self.cursor;
        while self.cursor < self.entries.len() && self.entries[self.cursor].0 <= cycle {
            self.cursor += 1;
        }
        self.entries[start..self.cursor]
            .iter()
            .map(|(_, t)| t)
            .collect()
    }

    /// Rewinds the cursor so the schedule replays from the start.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// All entries, fired or not, in firing order.
    pub fn entries(&self) -> &[(u64, T)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_cycle_order() {
        let mut s = CycleSchedule::from_entries(vec![(30, "c"), (10, "a"), (20, "b")]);
        assert_eq!(s.next_cycle(), Some(10));
        assert_eq!(s.pop_due(5), Vec::<&&str>::new());
        assert_eq!(s.pop_due(20), vec![&"a", &"b"]);
        assert!(!s.is_drained());
        assert_eq!(s.pop_due(100), vec![&"c"]);
        assert!(s.is_drained());
    }

    #[test]
    fn same_cycle_keeps_insertion_order() {
        let mut s = CycleSchedule::new();
        s.at(7, 1);
        s.at(7, 2);
        s.at(3, 0);
        assert_eq!(s.pop_due(7), vec![&0, &1, &2]);
    }

    #[test]
    fn rewind_replays() {
        let mut s = CycleSchedule::from_entries(vec![(1, 'x')]);
        assert_eq!(s.pop_due(1), vec![&'x']);
        s.rewind();
        assert_eq!(s.pop_due(1), vec![&'x']);
    }
}
