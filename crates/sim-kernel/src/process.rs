//! Process identities and sensitivity bookkeeping.

use crate::clock::{ClockId, Edge};
use crate::event::EventId;
use std::fmt;

/// Identifies a process registered with [`Kernel::register`].
///
/// [`Kernel::register`]: crate::Kernel::register
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// Returns the kernel-internal index of this process.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// What woke a process up, passed to handlers through [`Api::cause`].
///
/// [`Api::cause`]: crate::Api::cause
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeCause {
    /// A clock edge the process is statically sensitive to.
    ClockEdge(ClockId, Edge),
    /// An event the process is statically sensitive to fired.
    Event(EventId),
}

/// Per-process kernel bookkeeping (the closure itself is stored separately
/// so this struct stays inspectable).
#[derive(Debug, Clone, Default)]
pub(crate) struct ProcessMeta {
    pub name: String,
    pub activations: u64,
    /// Distinct simulation instants at which the process ran — its
    /// sim-time occupancy (several same-instant activations count once).
    pub occupied_instants: u64,
    pub last_instant: Option<crate::time::SimTime>,
}

/// A profiling row for one process, as reported by
/// [`Kernel::process_profile`](crate::Kernel::process_profile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessProfile {
    /// The name the process was registered with.
    pub name: String,
    /// Total activations.
    pub activations: u64,
    /// Distinct simulation instants at which the process ran.
    pub occupied_instants: u64,
}
