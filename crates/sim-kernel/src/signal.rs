//! Two-phase signals with transition accounting.
//!
//! Hardware signals in this kernel follow SystemC semantics: writes go to a
//! *next* value and become visible when [`Wire::update`]/[`Vector::update`]
//! runs at a delta boundary. Every update classifies and counts the bit
//! transitions it performs — these counters are the raw material for the
//! gate-level power estimator and the layer-1 energy model.
//!
//! Calling `update` more than once between reads is allowed and is how the
//! RTL model represents combinational settling: intermediate values applied
//! and then overwritten within the same cycle register as extra (glitch)
//! transitions, exactly the activity a gate-level tool sees and a
//! cycle-boundary TLM model cannot.

/// The direction of a single-bit transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transition {
    /// Value unchanged.
    None,
    /// 0 → 1.
    Rise,
    /// 1 → 0.
    Fall,
}

/// A one-bit two-phase signal.
///
/// ```
/// use hierbus_sim::{Wire, Transition};
/// let mut w = Wire::new(false);
/// w.set(true);
/// assert_eq!(w.value(), false); // not visible until update
/// assert_eq!(w.update(), Transition::Rise);
/// assert_eq!(w.value(), true);
/// assert_eq!(w.rises(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire {
    cur: bool,
    next: bool,
    rises: u64,
    falls: u64,
}

impl Wire {
    /// Creates a wire with the given initial (settled) value.
    pub fn new(initial: bool) -> Self {
        Wire {
            cur: initial,
            next: initial,
            rises: 0,
            falls: 0,
        }
    }

    /// Schedules `v` to become visible at the next [`update`](Wire::update).
    #[inline]
    pub fn set(&mut self, v: bool) {
        self.next = v;
    }

    /// The settled value.
    #[inline]
    pub fn value(&self) -> bool {
        self.cur
    }

    /// True if an update would change the settled value.
    #[inline]
    pub fn pending(&self) -> bool {
        self.cur != self.next
    }

    /// Applies the scheduled value and returns the transition performed.
    #[inline]
    pub fn update(&mut self) -> Transition {
        match (self.cur, self.next) {
            (false, true) => {
                self.cur = true;
                self.rises += 1;
                Transition::Rise
            }
            (true, false) => {
                self.cur = false;
                self.falls += 1;
                Transition::Fall
            }
            _ => Transition::None,
        }
    }

    /// Cumulative 0→1 transitions.
    pub fn rises(&self) -> u64 {
        self.rises
    }

    /// Cumulative 1→0 transitions.
    pub fn falls(&self) -> u64 {
        self.falls
    }

    /// Cumulative transitions of both polarities.
    pub fn toggles(&self) -> u64 {
        self.rises + self.falls
    }

    /// Clears the transition counters (the value is kept).
    pub fn reset_counters(&mut self) {
        self.rises = 0;
        self.falls = 0;
    }
}

impl Default for Wire {
    fn default() -> Self {
        Wire::new(false)
    }
}

/// The per-bit outcome of one [`Vector::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VectorUpdate {
    /// Bit mask of 0→1 transitions.
    pub rises: u64,
    /// Bit mask of 1→0 transitions.
    pub falls: u64,
}

impl VectorUpdate {
    /// Number of bits that toggled.
    pub fn toggles(&self) -> u32 {
        (self.rises | self.falls).count_ones()
    }

    /// True if no bit changed.
    pub fn is_quiet(&self) -> bool {
        self.rises == 0 && self.falls == 0
    }
}

/// A multi-bit two-phase signal of width 1..=64 with per-bit transition
/// counters.
///
/// ```
/// use hierbus_sim::Vector;
/// let mut addr = Vector::new(36);
/// addr.set(0xF000_0000);
/// let upd = addr.update();
/// assert_eq!(upd.toggles(), 4);
/// assert_eq!(addr.value(), 0xF000_0000);
/// assert_eq!(addr.bit_toggles(28), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vector {
    width: u32,
    mask: u64,
    cur: u64,
    next: u64,
    rises: u64,
    falls: u64,
    per_bit: Vec<u64>,
}

impl Vector {
    /// Creates a zero-initialised vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn new(width: u32) -> Self {
        assert!(
            (1..=64).contains(&width),
            "vector width {width} out of 1..=64"
        );
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        Vector {
            width,
            mask,
            cur: 0,
            next: 0,
            rises: 0,
            falls: 0,
            per_bit: vec![0; width as usize],
        }
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Schedules `v` (masked to the width) for the next update.
    #[inline]
    pub fn set(&mut self, v: u64) {
        self.next = v & self.mask;
    }

    /// The settled value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.cur
    }

    /// The value scheduled for the next update.
    #[inline]
    pub fn next_value(&self) -> u64 {
        self.next
    }

    /// True if an update would change the settled value.
    #[inline]
    pub fn pending(&self) -> bool {
        self.cur != self.next
    }

    /// Hamming distance between the settled and scheduled values — the
    /// toggles the next update would perform.
    #[inline]
    pub fn hamming_to_next(&self) -> u32 {
        (self.cur ^ self.next).count_ones()
    }

    /// Applies the scheduled value, accumulating per-bit counters, and
    /// returns masks of the transitions performed.
    pub fn update(&mut self) -> VectorUpdate {
        let changed = self.cur ^ self.next;
        if changed == 0 {
            return VectorUpdate::default();
        }
        let rises = changed & self.next;
        let falls = changed & self.cur;
        self.rises += rises.count_ones() as u64;
        self.falls += falls.count_ones() as u64;
        let mut bits = changed;
        while bits != 0 {
            let b = bits.trailing_zeros();
            self.per_bit[b as usize] += 1;
            bits &= bits - 1;
        }
        self.cur = self.next;
        VectorUpdate { rises, falls }
    }

    /// Cumulative 0→1 transitions across all bits.
    pub fn rises(&self) -> u64 {
        self.rises
    }

    /// Cumulative 1→0 transitions across all bits.
    pub fn falls(&self) -> u64 {
        self.falls
    }

    /// Cumulative transitions across all bits.
    pub fn toggles(&self) -> u64 {
        self.rises + self.falls
    }

    /// Cumulative transitions of a single bit.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width`.
    pub fn bit_toggles(&self, bit: u32) -> u64 {
        self.per_bit[bit as usize]
    }

    /// Per-bit cumulative transition counts, LSB first.
    pub fn per_bit_toggles(&self) -> &[u64] {
        &self.per_bit
    }

    /// Clears all transition counters (the value is kept).
    pub fn reset_counters(&mut self) {
        self.rises = 0;
        self.falls = 0;
        self.per_bit.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_transitions_and_counters() {
        let mut w = Wire::new(false);
        assert_eq!(w.update(), Transition::None);
        w.set(true);
        assert!(w.pending());
        assert_eq!(w.update(), Transition::Rise);
        assert_eq!(w.update(), Transition::None);
        w.set(false);
        assert_eq!(w.update(), Transition::Fall);
        assert_eq!(w.rises(), 1);
        assert_eq!(w.falls(), 1);
        assert_eq!(w.toggles(), 2);
        w.reset_counters();
        assert_eq!(w.toggles(), 0);
        assert!(!w.value());
    }

    #[test]
    fn vector_masks_to_width() {
        let mut v = Vector::new(8);
        v.set(0x1FF);
        v.update();
        assert_eq!(v.value(), 0xFF);
    }

    #[test]
    fn vector_update_classifies_rises_and_falls() {
        let mut v = Vector::new(4);
        v.set(0b1010);
        let u1 = v.update();
        assert_eq!(u1.rises, 0b1010);
        assert_eq!(u1.falls, 0);
        v.set(0b0110);
        let u2 = v.update();
        assert_eq!(u2.rises, 0b0100);
        assert_eq!(u2.falls, 0b1000);
        assert_eq!(u2.toggles(), 2);
        assert_eq!(v.rises(), 3);
        assert_eq!(v.falls(), 1);
    }

    #[test]
    fn vector_per_bit_counters() {
        let mut v = Vector::new(3);
        for _ in 0..5 {
            v.set(v.value() ^ 0b001);
            v.update();
        }
        assert_eq!(v.bit_toggles(0), 5);
        assert_eq!(v.bit_toggles(1), 0);
        assert_eq!(v.per_bit_toggles(), &[5, 0, 0]);
    }

    #[test]
    fn vector_hamming_preview_matches_update() {
        let mut v = Vector::new(16);
        v.set(0xABCD);
        v.update();
        v.set(0xA0C0);
        let predicted = v.hamming_to_next();
        let actual = v.update().toggles();
        assert_eq!(predicted, actual);
    }

    #[test]
    fn glitch_double_update_counts_twice() {
        // Settling through an intermediate value costs extra transitions —
        // the mechanism behind the gate-level vs layer-1 energy gap.
        let mut clean = Vector::new(8);
        clean.set(0x0F);
        clean.update();

        let mut glitchy = Vector::new(8);
        glitchy.set(0xFF); // intermediate hazard value
        glitchy.update();
        glitchy.set(0x0F); // settles to the same final value
        glitchy.update();

        assert_eq!(clean.value(), glitchy.value());
        assert!(glitchy.toggles() > clean.toggles());
        assert_eq!(glitchy.toggles(), 12);
    }

    #[test]
    fn width_64_mask_is_full() {
        let mut v = Vector::new(64);
        v.set(u64::MAX);
        assert_eq!(v.update().toggles(), 64);
    }

    #[test]
    #[should_panic(expected = "out of 1..=64")]
    fn zero_width_rejected() {
        let _ = Vector::new(0);
    }
}
