//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in kernel ticks.
///
/// The kernel is unit-agnostic; the bus models adopt the convention of one
/// tick per nanosecond, so a 10-tick clock period models a 100 MHz system
/// clock. `SimTime` is a transparent `u64` newtype so arithmetic stays cheap
/// while keeping time values from mixing with cycle counts or energies.
///
/// ```
/// use hierbus_sim::SimTime;
/// let t = SimTime::ZERO + 25;
/// assert_eq!(t.ticks(), 25);
/// assert!(t < SimTime::from_ticks(30));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick delta.
    #[inline]
    pub const fn saturating_add(self, delta: u64) -> Self {
        SimTime(self.0.saturating_add(delta))
    }

    /// Ticks elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[inline]
    pub const fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(ticks: u64) -> Self {
        SimTime(ticks)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_ticks(10);
        let b = a + 5;
        assert_eq!(b.ticks(), 15);
        assert_eq!(b - a, 5);
        assert!(a < b);
        assert_eq!(b.since(a), 5);
        assert_eq!(a.since(b), 0);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX.saturating_add(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO.since(SimTime::MAX), 0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "42t");
    }
}
