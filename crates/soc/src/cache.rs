//! A direct-mapped instruction cache with burst line fills.
//!
//! The target core (Fig. 1 of the paper) carries instruction and data
//! caches; their interaction with the bus is a classic exploration axis
//! (the paper's related work cites Givargis/Vahid/Henkel on exactly
//! that). This module provides the instruction side: a direct-mapped
//! cache of 4-word (16-byte) lines. A hit costs no bus traffic; a miss
//! triggers a 4-beat burst fetch of the aligned line — the cache-line
//! fill traffic the burst support of the protocol exists for.
//!
//! Simplification: code is read-only here, so there is no invalidation
//! or coherence; self-modifying code is unsupported (as on most cards,
//! where code executes from ROM/FLASH).

use hierbus_ec::Address;

/// Words per cache line (one 4-beat burst).
pub const LINE_WORDS: usize = 4;
/// Bytes per cache line.
pub const LINE_BYTES: u32 = (LINE_WORDS as u32) * 4;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    words: [u32; LINE_WORDS],
}

/// The instruction cache.
#[derive(Debug, Clone)]
pub struct ICache {
    lines: Vec<Option<Line>>,
    hits: u64,
    misses: u64,
}

impl ICache {
    /// Creates a cache with `n_lines` lines (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n_lines` is zero or not a power of two.
    pub fn new(n_lines: usize) -> Self {
        assert!(
            n_lines.is_power_of_two(),
            "cache must have a power-of-two line count, got {n_lines}"
        );
        ICache {
            lines: vec![None; n_lines],
            hits: 0,
            misses: 0,
        }
    }

    /// Number of lines.
    pub fn n_lines(&self) -> usize {
        self.lines.len()
    }

    /// Hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in 0..=1 (NaN before any access).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses) as f64
    }

    fn index_and_tag(&self, pc: u32) -> (usize, u32) {
        let line_addr = pc / LINE_BYTES;
        let index = (line_addr as usize) & (self.lines.len() - 1);
        (index, line_addr)
    }

    /// The aligned base address of the line containing `pc`.
    pub fn line_base(pc: u32) -> Address {
        Address::new((pc & !(LINE_BYTES - 1)) as u64)
    }

    /// Looks `pc` up; on a hit returns the instruction word and counts a
    /// hit, on a miss counts a miss and returns `None` (the core then
    /// fetches the line over the bus and [`fill`](Self::fill)s it).
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        let (index, tag) = self.index_and_tag(pc);
        match &self.lines[index] {
            Some(line) if line.tag == tag => {
                self.hits += 1;
                Some(line.words[((pc / 4) as usize) % LINE_WORDS])
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs a fetched line and returns the requested word.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not one full line.
    pub fn fill(&mut self, pc: u32, words: &[u32]) -> u32 {
        assert_eq!(words.len(), LINE_WORDS, "a fill is one full line");
        let (index, tag) = self.index_and_tag(pc);
        let mut line = Line {
            tag,
            words: [0; LINE_WORDS],
        };
        line.words.copy_from_slice(words);
        self.lines[index] = Some(line);
        line.words[((pc / 4) as usize) % LINE_WORDS]
    }

    /// Drops all lines (e.g. after loading new code in a test harness).
    pub fn invalidate_all(&mut self) {
        self.lines.iter_mut().for_each(|l| *l = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = ICache::new(4);
        assert_eq!(c.lookup(0x100), None);
        let fetched = [10, 11, 12, 13];
        assert_eq!(c.fill(0x104, &fetched), 11);
        assert_eq!(c.lookup(0x100), Some(10));
        assert_eq!(c.lookup(0x108), Some(12));
        assert_eq!(c.lookup(0x10C), Some(13));
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = ICache::new(2); // 2 lines × 16 B: 0x100 and 0x120 collide
        c.lookup(0x100);
        c.fill(0x100, &[1, 2, 3, 4]);
        c.lookup(0x120);
        c.fill(0x120, &[5, 6, 7, 8]);
        assert_eq!(c.lookup(0x100), None, "evicted by the colliding line");
        assert_eq!(c.lookup(0x120), Some(5));
    }

    #[test]
    fn line_base_is_16_byte_aligned() {
        assert_eq!(ICache::line_base(0x10F).raw(), 0x100);
        assert_eq!(ICache::line_base(0x110).raw(), 0x110);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = ICache::new(2);
        c.lookup(0);
        c.fill(0, &[9, 9, 9, 9]);
        c.invalidate_all();
        assert_eq!(c.lookup(0), None);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut c = ICache::new(16);
        // A loop over 8 instructions: first pass misses, then all hits.
        for _ in 0..10 {
            for pc in (0x200..0x220).step_by(4) {
                if c.lookup(pc).is_none() {
                    let base = ICache::line_base(pc).raw() as u32;
                    let words: Vec<u32> = (0..4).map(|k| base + k).collect();
                    c.fill(pc, &words);
                }
            }
        }
        assert!(c.hit_rate() > 0.95, "hit rate {}", c.hit_rate());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = ICache::new(3);
    }
}
