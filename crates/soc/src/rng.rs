//! The "true" random number generator.
//!
//! Real silicon harvests ring-oscillator jitter; a reproduction must be
//! deterministic, so this peripheral is a seeded xorshift32 presented
//! through the same register interface a TRNG block would have. The
//! substitution preserves everything the experiments need: a data
//! register whose reads produce fresh, well-mixed words and the bus
//! traffic pattern of polling crypto software.
//!
//! Register map (word offsets): 0x0 DATA (R), 0x4 STATUS (R, always
//! ready), 0x8 SEED (W).

use hierbus_core::{SlaveReply, TlmSlave};
use hierbus_ec::{AccessRights, Address, AddressRange, SlaveConfig, WaitProfile};

/// The RNG peripheral.
#[derive(Debug, Clone)]
pub struct TrueRng {
    config: SlaveConfig,
    state: u32,
    words_drawn: u64,
}

impl TrueRng {
    /// Creates the RNG at the given window with a default seed.
    ///
    /// # Panics
    ///
    /// Panics if the window is smaller than 12 bytes.
    pub fn new(range: AddressRange) -> Self {
        assert!(range.size() >= 12, "rng window must hold 3 registers");
        TrueRng {
            config: SlaveConfig::new(range, WaitProfile::new(0, 1, 0), AccessRights::RW),
            state: 0x1234_5678,
            words_drawn: 0,
        }
    }

    /// Number of words read through the data register.
    pub fn words_drawn(&self) -> u64 {
        self.words_drawn
    }

    fn next(&mut self) -> u32 {
        // xorshift32 (Marsaglia); zero state is repaired to a constant.
        let mut x = if self.state == 0 {
            0x0BAD_5EED
        } else {
            self.state
        };
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }
}

impl TlmSlave for TrueRng {
    fn config(&self) -> SlaveConfig {
        self.config
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn read_word(&mut self, addr: Address) -> SlaveReply<u32> {
        match self.config.range.offset_of(addr).map(|o| o & !0x3) {
            Some(0x0) => {
                self.words_drawn += 1;
                SlaveReply::Ok(self.next())
            }
            Some(0x4) => SlaveReply::Ok(1), // always ready
            Some(0x8) => SlaveReply::Ok(0), // seed is write-only
            _ => SlaveReply::Error,
        }
    }

    fn write_word(&mut self, addr: Address, data: u32, _ben: u8) -> SlaveReply<()> {
        match self.config.range.offset_of(addr).map(|o| o & !0x3) {
            Some(0x8) => {
                self.state = data;
                SlaveReply::Ok(())
            }
            Some(0x0) | Some(0x4) => SlaveReply::Ok(()),
            _ => SlaveReply::Error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TrueRng {
        TrueRng::new(AddressRange::new(Address::new(0xB000), 0x100))
    }

    #[test]
    fn draws_differ_and_are_deterministic() {
        let mut a = rng();
        let mut b = rng();
        let x1 = a.read_word(Address::new(0xB000));
        let x2 = a.read_word(Address::new(0xB000));
        assert_ne!(x1, x2);
        assert_eq!(b.read_word(Address::new(0xB000)), x1);
        assert_eq!(a.words_drawn(), 2);
    }

    #[test]
    fn seeding_changes_the_stream() {
        let mut a = rng();
        a.write_word(Address::new(0xB008), 99, 0b1111);
        let mut b = rng();
        assert_ne!(
            a.read_word(Address::new(0xB000)),
            b.read_word(Address::new(0xB000))
        );
    }

    #[test]
    fn zero_seed_is_repaired() {
        let mut a = rng();
        a.write_word(Address::new(0xB008), 0, 0b1111);
        let SlaveReply::Ok(w) = a.read_word(Address::new(0xB000)) else {
            panic!("data must read");
        };
        assert_ne!(w, 0);
    }

    #[test]
    fn status_is_always_ready() {
        let mut a = rng();
        assert_eq!(a.read_word(Address::new(0xB004)), SlaveReply::Ok(1));
    }

    #[test]
    fn spread_of_draws_is_reasonable() {
        let mut a = rng();
        let mut ones = 0u32;
        for _ in 0..256 {
            if let SlaveReply::Ok(w) = a.read_word(Address::new(0xB000)) {
                ones += w.count_ones();
            }
        }
        // 256 words × 32 bits: expect roughly half set.
        assert!((3000..5200).contains(&ones), "bit balance {ones}");
    }
}
