//! The assembled smart-card platform (Fig. 1 of the paper).

use crate::crypto::CryptoAccel;
use crate::mem::{Eeprom, Flash, Rom, ScratchpadRam};
use crate::rng::TrueRng;
use crate::timer::DualTimer;
use crate::uart::Uart;
use hierbus_core::{Tlm1Bus, Tlm2Bus, TlmSlave};
use hierbus_ec::{Address, AddressRange, SlaveId};

/// The platform's fixed address map and slave identities.
///
/// Slave ids follow construction order in
/// [`Platform::into_tlm1`]/[`into_tlm2`](Platform::into_tlm2).
#[derive(Debug, Clone, Copy)]
pub struct PlatformMap;

impl PlatformMap {
    /// 256 kB program ROM.
    pub const ROM_BASE: u32 = 0x0000_0000;
    /// ROM size in bytes.
    pub const ROM_SIZE: u64 = 0x4_0000;
    /// 32 kB EEPROM (data & program).
    pub const EEPROM_BASE: u32 = 0x0010_0000;
    /// EEPROM size in bytes.
    pub const EEPROM_SIZE: u64 = 0x8000;
    /// 64 kB FLASH program memory.
    pub const FLASH_BASE: u32 = 0x0020_0000;
    /// FLASH size in bytes.
    pub const FLASH_SIZE: u64 = 0x1_0000;
    /// 8 kB scratchpad RAM.
    pub const RAM_BASE: u32 = 0x0030_0000;
    /// RAM size in bytes.
    pub const RAM_SIZE: u64 = 0x2000;
    /// UART register window.
    pub const UART_BASE: u32 = 0x0040_0000;
    /// Dual-timer register window.
    pub const TIMER_BASE: u32 = 0x0040_1000;
    /// RNG register window.
    pub const RNG_BASE: u32 = 0x0040_2000;
    /// Crypto coprocessor register window.
    pub const CRYPTO_BASE: u32 = 0x0040_3000;
    /// Size of each peripheral register window.
    pub const PERIPH_SIZE: u64 = 0x100;

    /// Slave id of the ROM on the assembled bus.
    pub const ROM: SlaveId = SlaveId(0);
    /// Slave id of the EEPROM.
    pub const EEPROM: SlaveId = SlaveId(1);
    /// Slave id of the FLASH.
    pub const FLASH: SlaveId = SlaveId(2);
    /// Slave id of the scratchpad RAM.
    pub const RAM: SlaveId = SlaveId(3);
    /// Slave id of the UART.
    pub const UART: SlaveId = SlaveId(4);
    /// Slave id of the timer block.
    pub const TIMER: SlaveId = SlaveId(5);
    /// Slave id of the RNG.
    pub const RNG: SlaveId = SlaveId(6);
    /// Slave id of the crypto coprocessor.
    pub const CRYPTO: SlaveId = SlaveId(7);

    /// The reset program counter (start of ROM).
    pub const RESET_PC: u32 = Self::ROM_BASE;
}

fn window(base: u32, size: u64) -> AddressRange {
    AddressRange::new(Address::new(base as u64), size)
}

/// The platform under construction: configure and pre-load peripherals,
/// then convert into a bus.
#[derive(Debug)]
pub struct Platform {
    /// Program ROM.
    pub rom: Rom,
    /// EEPROM.
    pub eeprom: Eeprom,
    /// FLASH.
    pub flash: Flash,
    /// Scratchpad RAM.
    pub ram: ScratchpadRam,
    /// Serial interface.
    pub uart: Uart,
    /// Timer block.
    pub timer: DualTimer,
    /// Random number generator.
    pub rng: TrueRng,
    /// Crypto coprocessor.
    pub crypto: CryptoAccel,
}

impl Platform {
    /// Creates the platform with empty memories.
    pub fn new() -> Self {
        Platform {
            rom: Rom::new(window(PlatformMap::ROM_BASE, PlatformMap::ROM_SIZE)),
            eeprom: Eeprom::new(window(PlatformMap::EEPROM_BASE, PlatformMap::EEPROM_SIZE)),
            flash: Flash::new(window(PlatformMap::FLASH_BASE, PlatformMap::FLASH_SIZE)),
            ram: ScratchpadRam::new(window(PlatformMap::RAM_BASE, PlatformMap::RAM_SIZE)),
            uart: Uart::new(window(PlatformMap::UART_BASE, PlatformMap::PERIPH_SIZE)),
            timer: DualTimer::new(window(PlatformMap::TIMER_BASE, PlatformMap::PERIPH_SIZE)),
            rng: TrueRng::new(window(PlatformMap::RNG_BASE, PlatformMap::PERIPH_SIZE)),
            crypto: CryptoAccel::new(window(PlatformMap::CRYPTO_BASE, PlatformMap::PERIPH_SIZE)),
        }
    }

    /// Loads machine words into ROM at the reset vector.
    pub fn load_boot_program(&mut self, words: &[u32]) -> &mut Self {
        self.rom
            .load(Address::new(PlatformMap::RESET_PC as u64), words);
        self
    }

    fn slaves(self) -> Vec<Box<dyn TlmSlave>> {
        vec![
            Box::new(self.rom),
            Box::new(self.eeprom),
            Box::new(self.flash),
            Box::new(self.ram),
            Box::new(self.uart),
            Box::new(self.timer),
            Box::new(self.rng),
            Box::new(self.crypto),
        ]
    }

    /// Assembles the platform on a cycle-accurate layer-1 bus.
    pub fn into_tlm1(self) -> Tlm1Bus {
        Tlm1Bus::new(self.slaves())
    }

    /// Assembles the platform on a timed layer-2 bus.
    pub fn into_tlm2(self) -> Tlm2Bus {
        Tlm2Bus::new(self.slaves())
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSystem;
    use crate::isa::Reg;
    use crate::program::Program;
    #[test]
    fn windows_do_not_overlap() {
        // Constructing either bus validates the address map.
        let _ = Platform::new().into_tlm1();
        let _ = Platform::new().into_tlm2();
    }

    #[test]
    fn sum_loop_runs_on_layer1() {
        // Sum 1..=10 into $t1, store to RAM, halt.
        let mut p = Program::new(PlatformMap::RESET_PC);
        p.li(Reg::T0, 10);
        p.li(Reg::T1, 0);
        p.label("loop");
        p.addu(Reg::T1, Reg::T1, Reg::T0);
        p.addiu(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, "loop");
        p.li(Reg::T2, PlatformMap::RAM_BASE);
        p.sw(Reg::T1, Reg::T2, 0x20);
        p.halt();
        let words = p.assemble().unwrap();

        let mut platform = Platform::new();
        platform.load_boot_program(&words);
        let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);
        let report = sys.run_until_halt(100_000, |_| {});
        assert!(report.fault.is_none());
        assert_eq!(sys.core().reg(Reg::T1), 55);

        let ram = sys.bus_mut().slave_mut(PlatformMap::RAM);
        assert_eq!(
            ram.read_word(hierbus_ec::Address::new(
                PlatformMap::RAM_BASE as u64 + 0x20
            )),
            hierbus_core::SlaveReply::Ok(55)
        );
    }

    #[test]
    fn same_program_same_results_on_layer2() {
        let mut p = Program::new(PlatformMap::RESET_PC);
        p.li(Reg::T0, 7);
        p.li(Reg::T1, 6);
        p.mul(Reg::T2, Reg::T0, Reg::T1);
        p.halt();
        let words = p.assemble().unwrap();

        let run = |tlm1: bool| {
            let mut platform = Platform::new();
            platform.load_boot_program(&words);
            if tlm1 {
                let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);
                sys.run_until_halt(100_000, |_| {});
                sys.core().reg(Reg::T2)
            } else {
                let mut sys = CpuSystem::new(platform.into_tlm2(), PlatformMap::RESET_PC);
                sys.run_until_halt(100_000, |_| {});
                sys.core().reg(Reg::T2)
            }
        };
        assert_eq!(run(true), 42);
        assert_eq!(run(false), 42);
    }

    #[test]
    fn rom_write_faults_the_core() {
        let mut p = Program::new(PlatformMap::RESET_PC);
        p.li(Reg::T0, PlatformMap::ROM_BASE + 0x100);
        p.sw(Reg::ZERO, Reg::T0, 0);
        p.halt();
        let words = p.assemble().unwrap();
        let mut platform = Platform::new();
        platform.load_boot_program(&words);
        let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);
        let report = sys.run_until_halt(100_000, |_| {});
        assert_eq!(report.fault, Some(crate::cpu::CpuFault::BusError));
    }
}
