//! The instruction-set simulator: a non-pipelined MIPS32-subset core
//! whose every fetch, load and store travels the TLM bus.
//!
//! Modeling choices (simplifications versus 4Ksc silicon, chosen to keep
//! the *bus* — the object of study — fully exercised):
//!
//! * by default every instruction fetch is a bus transaction (the
//!   configuration a smart card boots in); an optional direct-mapped
//!   instruction cache ([`MipsCore::with_icache`]) turns fetch misses
//!   into 4-beat burst line fills instead;
//! * no data cache, branch delay slots or pipeline: one instruction
//!   completes before the next fetch issues;
//! * `BREAK` halts the core (the ISS's exit convention).

use crate::isa::{Instr, Reg};
use hierbus_core::{CycleBus, PollStatus};
use hierbus_ec::{Address, BurstLen, DataWidth, Transaction, TxnId};
use std::fmt;

/// Why the core stopped abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuFault {
    /// Fetched word is outside the implemented instruction subset.
    ReservedInstruction(u32),
    /// A bus transaction terminated with an error.
    BusError,
}

impl fmt::Display for CpuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuFault::ReservedInstruction(w) => {
                write!(f, "reserved instruction {w:#010x}")
            }
            CpuFault::BusError => f.write_str("bus error"),
        }
    }
}

/// A pending load's writeback shape.
#[derive(Debug, Clone, Copy)]
enum MemOp {
    LoadSigned8(Reg),
    LoadZero8(Reg),
    LoadSigned16(Reg),
    LoadZero16(Reg),
    Load32(Reg),
    Store,
}

#[derive(Debug, Clone, Copy)]
enum CpuState {
    NeedFetch,
    /// The instruction is already in hand (cache hit); it executes at
    /// the next rising edge, pacing hits at one instruction per cycle.
    FetchReady(u32),
    FetchWait(TxnId),
    MemWait(TxnId, MemOp),
}

/// Architectural and micro-architectural state of the core.
#[derive(Debug)]
pub struct MipsCore {
    regs: [u32; 32],
    pc: u32,
    next_id: TxnId,
    state: CpuState,
    retired: u64,
    halted: bool,
    fault: Option<CpuFault>,
    icache: Option<crate::cache::ICache>,
}

impl MipsCore {
    /// Creates a core that starts fetching at `reset_pc`.
    ///
    /// # Panics
    ///
    /// Panics if `reset_pc` is not word aligned.
    pub fn new(reset_pc: u32) -> Self {
        assert!(
            reset_pc.is_multiple_of(4),
            "reset pc {reset_pc:#x} must be word aligned"
        );
        MipsCore {
            regs: [0; 32],
            pc: reset_pc,
            next_id: TxnId(0),
            state: CpuState::NeedFetch,
            retired: 0,
            halted: false,
            fault: None,
            icache: None,
        }
    }

    /// Creates a core with a direct-mapped instruction cache of
    /// `cache_lines` 4-word lines; misses fill via 4-beat burst fetches.
    ///
    /// # Panics
    ///
    /// Panics if `reset_pc` is misaligned or `cache_lines` is not a
    /// power of two.
    pub fn with_icache(reset_pc: u32, cache_lines: usize) -> Self {
        let mut core = MipsCore::new(reset_pc);
        core.icache = Some(crate::cache::ICache::new(cache_lines));
        core
    }

    /// The instruction cache, if configured.
    pub fn icache(&self) -> Option<&crate::cache::ICache> {
        self.icache.as_ref()
    }

    /// Reads a register (register 0 is always zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Writes a register (writes to register 0 are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// True once the core executed `BREAK` or faulted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The fault that stopped the core, if any.
    pub fn fault(&self) -> Option<CpuFault> {
        self.fault
    }

    fn issue_fetch<B: CycleBus>(&mut self, bus: &mut B, cycle: u64) {
        if let Some(cache) = &mut self.icache {
            if let Some(word) = cache.lookup(self.pc) {
                // Hit: no bus traffic; execute at the next rising edge.
                self.state = CpuState::FetchReady(word);
                return;
            }
            // Miss: fetch the whole aligned line as one burst.
            let id = self.next_id;
            self.next_id = id.next();
            bus.issue(
                Transaction::fetch(id, crate::cache::ICache::line_base(self.pc), BurstLen::B4),
                cycle,
            );
            self.state = CpuState::FetchWait(id);
            return;
        }
        let id = self.next_id;
        self.next_id = id.next();
        bus.issue(
            Transaction::fetch(id, Address::new(self.pc as u64), BurstLen::Single),
            cycle,
        );
        self.state = CpuState::FetchWait(id);
    }

    fn issue_mem<B: CycleBus>(
        &mut self,
        bus: &mut B,
        cycle: u64,
        addr: u32,
        width: DataWidth,
        store: Option<u32>,
        op: MemOp,
    ) {
        let id = self.next_id;
        self.next_id = id.next();
        let txn = match store {
            Some(value) => Transaction::single_write(id, Address::new(addr as u64), width, value),
            None => Transaction::single_read(id, Address::new(addr as u64), width),
        };
        bus.issue(txn, cycle);
        self.state = CpuState::MemWait(id, op);
    }

    /// Rising-edge step: polls outstanding transactions and advances the
    /// execute loop, issuing at most one new transaction.
    pub fn rising_edge<B: CycleBus>(&mut self, bus: &mut B, cycle: u64) {
        if self.halted {
            return;
        }
        match self.state {
            CpuState::NeedFetch => self.issue_fetch(bus, cycle),
            CpuState::FetchReady(word) => match Instr::decode(word) {
                None => self.halt_with(CpuFault::ReservedInstruction(word)),
                Some(instr) => self.execute(bus, cycle, instr),
            },
            CpuState::FetchWait(id) => match bus.poll(id) {
                PollStatus::Pending => {}
                PollStatus::Done(done) => {
                    if done.error.is_some() {
                        self.halt_with(CpuFault::BusError);
                        return;
                    }
                    let word = match &mut self.icache {
                        Some(cache) => cache.fill(self.pc, &done.data),
                        None => done.data[0],
                    };
                    match Instr::decode(word) {
                        None => self.halt_with(CpuFault::ReservedInstruction(word)),
                        Some(instr) => self.execute(bus, cycle, instr),
                    }
                }
            },
            CpuState::MemWait(id, op) => match bus.poll(id) {
                PollStatus::Pending => {}
                PollStatus::Done(done) => {
                    if done.error.is_some() {
                        self.halt_with(CpuFault::BusError);
                        return;
                    }
                    match op {
                        MemOp::LoadSigned8(rt) => {
                            self.set_reg(rt, done.data[0] as u8 as i8 as i32 as u32)
                        }
                        MemOp::LoadZero8(rt) => self.set_reg(rt, done.data[0] & 0xFF),
                        MemOp::LoadSigned16(rt) => {
                            self.set_reg(rt, done.data[0] as u16 as i16 as i32 as u32)
                        }
                        MemOp::LoadZero16(rt) => self.set_reg(rt, done.data[0] & 0xFFFF),
                        MemOp::Load32(rt) => self.set_reg(rt, done.data[0]),
                        MemOp::Store => {}
                    }
                    self.retired += 1;
                    self.issue_fetch(bus, cycle);
                }
            },
        }
    }

    fn halt_with(&mut self, fault: CpuFault) {
        self.halted = true;
        self.fault = Some(fault);
        self.state = CpuState::NeedFetch;
    }

    /// Executes a fetched instruction. ALU and control-flow instructions
    /// retire immediately and the next fetch issues in the same cycle;
    /// loads/stores issue their data transaction instead.
    fn execute<B: CycleBus>(&mut self, bus: &mut B, cycle: u64, instr: Instr) {
        use Instr::*;
        let mut next_pc = self.pc.wrapping_add(4);
        match instr {
            Sll { rd, rt, sh } => self.set_reg(rd, self.reg(rt) << sh),
            Srl { rd, rt, sh } => self.set_reg(rd, self.reg(rt) >> sh),
            Sra { rd, rt, sh } => self.set_reg(rd, ((self.reg(rt) as i32) >> sh) as u32),
            Addu { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt))),
            Subu { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt))),
            And { rd, rs, rt } => self.set_reg(rd, self.reg(rs) & self.reg(rt)),
            Or { rd, rs, rt } => self.set_reg(rd, self.reg(rs) | self.reg(rt)),
            Xor { rd, rs, rt } => self.set_reg(rd, self.reg(rs) ^ self.reg(rt)),
            Nor { rd, rs, rt } => self.set_reg(rd, !(self.reg(rs) | self.reg(rt))),
            Slt { rd, rs, rt } => {
                self.set_reg(rd, ((self.reg(rs) as i32) < (self.reg(rt) as i32)) as u32)
            }
            Sltu { rd, rs, rt } => self.set_reg(rd, (self.reg(rs) < self.reg(rt)) as u32),
            Mul { rd, rs, rt } => self.set_reg(rd, self.reg(rs).wrapping_mul(self.reg(rt))),
            Jr { rs } => next_pc = self.reg(rs),
            Break => {
                self.retired += 1;
                self.halted = true;
                return;
            }
            Addiu { rt, rs, imm } => self.set_reg(rt, self.reg(rs).wrapping_add(imm as i32 as u32)),
            Slti { rt, rs, imm } => self.set_reg(rt, ((self.reg(rs) as i32) < imm as i32) as u32),
            Sltiu { rt, rs, imm } => self.set_reg(rt, (self.reg(rs) < imm as i32 as u32) as u32),
            Andi { rt, rs, imm } => self.set_reg(rt, self.reg(rs) & imm as u32),
            Ori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) | imm as u32),
            Xori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) ^ imm as u32),
            Lui { rt, imm } => self.set_reg(rt, (imm as u32) << 16),
            Beq { rs, rt, off } => {
                if self.reg(rs) == self.reg(rt) {
                    next_pc = self
                        .pc
                        .wrapping_add(4)
                        .wrapping_add((off as i32 as u32) << 2);
                }
            }
            Bne { rs, rt, off } => {
                if self.reg(rs) != self.reg(rt) {
                    next_pc = self
                        .pc
                        .wrapping_add(4)
                        .wrapping_add((off as i32 as u32) << 2);
                }
            }
            J { target } => next_pc = (self.pc & 0xF000_0000) | (target << 2),
            Jal { target } => {
                self.set_reg(Reg::RA, self.pc.wrapping_add(4));
                next_pc = (self.pc & 0xF000_0000) | (target << 2);
            }
            Lb { rt, base, off }
            | Lbu { rt, base, off }
            | Lh { rt, base, off }
            | Lhu { rt, base, off }
            | Lw { rt, base, off } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                let (width, op) = match instr {
                    Lb { .. } => (DataWidth::W8, MemOp::LoadSigned8(rt)),
                    Lbu { .. } => (DataWidth::W8, MemOp::LoadZero8(rt)),
                    Lh { .. } => (DataWidth::W16, MemOp::LoadSigned16(rt)),
                    Lhu { .. } => (DataWidth::W16, MemOp::LoadZero16(rt)),
                    _ => (DataWidth::W32, MemOp::Load32(rt)),
                };
                self.pc = next_pc;
                self.issue_mem(bus, cycle, addr, width, None, op);
                return;
            }
            Sb { rt, base, off } | Sh { rt, base, off } | Sw { rt, base, off } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                let width = match instr {
                    Sb { .. } => DataWidth::W8,
                    Sh { .. } => DataWidth::W16,
                    _ => DataWidth::W32,
                };
                let value = self.reg(rt) & width.value_mask();
                self.pc = next_pc;
                self.issue_mem(bus, cycle, addr, width, Some(value), MemOp::Store);
                return;
            }
        }
        self.retired += 1;
        self.pc = next_pc;
        self.issue_fetch(bus, cycle);
    }
}

/// Summary of a completed core run.
#[derive(Debug, Clone, Copy)]
pub struct CpuReport {
    /// Bus cycles executed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Fault that stopped the run, if any.
    pub fault: Option<CpuFault>,
}

impl CpuReport {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// Drives a [`MipsCore`] against a [`CycleBus`], cycle by cycle.
#[derive(Debug)]
pub struct CpuSystem<B> {
    bus: B,
    core: MipsCore,
    cycle: u64,
}

impl<B: CycleBus> CpuSystem<B> {
    /// Creates a system with the core resetting at `reset_pc`.
    pub fn new(bus: B, reset_pc: u32) -> Self {
        CpuSystem {
            bus,
            core: MipsCore::new(reset_pc),
            cycle: 0,
        }
    }

    /// Creates a system whose core carries an instruction cache of
    /// `cache_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `cache_lines` is not a power of two.
    pub fn with_icache(bus: B, reset_pc: u32, cache_lines: usize) -> Self {
        CpuSystem {
            bus,
            core: MipsCore::with_icache(reset_pc, cache_lines),
            cycle: 0,
        }
    }

    /// Shared access to the bus.
    pub fn bus(&self) -> &B {
        &self.bus
    }

    /// Exclusive access to the bus.
    pub fn bus_mut(&mut self) -> &mut B {
        &mut self.bus
    }

    /// The core's architectural state.
    pub fn core(&self) -> &MipsCore {
        &self.core
    }

    /// Executes one bus cycle; `hook` runs after the bus process.
    pub fn step_cycle(&mut self, hook: &mut impl FnMut(&mut B)) {
        self.core.rising_edge(&mut self.bus, self.cycle);
        if !self.bus.is_idle() || self.bus.wants_every_cycle() {
            self.bus.bus_process(self.cycle);
            hook(&mut self.bus);
        }
        self.cycle += 1;
    }

    /// Runs until the core halts.
    ///
    /// # Panics
    ///
    /// Panics if the core does not halt within `max_cycles` (runaway
    /// program).
    pub fn run_until_halt(&mut self, max_cycles: u64, mut hook: impl FnMut(&mut B)) -> CpuReport {
        while !self.core.is_halted() {
            assert!(
                self.cycle < max_cycles,
                "core did not halt within {max_cycles} cycles (pc={:#x})",
                self.core.pc()
            );
            self.step_cycle(&mut hook);
        }
        CpuReport {
            cycles: self.cycle,
            instructions: self.core.retired(),
            fault: self.core.fault(),
        }
    }
}
