//! Memory peripherals: ROM, EEPROM, FLASH and scratchpad RAM.
//!
//! Wait-state profiles model the technologies of the target platform:
//! mask ROM reads take one wait state; EEPROM reads are slow-ish and *writes*
//! are very slow (programming pulses); FLASH reads take a wait state and
//! is read-only from the bus (programming goes through a controller not
//! modeled here); scratchpad RAM is single-cycle.

use hierbus_core::{MemSlave, SlaveReply, TlmSlave};
use hierbus_ec::{AccessRights, Address, AddressRange, SlaveConfig, WaitProfile};

macro_rules! memory_peripheral {
    (
        $(#[$doc:meta])*
        $name:ident, rights: $rights:expr, waits: $waits:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: MemSlave,
        }

        impl $name {
            /// The wait-state profile of this memory technology.
            pub const WAITS: WaitProfile = $waits;

            /// Creates the memory over the given address window.
            pub fn new(range: AddressRange) -> Self {
                $name {
                    inner: MemSlave::new(SlaveConfig::new(range, $waits, $rights)),
                }
            }

            /// Pre-loads consecutive words starting at `addr` (factory
            /// programming — bypasses bus rights).
            ///
            /// # Panics
            ///
            /// Panics if `addr` is not word aligned.
            pub fn load(&mut self, addr: Address, words: &[u32]) {
                self.inner.load(addr, words);
            }

            /// Reads a word without bus semantics (inspection aid).
            pub fn peek(&self, addr: Address) -> u32 {
                self.inner.peek(addr)
            }
        }

        impl TlmSlave for $name {
            fn config(&self) -> SlaveConfig {
                self.inner.config()
            }
            fn read_word(&mut self, addr: Address) -> SlaveReply<u32> {
                self.inner.read_word(addr)
            }
            fn write_word(&mut self, addr: Address, data: u32, ben: u8) -> SlaveReply<()> {
                self.inner.write_word(addr, data, ben)
            }
        }
    };
}

memory_peripheral!(
    /// 256 kB mask ROM: program memory, read/execute; one read wait
    /// state (mask ROM sense amplifiers do not keep up with the core
    /// clock — which is what makes the instruction cache worth having).
    Rom,
    rights: AccessRights::RX,
    waits: WaitProfile::new(0, 1, 0)
);

memory_peripheral!(
    /// 32 kB EEPROM: data & program memory; reads take one wait state,
    /// writes take ten (programming pulse).
    Eeprom,
    rights: AccessRights::RWX,
    waits: WaitProfile::new(0, 1, 10)
);

memory_peripheral!(
    /// 64 kB FLASH program memory: read/execute with one wait state.
    Flash,
    rights: AccessRights::RX,
    waits: WaitProfile::new(0, 1, 1)
);

memory_peripheral!(
    /// Scratchpad RAM: single-cycle read/write/execute.
    ScratchpadRam,
    rights: AccessRights::RWX,
    waits: WaitProfile::new(0, 0, 0)
);

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> AddressRange {
        AddressRange::new(Address::new(0x1000), 0x1000)
    }

    #[test]
    fn rom_is_read_execute_only() {
        let rom = Rom::new(range());
        let cfg = rom.config();
        assert!(cfg.rights.read && cfg.rights.execute && !cfg.rights.write);
        assert_eq!(cfg.waits, WaitProfile::new(0, 1, 0));
    }

    #[test]
    fn eeprom_writes_are_slow() {
        let e = Eeprom::new(range());
        assert_eq!(e.config().waits.write, 10);
        assert_eq!(e.config().waits.read, 1);
        assert!(e.config().rights.write);
    }

    #[test]
    fn flash_has_read_wait() {
        let f = Flash::new(range());
        assert_eq!(f.config().waits.read, 1);
        assert!(!f.config().rights.write);
    }

    #[test]
    fn ram_is_single_cycle_rwx() {
        let r = ScratchpadRam::new(range());
        assert_eq!(r.config().waits, WaitProfile::ZERO);
        assert!(r.config().rights.write && r.config().rights.execute);
    }

    #[test]
    fn load_and_peek_roundtrip() {
        let mut rom = Rom::new(range());
        rom.load(Address::new(0x1000), &[0xDEAD, 0xBEEF]);
        assert_eq!(rom.peek(Address::new(0x1000)), 0xDEAD);
        assert_eq!(rom.peek(Address::new(0x1004)), 0xBEEF);
    }

    #[test]
    fn bus_reads_work_through_the_trait() {
        let mut ram = ScratchpadRam::new(range());
        ram.write_word(Address::new(0x1010), 0x42, 0b1111);
        assert_eq!(ram.read_word(Address::new(0x1010)), SlaveReply::Ok(0x42));
    }
}
