//! A MIPS32 instruction subset with authentic encodings.
//!
//! Covers the arithmetic/logic, shift, branch, jump, and load/store
//! instructions a smart-card workload needs. [`Instr::encode`] and
//! [`Instr::decode`] round-trip bit-exactly (property-tested), so
//! programs built with [`Program`](crate::program::Program) are genuine
//! MIPS32 machine code words.

use std::fmt;

/// A general-purpose register index (0..=31); register 0 reads as zero
/// and ignores writes, as in the architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg(1);
    /// Function results.
    pub const V0: Reg = Reg(2);
    /// Function results.
    pub const V1: Reg = Reg(3);
    /// Argument registers.
    pub const A0: Reg = Reg(4);
    /// Argument registers.
    pub const A1: Reg = Reg(5);
    /// Argument registers.
    pub const A2: Reg = Reg(6);
    /// Argument registers.
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporaries.
    pub const T0: Reg = Reg(8);
    /// Caller-saved temporaries.
    pub const T1: Reg = Reg(9);
    /// Caller-saved temporaries.
    pub const T2: Reg = Reg(10);
    /// Caller-saved temporaries.
    pub const T3: Reg = Reg(11);
    /// Caller-saved temporaries.
    pub const T4: Reg = Reg(12);
    /// Caller-saved temporaries.
    pub const T5: Reg = Reg(13);
    /// Caller-saved temporaries.
    pub const T6: Reg = Reg(14);
    /// Caller-saved temporaries.
    pub const T7: Reg = Reg(15);
    /// Callee-saved.
    pub const S0: Reg = Reg(16);
    /// Callee-saved.
    pub const S1: Reg = Reg(17);
    /// Callee-saved.
    pub const S2: Reg = Reg(18);
    /// Callee-saved.
    pub const S3: Reg = Reg(19);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Return address.
    pub const RA: Reg = Reg(31);

    fn field(self) -> u32 {
        (self.0 & 0x1F) as u32
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow the MIPS32 manual
pub enum Instr {
    // Shifts (R-type with shamt).
    Sll {
        rd: Reg,
        rt: Reg,
        sh: u8,
    },
    Srl {
        rd: Reg,
        rt: Reg,
        sh: u8,
    },
    Sra {
        rd: Reg,
        rt: Reg,
        sh: u8,
    },
    // Three-register ALU ops.
    Addu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Subu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    And {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Or {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Xor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Nor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Slt {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sltu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// SPECIAL2 MUL: low 32 bits of rs × rt.
    Mul {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    // Register jump and software break (used as HALT by the ISS).
    Jr {
        rs: Reg,
    },
    Break,
    // Immediate ALU ops.
    Addiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Slti {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Sltiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Andi {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Ori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Xori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Lui {
        rt: Reg,
        imm: u16,
    },
    // Branches (16-bit word offset from the next instruction).
    Beq {
        rs: Reg,
        rt: Reg,
        off: i16,
    },
    Bne {
        rs: Reg,
        rt: Reg,
        off: i16,
    },
    // Loads and stores.
    Lb {
        rt: Reg,
        base: Reg,
        off: i16,
    },
    Lbu {
        rt: Reg,
        base: Reg,
        off: i16,
    },
    Lh {
        rt: Reg,
        base: Reg,
        off: i16,
    },
    Lhu {
        rt: Reg,
        base: Reg,
        off: i16,
    },
    Lw {
        rt: Reg,
        base: Reg,
        off: i16,
    },
    Sb {
        rt: Reg,
        base: Reg,
        off: i16,
    },
    Sh {
        rt: Reg,
        base: Reg,
        off: i16,
    },
    Sw {
        rt: Reg,
        base: Reg,
        off: i16,
    },
    // Absolute jumps (26-bit word target).
    J {
        target: u32,
    },
    Jal {
        target: u32,
    },
}

const OP_SPECIAL: u32 = 0x00;
const OP_SPECIAL2: u32 = 0x1C;

impl Instr {
    /// The canonical no-op (`sll $0, $0, 0`, all-zero word).
    pub const NOP: Instr = Instr::Sll {
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        sh: 0,
    };

    /// Encodes to a MIPS32 machine word.
    pub fn encode(self) -> u32 {
        fn r(funct: u32, rs: Reg, rt: Reg, rd: Reg, sh: u8) -> u32 {
            (rs.field() << 21)
                | (rt.field() << 16)
                | (rd.field() << 11)
                | (((sh & 0x1F) as u32) << 6)
                | funct
        }
        fn i(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
            (op << 26) | (rs.field() << 21) | (rt.field() << 16) | imm as u32
        }
        match self {
            Instr::Sll { rd, rt, sh } => r(0x00, Reg::ZERO, rt, rd, sh),
            Instr::Srl { rd, rt, sh } => r(0x02, Reg::ZERO, rt, rd, sh),
            Instr::Sra { rd, rt, sh } => r(0x03, Reg::ZERO, rt, rd, sh),
            Instr::Jr { rs } => r(0x08, rs, Reg::ZERO, Reg::ZERO, 0),
            Instr::Break => 0x0000_000D,
            Instr::Addu { rd, rs, rt } => r(0x21, rs, rt, rd, 0),
            Instr::Subu { rd, rs, rt } => r(0x23, rs, rt, rd, 0),
            Instr::And { rd, rs, rt } => r(0x24, rs, rt, rd, 0),
            Instr::Or { rd, rs, rt } => r(0x25, rs, rt, rd, 0),
            Instr::Xor { rd, rs, rt } => r(0x26, rs, rt, rd, 0),
            Instr::Nor { rd, rs, rt } => r(0x27, rs, rt, rd, 0),
            Instr::Slt { rd, rs, rt } => r(0x2A, rs, rt, rd, 0),
            Instr::Sltu { rd, rs, rt } => r(0x2B, rs, rt, rd, 0),
            Instr::Mul { rd, rs, rt } => (OP_SPECIAL2 << 26) | r(0x02, rs, rt, rd, 0),
            Instr::Addiu { rt, rs, imm } => i(0x09, rs, rt, imm as u16),
            Instr::Slti { rt, rs, imm } => i(0x0A, rs, rt, imm as u16),
            Instr::Sltiu { rt, rs, imm } => i(0x0B, rs, rt, imm as u16),
            Instr::Andi { rt, rs, imm } => i(0x0C, rs, rt, imm),
            Instr::Ori { rt, rs, imm } => i(0x0D, rs, rt, imm),
            Instr::Xori { rt, rs, imm } => i(0x0E, rs, rt, imm),
            Instr::Lui { rt, imm } => i(0x0F, Reg::ZERO, rt, imm),
            Instr::Beq { rs, rt, off } => i(0x04, rs, rt, off as u16),
            Instr::Bne { rs, rt, off } => i(0x05, rs, rt, off as u16),
            Instr::Lb { rt, base, off } => i(0x20, base, rt, off as u16),
            Instr::Lh { rt, base, off } => i(0x21, base, rt, off as u16),
            Instr::Lw { rt, base, off } => i(0x23, base, rt, off as u16),
            Instr::Lbu { rt, base, off } => i(0x24, base, rt, off as u16),
            Instr::Lhu { rt, base, off } => i(0x25, base, rt, off as u16),
            Instr::Sb { rt, base, off } => i(0x28, base, rt, off as u16),
            Instr::Sh { rt, base, off } => i(0x29, base, rt, off as u16),
            Instr::Sw { rt, base, off } => i(0x2B, base, rt, off as u16),
            Instr::J { target } => (0x02 << 26) | (target & 0x03FF_FFFF),
            Instr::Jal { target } => (0x03 << 26) | (target & 0x03FF_FFFF),
        }
    }

    /// Decodes a machine word; `None` for encodings outside the subset.
    pub fn decode(word: u32) -> Option<Instr> {
        let op = word >> 26;
        let rs = Reg(((word >> 21) & 0x1F) as u8);
        let rt = Reg(((word >> 16) & 0x1F) as u8);
        let rd = Reg(((word >> 11) & 0x1F) as u8);
        let sh = ((word >> 6) & 0x1F) as u8;
        let imm = (word & 0xFFFF) as u16;
        let simm = imm as i16;
        match op {
            OP_SPECIAL => match word & 0x3F {
                0x00 => Some(Instr::Sll { rd, rt, sh }),
                0x02 => Some(Instr::Srl { rd, rt, sh }),
                0x03 => Some(Instr::Sra { rd, rt, sh }),
                0x08 => Some(Instr::Jr { rs }),
                0x0D => Some(Instr::Break),
                0x21 => Some(Instr::Addu { rd, rs, rt }),
                0x23 => Some(Instr::Subu { rd, rs, rt }),
                0x24 => Some(Instr::And { rd, rs, rt }),
                0x25 => Some(Instr::Or { rd, rs, rt }),
                0x26 => Some(Instr::Xor { rd, rs, rt }),
                0x27 => Some(Instr::Nor { rd, rs, rt }),
                0x2A => Some(Instr::Slt { rd, rs, rt }),
                0x2B => Some(Instr::Sltu { rd, rs, rt }),
                _ => None,
            },
            OP_SPECIAL2 => match word & 0x3F {
                0x02 => Some(Instr::Mul { rd, rs, rt }),
                _ => None,
            },
            0x02 => Some(Instr::J {
                target: word & 0x03FF_FFFF,
            }),
            0x03 => Some(Instr::Jal {
                target: word & 0x03FF_FFFF,
            }),
            0x04 => Some(Instr::Beq { rs, rt, off: simm }),
            0x05 => Some(Instr::Bne { rs, rt, off: simm }),
            0x09 => Some(Instr::Addiu { rt, rs, imm: simm }),
            0x0A => Some(Instr::Slti { rt, rs, imm: simm }),
            0x0B => Some(Instr::Sltiu { rt, rs, imm: simm }),
            0x0C => Some(Instr::Andi { rt, rs, imm }),
            0x0D => Some(Instr::Ori { rt, rs, imm }),
            0x0E => Some(Instr::Xori { rt, rs, imm }),
            0x0F => Some(Instr::Lui { rt, imm }),
            0x20 => Some(Instr::Lb {
                rt,
                base: rs,
                off: simm,
            }),
            0x21 => Some(Instr::Lh {
                rt,
                base: rs,
                off: simm,
            }),
            0x23 => Some(Instr::Lw {
                rt,
                base: rs,
                off: simm,
            }),
            0x24 => Some(Instr::Lbu {
                rt,
                base: rs,
                off: simm,
            }),
            0x25 => Some(Instr::Lhu {
                rt,
                base: rs,
                off: simm,
            }),
            0x28 => Some(Instr::Sb {
                rt,
                base: rs,
                off: simm,
            }),
            0x29 => Some(Instr::Sh {
                rt,
                base: rs,
                off: simm,
            }),
            0x2B => Some(Instr::Sw {
                rt,
                base: rs,
                off: simm,
            }),
            _ => None,
        }
    }

    /// True for loads and stores (the instructions that produce data-bus
    /// traffic).
    pub fn is_memory_op(self) -> bool {
        matches!(
            self,
            Instr::Lb { .. }
                | Instr::Lbu { .. }
                | Instr::Lh { .. }
                | Instr::Lhu { .. }
                | Instr::Lw { .. }
                | Instr::Sb { .. }
                | Instr::Sh { .. }
                | Instr::Sw { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_sim::SplitMix64;

    #[test]
    fn nop_is_all_zero() {
        assert_eq!(Instr::NOP.encode(), 0);
        assert_eq!(Instr::decode(0), Some(Instr::NOP));
    }

    #[test]
    fn known_encodings_match_the_manual() {
        // addu $3, $1, $2 → 0x00221821
        assert_eq!(
            Instr::Addu {
                rd: Reg(3),
                rs: Reg(1),
                rt: Reg(2)
            }
            .encode(),
            0x0022_1821
        );
        // lw $8, 4($29) → 0x8FA80004
        assert_eq!(
            Instr::Lw {
                rt: Reg::T0,
                base: Reg::SP,
                off: 4
            }
            .encode(),
            0x8FA8_0004
        );
        // ori $2, $0, 0xFFFF → 0x3402FFFF
        assert_eq!(
            Instr::Ori {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 0xFFFF
            }
            .encode(),
            0x3402_FFFF
        );
        // j 0x100 (word target) → 0x08000100
        assert_eq!(Instr::J { target: 0x100 }.encode(), 0x0800_0100);
        // break → 0x0000000D
        assert_eq!(Instr::Break.encode(), 0x0000_000D);
    }

    #[test]
    fn negative_immediates_roundtrip() {
        let i = Instr::Addiu {
            rt: Reg::T0,
            rs: Reg::T0,
            imm: -4,
        };
        assert_eq!(Instr::decode(i.encode()), Some(i));
        let b = Instr::Beq {
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            off: -10,
        };
        assert_eq!(Instr::decode(b.encode()), Some(b));
    }

    #[test]
    fn unknown_opcodes_decode_to_none() {
        assert_eq!(Instr::decode(0xFC00_0000), None); // opcode 0x3F
        assert_eq!(Instr::decode(0x0000_003F), None); // SPECIAL funct 0x3F
    }

    #[test]
    fn memory_op_classification() {
        assert!(Instr::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            off: 0
        }
        .is_memory_op());
        assert!(!Instr::Break.is_memory_op());
        assert!(!Instr::NOP.is_memory_op());
    }

    fn arb_reg(rng: &mut SplitMix64) -> Reg {
        Reg(rng.range_u32(0, 32) as u8)
    }

    #[test]
    fn encode_decode_roundtrip_rtype() {
        let mut rng = SplitMix64::new(0x47E5);
        for case in 0..256 {
            let (rd, rs, rt) = (arb_reg(&mut rng), arb_reg(&mut rng), arb_reg(&mut rng));
            let sh = rng.range_u32(0, 32) as u8;
            for i in [
                Instr::Sll { rd, rt, sh },
                Instr::Srl { rd, rt, sh },
                Instr::Addu { rd, rs, rt },
                Instr::Subu { rd, rs, rt },
                Instr::Xor { rd, rs, rt },
                Instr::Slt { rd, rs, rt },
                Instr::Mul { rd, rs, rt },
            ] {
                assert_eq!(Instr::decode(i.encode()), Some(i), "case {case}");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_itype() {
        let mut rng = SplitMix64::new(0x17E5);
        for case in 0..256 {
            let (rs, rt) = (arb_reg(&mut rng), arb_reg(&mut rng));
            let imm = rng.next_u32() as u16 as i16;
            let uimm = rng.next_u32() as u16;
            for i in [
                Instr::Addiu { rt, rs, imm },
                Instr::Ori { rt, rs, imm: uimm },
                Instr::Lui { rt, imm: uimm },
                Instr::Beq { rs, rt, off: imm },
                Instr::Lw {
                    rt,
                    base: rs,
                    off: imm,
                },
                Instr::Sb {
                    rt,
                    base: rs,
                    off: imm,
                },
            ] {
                assert_eq!(Instr::decode(i.encode()), Some(i), "case {case}");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_jtype() {
        let mut rng = SplitMix64::new(0x77E5);
        for case in 0..256 {
            let target = rng.range_u32(0, 1 << 26);
            for i in [Instr::J { target }, Instr::Jal { target }] {
                assert_eq!(Instr::decode(i.encode()), Some(i), "case {case}");
            }
        }
    }
}
