//! Exporting peripheral profiling counters into a metrics registry.
//!
//! The peripherals count their own stalls and queue occupancy as plain
//! integers (always on — a handful of adds per access); this module
//! copies those numbers into a [`MetricsRegistry`] after a run, under
//! stable `soc.<peripheral>.<metric>` names:
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `soc.uart.tx_stall_waits` | counter | bus cycles stalled on a full TX FIFO |
//! | `soc.uart.bytes_sent` | counter | bytes fully transmitted |
//! | `soc.uart.tx_fifo_hwm` | gauge | TX FIFO occupancy high-water mark |
//! | `soc.crypto.stall_waits` | counter | bus cycles stalled on a busy block engine |
//! | `soc.crypto.blocks_processed` | counter | cipher blocks completed |

use crate::crypto::CryptoAccel;
use crate::uart::Uart;
use hierbus_core::HasSlaves;
use hierbus_ec::SlaveId;
use hierbus_obs::MetricsRegistry;

/// Walks the bus's slaves and records every recognized peripheral's
/// profiling counters into `reg` (no-op for a disabled registry).
pub fn export_platform_metrics<B: HasSlaves>(bus: &B, reg: &mut MetricsRegistry) {
    for i in 0..bus.slave_count() {
        let Some(any) = bus.slave_ref(SlaveId(i)).as_any() else {
            continue;
        };
        if let Some(u) = any.downcast_ref::<Uart>() {
            let c = reg.counter("soc.uart.tx_stall_waits");
            reg.add(c, u.stall_waits());
            let c = reg.counter("soc.uart.bytes_sent");
            reg.add(c, u.sent().len() as u64);
            let g = reg.gauge("soc.uart.tx_fifo_hwm");
            reg.set_gauge(g, u.tx_fifo_hwm() as i64);
        } else if let Some(cr) = any.downcast_ref::<CryptoAccel>() {
            let c = reg.counter("soc.crypto.stall_waits");
            reg.add(c, cr.stall_waits());
            let c = reg.counter("soc.crypto.blocks_processed");
            reg.add(c, cr.blocks_processed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn platform_export_records_uart_and_crypto() {
        let mut platform = Platform::new();
        // Three bytes queued, one stalled write attempt never happens
        // here — just verify plumbing and names.
        for b in [0x41u8, 0x42, 0x43] {
            platform.uart.receive(b);
        }
        use hierbus_core::TlmSlave;
        let uart_base = platform.uart.config().range.base();
        platform.uart.write_word(uart_base, 0x5A, 0b1111);
        let bus = platform.into_tlm1();
        let mut reg = MetricsRegistry::new();
        export_platform_metrics(&bus, &mut reg);
        let c = reg.counter("soc.uart.bytes_sent");
        assert_eq!(reg.counter_value(c), 0); // nothing shifted out yet
        let g = reg.gauge("soc.uart.tx_fifo_hwm");
        assert_eq!(reg.gauge_value(g), 1);
        let c = reg.counter("soc.crypto.blocks_processed");
        assert_eq!(reg.counter_value(c), 0);
        assert_eq!(
            reg.snapshot()
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("soc."))
                .count(),
            4
        );
    }

    #[test]
    fn disabled_registry_records_no_values() {
        let mut platform = Platform::new();
        use hierbus_core::TlmSlave;
        let base = platform.uart.config().range.base();
        platform.uart.write_word(base, 0x5A, 0b1111);
        let bus = platform.into_tlm1();
        let mut reg = MetricsRegistry::disabled();
        export_platform_metrics(&bus, &mut reg);
        // Names register (registration is allowed while disabled), but
        // every recorded value stays zero.
        let snap = reg.snapshot();
        assert!(snap.counters.iter().all(|(_, v)| *v == 0));
        assert!(snap.gauges.iter().all(|(_, v, hwm)| *v == 0 && *hwm == 0));
    }

    #[test]
    fn uart_counts_stalls_under_back_pressure() {
        let mut platform = Platform::new();
        use hierbus_core::{SlaveReply, TlmSlave};
        let base = platform.uart.config().range.base();
        let mut stalled = 0;
        for i in 0..12 {
            if platform.uart.write_word(base, i, 0b1111) == SlaveReply::Wait {
                stalled += 1;
            }
        }
        assert!(stalled > 0);
        assert_eq!(platform.uart.stall_waits(), stalled);
        assert_eq!(platform.uart.tx_fifo_hwm(), 8);
    }
}
