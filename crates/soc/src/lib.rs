//! Smart-card platform substrate (the paper's Fig. 1 target
//! architecture).
//!
//! The paper's evaluation drives the bus models with traffic from a MIPS
//! 4Ksc-based smart-card controller: a 32-bit RISC core behind a bus
//! interface unit, with ROM (256 kB program), EEPROM (32 kB data &
//! program), FLASH (64 kB program), scratchpad RAM, two 16-bit timers, a
//! UART, a true random number generator, and cryptographic coprocessing.
//! None of that silicon is available, so this crate provides the working
//! substitutes:
//!
//! * [`isa`] — a MIPS32 instruction subset with real encodings
//!   (encode/decode round-trips are property-tested).
//! * [`program`] — a label-resolving program builder (the "assembly
//!   language test program" facility of §4.1).
//! * [`cpu`] — a non-pipelined instruction-set simulator whose fetches,
//!   loads and stores travel through any
//!   [`CycleBus`](hierbus_core::CycleBus), generating the realistic bus
//!   traffic the accuracy and performance experiments need.
//! * [`mem`], [`uart`], [`timer`], [`rng`], [`crypto`] — the peripheral
//!   set as wait-state-configured TLM slaves.
//! * [`platform`] — the assembled address map.
//!
//! Simplifications versus real 4Ksc silicon, all documented where they
//! live: no caches or MMU (every fetch goes to the bus — which is the
//! interesting case for bus-power work), no branch delay slots, and the
//! "true" RNG is a seeded xorshift so runs stay reproducible.

//! # Example
//!
//! ```
//! use hierbus_soc::{CpuSystem, Platform, PlatformMap, Program, Reg};
//!
//! let mut p = Program::new(PlatformMap::RESET_PC);
//! p.li(Reg::T0, 6);
//! p.li(Reg::T1, 7);
//! p.mul(Reg::T2, Reg::T0, Reg::T1);
//! p.halt();
//!
//! let mut platform = Platform::new();
//! platform.load_boot_program(&p.assemble().expect("assembles"));
//! let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);
//! let report = sys.run_until_halt(10_000, |_| {});
//! assert!(report.fault.is_none());
//! assert_eq!(sys.core().reg(Reg::T2), 42);
//! ```

pub mod cache;
pub mod cpu;
pub mod crypto;
pub mod energy;
pub mod isa;
pub mod mem;
pub mod obs;
pub mod platform;
pub mod program;
pub mod rng;
pub mod timer;
pub mod uart;

pub use cache::ICache;
pub use cpu::{CpuReport, CpuSystem, MipsCore};
pub use crypto::CryptoAccel;
pub use energy::{platform_component_energy, PlatformEnergyReport};
pub use isa::{Instr, Reg};
pub use mem::{Eeprom, Flash, Rom, ScratchpadRam};
pub use obs::export_platform_metrics;
pub use platform::{Platform, PlatformMap};
pub use program::Program;
pub use rng::TrueRng;
pub use timer::DualTimer;
pub use uart::Uart;
