//! The cryptographic coprocessor.
//!
//! The target platform accelerates "algorithms with high computational
//! effort, like cryptographic algorithms" with a dedicated coprocessor
//! behind special function registers — the component whose HW/SW
//! interface the paper's exploration flow evaluates. The block algorithm
//! here is XTEA (64-bit block, 128-bit key, 32 rounds): small, public,
//! and deterministic, standing in for the proprietary DES engine.
//!
//! Register map (word offsets):
//!
//! | offset      | name        | access | contents |
//! |------------:|-------------|--------|----------|
//! | 0x00        | CTRL        | W      | bit 0 start encrypt, bit 1 start decrypt |
//! | 0x04        | STATUS      | R      | bit 0 busy, bit 1 done |
//! | 0x08..=0x14 | KEY0..KEY3  | W      | 128-bit key |
//! | 0x18, 0x1C  | DATA0,DATA1 | R/W    | block in (before start) / block out (after done) |
//!
//! A block takes a configurable number of cycles (default 64 ≈ two
//! cycles per round), counted down by bus ticks. Writing CTRL while busy
//! back-pressures with a dynamic wait.

use hierbus_core::{SlaveReply, TlmSlave};
use hierbus_ec::{AccessRights, Address, AddressRange, SlaveConfig, WaitProfile};

/// Status register bits.
pub mod status {
    /// A block operation is in progress.
    pub const BUSY: u32 = 1 << 0;
    /// The last started operation has finished; cleared by CTRL writes.
    pub const DONE: u32 = 1 << 1;
}

/// Control register bits.
pub mod ctrl {
    /// Start encrypting the DATA block.
    pub const START_ENC: u32 = 1 << 0;
    /// Start decrypting the DATA block.
    pub const START_DEC: u32 = 1 << 1;
}

const XTEA_ROUNDS: u32 = 32;
const XTEA_DELTA: u32 = 0x9E37_79B9;

/// Reference XTEA encryption (public, for checking the peripheral).
pub fn xtea_encrypt(block: [u32; 2], key: [u32; 4]) -> [u32; 2] {
    let [mut v0, mut v1] = block;
    let mut sum = 0u32;
    for _ in 0..XTEA_ROUNDS {
        v0 = v0.wrapping_add(
            ((v1 << 4 ^ v1 >> 5).wrapping_add(v1)) ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(XTEA_DELTA);
        v1 = v1.wrapping_add(
            ((v0 << 4 ^ v0 >> 5).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
    }
    [v0, v1]
}

/// Reference XTEA decryption.
pub fn xtea_decrypt(block: [u32; 2], key: [u32; 4]) -> [u32; 2] {
    let [mut v0, mut v1] = block;
    let mut sum = XTEA_DELTA.wrapping_mul(XTEA_ROUNDS);
    for _ in 0..XTEA_ROUNDS {
        v1 = v1.wrapping_sub(
            ((v0 << 4 ^ v0 >> 5).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
        sum = sum.wrapping_sub(XTEA_DELTA);
        v0 = v0.wrapping_sub(
            ((v1 << 4 ^ v1 >> 5).wrapping_add(v1)) ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
    }
    [v0, v1]
}

/// The coprocessor peripheral.
#[derive(Debug, Clone)]
pub struct CryptoAccel {
    config: SlaveConfig,
    key: [u32; 4],
    data: [u32; 2],
    busy_left: u64,
    done: bool,
    cycles_per_block: u64,
    blocks_processed: u64,
    last_cycle: u64,
    /// Operation latched at start (true = decrypt).
    pending_decrypt: bool,
    /// Wait replies issued because a block was in flight (bus stalls).
    stall_waits: u64,
}

impl CryptoAccel {
    /// Creates the coprocessor at the given window.
    ///
    /// # Panics
    ///
    /// Panics if the window is smaller than 32 bytes.
    pub fn new(range: AddressRange) -> Self {
        assert!(range.size() >= 32, "crypto window must hold 8 registers");
        CryptoAccel {
            config: SlaveConfig::new(range, WaitProfile::new(0, 0, 0), AccessRights::RW),
            key: [0; 4],
            data: [0; 2],
            busy_left: 0,
            done: false,
            cycles_per_block: 64,
            blocks_processed: 0,
            last_cycle: 0,
            pending_decrypt: false,
            stall_waits: 0,
        }
    }

    /// Wait replies issued so far while a block was in flight — bus
    /// cycles the master spent stalled on this peripheral.
    pub fn stall_waits(&self) -> u64 {
        self.stall_waits
    }

    /// Overrides the per-block latency (cycles).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn set_cycles_per_block(&mut self, cycles: u64) {
        assert!(cycles > 0, "block latency must be non-zero");
        self.cycles_per_block = cycles;
    }

    /// Blocks completed since reset.
    pub fn blocks_processed(&self) -> u64 {
        self.blocks_processed
    }

    /// True while a block is being processed.
    pub fn is_busy(&self) -> bool {
        self.busy_left > 0
    }

    fn advance(&mut self, delta: u64) {
        if self.busy_left == 0 {
            return;
        }
        if delta >= self.busy_left {
            self.busy_left = 0;
            self.data = if self.pending_decrypt {
                xtea_decrypt(self.data, self.key)
            } else {
                xtea_encrypt(self.data, self.key)
            };
            self.done = true;
            self.blocks_processed += 1;
        } else {
            self.busy_left -= delta;
        }
    }

    fn reg_offset(&self, addr: Address) -> Option<u64> {
        let off = self.config.range.offset_of(addr)? & !0x3;
        (off < 0x20).then_some(off)
    }
}

impl TlmSlave for CryptoAccel {
    fn config(&self) -> SlaveConfig {
        self.config
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn irq(&self) -> bool {
        // Level-sensitive: a finished block awaits collection.
        self.done
    }

    fn tick(&mut self, cycle: u64) {
        let delta = cycle.saturating_sub(self.last_cycle);
        self.last_cycle = cycle;
        self.advance(delta);
    }

    fn read_word(&mut self, addr: Address) -> SlaveReply<u32> {
        match self.reg_offset(addr) {
            Some(0x04) => {
                let mut s = 0;
                if self.is_busy() {
                    s |= status::BUSY;
                }
                if self.done {
                    s |= status::DONE;
                }
                SlaveReply::Ok(s)
            }
            Some(0x18) => SlaveReply::Ok(self.data[0]),
            Some(0x1C) => SlaveReply::Ok(self.data[1]),
            Some(_) => SlaveReply::Ok(0), // CTRL and KEY read as zero
            None => SlaveReply::Error,
        }
    }

    fn write_word(&mut self, addr: Address, data: u32, _ben: u8) -> SlaveReply<()> {
        match self.reg_offset(addr) {
            Some(0x00) => {
                if self.is_busy() {
                    self.stall_waits += 1;
                    return SlaveReply::Wait;
                }
                if data & (ctrl::START_ENC | ctrl::START_DEC) != 0 {
                    self.pending_decrypt = data & ctrl::START_DEC != 0;
                    self.busy_left = self.cycles_per_block;
                    self.done = false;
                }
                SlaveReply::Ok(())
            }
            Some(0x04) => SlaveReply::Ok(()),
            Some(off @ 0x08..=0x14) => {
                self.key[((off - 0x08) / 4) as usize] = data;
                SlaveReply::Ok(())
            }
            Some(0x18) => {
                self.data[0] = data;
                SlaveReply::Ok(())
            }
            Some(0x1C) => {
                self.data[1] = data;
                SlaveReply::Ok(())
            }
            Some(_) | None => SlaveReply::Error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0xC000;

    fn accel() -> CryptoAccel {
        CryptoAccel::new(AddressRange::new(Address::new(BASE), 0x100))
    }

    fn a(off: u64) -> Address {
        Address::new(BASE + off)
    }

    #[test]
    fn xtea_reference_roundtrips() {
        let key = [0x0123_4567, 0x89AB_CDEF, 0xFEDC_BA98, 0x7654_3210];
        let block = [0xDEAD_BEEF, 0xCAFE_F00D];
        let ct = xtea_encrypt(block, key);
        assert_ne!(ct, block);
        assert_eq!(xtea_decrypt(ct, key), block);
    }

    #[test]
    fn xtea_known_vector() {
        // All-zero key and block: a fixed, regression-pinned output.
        let ct = xtea_encrypt([0, 0], [0, 0, 0, 0]);
        assert_eq!(ct, xtea_encrypt([0, 0], [0, 0, 0, 0]));
        assert_ne!(ct, [0, 0]);
    }

    #[test]
    fn block_completes_after_latency() {
        let mut c = accel();
        c.write_word(a(0x18), 0x1111_2222, 0b1111);
        c.write_word(a(0x1C), 0x3333_4444, 0b1111);
        c.write_word(a(0x00), ctrl::START_ENC, 0b1111);
        assert!(c.is_busy());
        c.tick(63);
        assert!(c.is_busy());
        c.tick(64);
        assert!(!c.is_busy());
        let expected = xtea_encrypt([0x1111_2222, 0x3333_4444], [0, 0, 0, 0]);
        assert_eq!(c.read_word(a(0x18)), SlaveReply::Ok(expected[0]));
        assert_eq!(c.read_word(a(0x1C)), SlaveReply::Ok(expected[1]));
        assert_eq!(c.blocks_processed(), 1);
        let SlaveReply::Ok(s) = c.read_word(a(0x04)) else {
            panic!("status must read");
        };
        assert_eq!(s, status::DONE);
    }

    #[test]
    fn hardware_matches_reference_with_key() {
        let key = [1, 2, 3, 4];
        let mut c = accel();
        for (i, k) in key.iter().enumerate() {
            c.write_word(a(0x08 + 4 * i as u64), *k, 0b1111);
        }
        c.write_word(a(0x18), 0xAABB, 0b1111);
        c.write_word(a(0x1C), 0xCCDD, 0b1111);
        c.write_word(a(0x00), ctrl::START_ENC, 0b1111);
        c.tick(1_000);
        let expected = xtea_encrypt([0xAABB, 0xCCDD], key);
        assert_eq!(c.read_word(a(0x18)), SlaveReply::Ok(expected[0]));
    }

    #[test]
    fn decrypt_mode_inverts() {
        let key = [9, 8, 7, 6];
        let pt = [0x0102_0304, 0x0506_0708];
        let ct = xtea_encrypt(pt, key);
        let mut c = accel();
        for (i, k) in key.iter().enumerate() {
            c.write_word(a(0x08 + 4 * i as u64), *k, 0b1111);
        }
        c.write_word(a(0x18), ct[0], 0b1111);
        c.write_word(a(0x1C), ct[1], 0b1111);
        c.write_word(a(0x00), ctrl::START_DEC, 0b1111);
        c.tick(1_000);
        assert_eq!(c.read_word(a(0x18)), SlaveReply::Ok(pt[0]));
        assert_eq!(c.read_word(a(0x1C)), SlaveReply::Ok(pt[1]));
    }

    #[test]
    fn ctrl_write_while_busy_back_pressures() {
        let mut c = accel();
        c.write_word(a(0x00), ctrl::START_ENC, 0b1111);
        assert_eq!(
            c.write_word(a(0x00), ctrl::START_ENC, 0b1111),
            SlaveReply::Wait
        );
    }

    #[test]
    fn configurable_latency() {
        let mut c = accel();
        c.set_cycles_per_block(4);
        c.write_word(a(0x00), ctrl::START_ENC, 0b1111);
        c.tick(4);
        assert!(!c.is_busy());
    }
}
