//! The serial interface (ISO 7816-ish UART).
//!
//! Register map (word offsets from the peripheral base):
//!
//! | offset | name   | access | contents |
//! |-------:|--------|--------|----------|
//! | 0x0    | DATA   | R/W    | write: enqueue TX byte; read: dequeue RX byte (0 if empty) |
//! | 0x4    | STATUS | R      | bit 0 TX busy, bit 1 RX ready, bit 2 TX fifo full |
//! | 0x8    | BAUD   | R/W    | bus cycles per transmitted byte |
//!
//! Transmission takes `BAUD` cycles per byte, advanced by the bus's
//! [`tick`](hierbus_core::TlmSlave::tick) notifications with delta
//! catch-up, so idle-skipped cycles still count.

use hierbus_core::{SlaveReply, TlmSlave};
use hierbus_ec::{AccessRights, Address, AddressRange, SlaveConfig, WaitProfile};
use std::collections::VecDeque;

const TX_FIFO_DEPTH: usize = 8;

/// Status register bits.
pub mod status {
    /// A byte is currently shifting out.
    pub const TX_BUSY: u32 = 1 << 0;
    /// A received byte is waiting in DATA.
    pub const RX_READY: u32 = 1 << 1;
    /// The TX FIFO cannot accept another byte.
    pub const TX_FULL: u32 = 1 << 2;
}

/// The UART peripheral.
#[derive(Debug, Clone)]
pub struct Uart {
    config: SlaveConfig,
    baud_cycles: u32,
    tx_fifo: VecDeque<u8>,
    /// Cycles left on the byte currently shifting out.
    tx_left: u32,
    rx_fifo: VecDeque<u8>,
    sent: Vec<u8>,
    last_cycle: u64,
    /// Wait replies issued because the TX FIFO was full (bus stalls).
    stall_waits: u64,
    /// High-water mark of TX FIFO occupancy.
    tx_fifo_hwm: usize,
}

impl Uart {
    /// Creates a UART at the given window (needs at least 3 words).
    ///
    /// # Panics
    ///
    /// Panics if the window is smaller than 12 bytes.
    pub fn new(range: AddressRange) -> Self {
        assert!(range.size() >= 12, "uart window must hold 3 registers");
        Uart {
            config: SlaveConfig::new(range, WaitProfile::new(0, 0, 0), AccessRights::RW),
            baud_cycles: 16,
            tx_fifo: VecDeque::new(),
            tx_left: 0,
            rx_fifo: VecDeque::new(),
            sent: Vec::new(),
            last_cycle: 0,
            stall_waits: 0,
            tx_fifo_hwm: 0,
        }
    }

    /// Wait replies issued so far because the TX FIFO was full — each
    /// one is a bus cycle the master spent stalled on this peripheral.
    pub fn stall_waits(&self) -> u64 {
        self.stall_waits
    }

    /// High-water mark of TX FIFO occupancy.
    pub fn tx_fifo_hwm(&self) -> usize {
        self.tx_fifo_hwm
    }

    /// Injects a received byte (the card reader's side of the link).
    pub fn receive(&mut self, byte: u8) {
        self.rx_fifo.push_back(byte);
    }

    /// Every byte fully transmitted so far.
    pub fn sent(&self) -> &[u8] {
        &self.sent
    }

    /// True while bytes are queued or shifting out.
    pub fn tx_busy(&self) -> bool {
        self.tx_left > 0 || !self.tx_fifo.is_empty()
    }

    fn advance(&mut self, mut delta: u64) {
        while delta > 0 {
            if self.tx_left == 0 {
                match self.tx_fifo.pop_front() {
                    Some(byte) => {
                        self.sent.push(byte);
                        self.tx_left = self.baud_cycles;
                    }
                    None => return,
                }
            }
            let step = (self.tx_left as u64).min(delta) as u32;
            self.tx_left -= step;
            delta -= step as u64;
        }
    }

    fn reg_offset(&self, addr: Address) -> u64 {
        self.config
            .range
            .offset_of(addr)
            .expect("bus decoded the address into this window")
            & !0x3
    }
}

impl TlmSlave for Uart {
    fn config(&self) -> SlaveConfig {
        self.config
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn irq(&self) -> bool {
        // Level-sensitive: a received byte is waiting.
        !self.rx_fifo.is_empty()
    }

    fn tick(&mut self, cycle: u64) {
        let delta = cycle.saturating_sub(self.last_cycle);
        self.last_cycle = cycle;
        self.advance(delta);
    }

    fn read_word(&mut self, addr: Address) -> SlaveReply<u32> {
        match self.reg_offset(addr) {
            0x0 => SlaveReply::Ok(self.rx_fifo.pop_front().map_or(0, u32::from)),
            0x4 => {
                let mut s = 0;
                if self.tx_busy() {
                    s |= status::TX_BUSY;
                }
                if !self.rx_fifo.is_empty() {
                    s |= status::RX_READY;
                }
                if self.tx_fifo.len() >= TX_FIFO_DEPTH {
                    s |= status::TX_FULL;
                }
                SlaveReply::Ok(s)
            }
            0x8 => SlaveReply::Ok(self.baud_cycles),
            _ => SlaveReply::Error,
        }
    }

    fn write_word(&mut self, addr: Address, data: u32, _ben: u8) -> SlaveReply<()> {
        match self.reg_offset(addr) {
            0x0 => {
                if self.tx_fifo.len() >= TX_FIFO_DEPTH {
                    // Back-pressure: the layer-1 bus retries next cycle.
                    self.stall_waits += 1;
                    SlaveReply::Wait
                } else {
                    self.tx_fifo.push_back(data as u8);
                    self.tx_fifo_hwm = self.tx_fifo_hwm.max(self.tx_fifo.len());
                    SlaveReply::Ok(())
                }
            }
            0x4 => SlaveReply::Ok(()), // status writes are ignored
            0x8 => {
                self.baud_cycles = data.max(1);
                SlaveReply::Ok(())
            }
            _ => SlaveReply::Error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uart() -> Uart {
        Uart::new(AddressRange::new(Address::new(0x9000), 0x100))
    }

    #[test]
    fn bytes_shift_out_at_the_baud_rate() {
        let mut u = uart();
        u.write_word(Address::new(0x9008), 4, 0b1111); // 4 cycles/byte
        u.write_word(Address::new(0x9000), 0x41, 0b1111);
        u.write_word(Address::new(0x9000), 0x42, 0b1111);
        assert!(u.tx_busy());
        u.tick(4);
        assert_eq!(u.sent(), &[0x41]);
        u.tick(8);
        assert_eq!(u.sent(), &[0x41, 0x42]);
        assert!(!u.tx_busy());
    }

    #[test]
    fn delta_catch_up_over_idle_gaps() {
        let mut u = uart();
        u.write_word(Address::new(0x9008), 16, 0b1111);
        u.write_word(Address::new(0x9000), 0x55, 0b1111);
        u.tick(1_000); // long idle gap
        assert_eq!(u.sent(), &[0x55]);
    }

    #[test]
    fn status_reflects_fifos() {
        let mut u = uart();
        assert_eq!(u.read_word(Address::new(0x9004)), SlaveReply::Ok(0));
        u.receive(0x7F);
        let SlaveReply::Ok(s) = u.read_word(Address::new(0x9004)) else {
            panic!("status must read ok");
        };
        assert!(s & status::RX_READY != 0);
        assert_eq!(u.read_word(Address::new(0x9000)), SlaveReply::Ok(0x7F));
        assert_eq!(u.read_word(Address::new(0x9000)), SlaveReply::Ok(0));
    }

    #[test]
    fn full_tx_fifo_back_pressures() {
        let mut u = uart();
        for i in 0..TX_FIFO_DEPTH {
            assert_eq!(
                u.write_word(Address::new(0x9000), i as u32, 0b1111),
                SlaveReply::Ok(())
            );
        }
        assert_eq!(
            u.write_word(Address::new(0x9000), 0xFF, 0b1111),
            SlaveReply::Wait
        );
    }

    #[test]
    fn unmapped_offset_is_a_slave_error() {
        let mut u = uart();
        assert_eq!(u.read_word(Address::new(0x9040)), SlaveReply::Error);
    }
}
