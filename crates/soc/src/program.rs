//! A label-resolving program builder.
//!
//! The paper's verification flow needed "an assembly language test
//! program ... to initiate the required bus transactions" (§4.1). This
//! builder is that facility: emit instructions through typed methods,
//! branch/jump to named labels, and [`assemble`](Program::assemble) into
//! machine words for a program memory.
//!
//! ```
//! use hierbus_soc::{Program, Reg};
//!
//! let mut p = Program::new(0x0000_0000);
//! p.li(Reg::T0, 5);
//! p.label("loop");
//! p.addiu(Reg::T0, Reg::T0, -1);
//! p.bne(Reg::T0, Reg::ZERO, "loop");
//! p.halt();
//! let words = p.assemble().expect("labels resolve");
//! assert_eq!(words.len(), 4); // li expands to a single ori here
//! ```

use crate::isa::{Instr, Reg};
use std::collections::HashMap;
use std::fmt;

/// What a fixup patches once its label is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FixupKind {
    /// 16-bit branch offset relative to the following instruction.
    Branch,
    /// 26-bit absolute word target.
    Jump,
}

/// Errors from [`Program::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is further than a 16-bit offset can reach.
    BranchOutOfRange(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange(l) => write!(f, "branch to `{l}` out of range"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A program under construction: instructions plus pending label fixups.
#[derive(Debug, Clone, Default)]
pub struct Program {
    base: u32,
    words: Vec<u32>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String, FixupKind)>,
    duplicate: Option<String>,
}

impl Program {
    /// Starts a program whose first instruction lives at byte address
    /// `base` (must be word aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word aligned.
    pub fn new(base: u32) -> Self {
        assert!(
            base.is_multiple_of(4),
            "program base {base:#x} must be word aligned"
        );
        Program {
            base,
            ..Program::default()
        }
    }

    /// The base byte address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if no instruction has been emitted.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The byte address the next instruction will get.
    pub fn here(&self) -> u32 {
        self.base + 4 * self.words.len() as u32
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_owned(), self.words.len())
            .is_some()
            && self.duplicate.is_none()
        {
            self.duplicate = Some(name.to_owned());
        }
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.words.push(instr.encode());
        self
    }

    /// Emits a raw data word (e.g. a constant pool entry).
    pub fn word(&mut self, w: u32) -> &mut Self {
        self.words.push(w);
        self
    }

    // --- ALU ---

    /// `rd = rs + rt` (no overflow trap).
    pub fn addu(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Addu { rd, rs, rt })
    }

    /// `rd = rs - rt`.
    pub fn subu(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Subu { rd, rs, rt })
    }

    /// `rd = rs & rt`.
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::And { rd, rs, rt })
    }

    /// `rd = rs | rt`.
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Or { rd, rs, rt })
    }

    /// `rd = rs ^ rt`.
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Xor { rd, rs, rt })
    }

    /// `rd = !(rs | rt)`.
    pub fn nor(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Nor { rd, rs, rt })
    }

    /// `rd = (rs as i32) < (rt as i32)`.
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Slt { rd, rs, rt })
    }

    /// `rd = rs < rt` (unsigned).
    pub fn sltu(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Sltu { rd, rs, rt })
    }

    /// `rd = (rs * rt) as u32`.
    pub fn mul(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Mul { rd, rs, rt })
    }

    /// `rd = rt << sh`.
    pub fn sll(&mut self, rd: Reg, rt: Reg, sh: u8) -> &mut Self {
        self.emit(Instr::Sll { rd, rt, sh })
    }

    /// `rd = rt >> sh` (logical).
    pub fn srl(&mut self, rd: Reg, rt: Reg, sh: u8) -> &mut Self {
        self.emit(Instr::Srl { rd, rt, sh })
    }

    /// `rd = (rt as i32) >> sh`.
    pub fn sra(&mut self, rd: Reg, rt: Reg, sh: u8) -> &mut Self {
        self.emit(Instr::Sra { rd, rt, sh })
    }

    /// `rt = rs + imm` (sign-extended).
    pub fn addiu(&mut self, rt: Reg, rs: Reg, imm: i16) -> &mut Self {
        self.emit(Instr::Addiu { rt, rs, imm })
    }

    /// `rt = rs & imm` (zero-extended).
    pub fn andi(&mut self, rt: Reg, rs: Reg, imm: u16) -> &mut Self {
        self.emit(Instr::Andi { rt, rs, imm })
    }

    /// `rt = rs | imm` (zero-extended).
    pub fn ori(&mut self, rt: Reg, rs: Reg, imm: u16) -> &mut Self {
        self.emit(Instr::Ori { rt, rs, imm })
    }

    /// `rt = rs ^ imm` (zero-extended).
    pub fn xori(&mut self, rt: Reg, rs: Reg, imm: u16) -> &mut Self {
        self.emit(Instr::Xori { rt, rs, imm })
    }

    /// `rt = imm << 16`.
    pub fn lui(&mut self, rt: Reg, imm: u16) -> &mut Self {
        self.emit(Instr::Lui { rt, imm })
    }

    /// Pseudo-instruction: load a full 32-bit constant (one or two
    /// words).
    pub fn li(&mut self, rt: Reg, value: u32) -> &mut Self {
        let hi = (value >> 16) as u16;
        let lo = (value & 0xFFFF) as u16;
        if hi != 0 {
            self.lui(rt, hi);
            if lo != 0 {
                self.ori(rt, rt, lo);
            }
            self
        } else {
            self.ori(rt, Reg::ZERO, lo)
        }
    }

    /// Pseudo-instruction: `rd = rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.or(rd, rs, Reg::ZERO)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::NOP)
    }

    // --- memory ---

    /// `rt = mem8[base+off]` sign-extended.
    pub fn lb(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Lb { rt, base, off })
    }

    /// `rt = mem8[base+off]` zero-extended.
    pub fn lbu(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Lbu { rt, base, off })
    }

    /// `rt = mem16[base+off]` sign-extended.
    pub fn lh(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Lh { rt, base, off })
    }

    /// `rt = mem16[base+off]` zero-extended.
    pub fn lhu(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Lhu { rt, base, off })
    }

    /// `rt = mem32[base+off]`.
    pub fn lw(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Lw { rt, base, off })
    }

    /// `mem8[base+off] = rt`.
    pub fn sb(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Sb { rt, base, off })
    }

    /// `mem16[base+off] = rt`.
    pub fn sh(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Sh { rt, base, off })
    }

    /// `mem32[base+off] = rt`.
    pub fn sw(&mut self, rt: Reg, base: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Sw { rt, base, off })
    }

    // --- control flow ---

    /// Branch to `label` if `rs == rt`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.fixups
            .push((self.words.len(), label.to_owned(), FixupKind::Branch));
        self.emit(Instr::Beq { rs, rt, off: 0 })
    }

    /// Branch to `label` if `rs != rt`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.fixups
            .push((self.words.len(), label.to_owned(), FixupKind::Branch));
        self.emit(Instr::Bne { rs, rt, off: 0 })
    }

    /// Jump to `label`.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.fixups
            .push((self.words.len(), label.to_owned(), FixupKind::Jump));
        self.emit(Instr::J { target: 0 })
    }

    /// Jump-and-link to `label` (return address in `$ra`).
    pub fn jal(&mut self, label: &str) -> &mut Self {
        self.fixups
            .push((self.words.len(), label.to_owned(), FixupKind::Jump));
        self.emit(Instr::Jal { target: 0 })
    }

    /// Jump to the address in `rs`.
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::Jr { rs })
    }

    /// Software breakpoint — the ISS treats it as HALT.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Break)
    }

    /// Resolves labels and returns the machine words.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for undefined or duplicate labels, or
    /// branch targets outside the ±32 k-instruction range.
    pub fn assemble(mut self) -> Result<Vec<u32>, AsmError> {
        if let Some(dup) = self.duplicate {
            return Err(AsmError::DuplicateLabel(dup));
        }
        for (at, label, kind) in &self.fixups {
            let &target = self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            match kind {
                FixupKind::Branch => {
                    let delta = target as i64 - (*at as i64 + 1);
                    let off = i16::try_from(delta)
                        .map_err(|_| AsmError::BranchOutOfRange(label.clone()))?;
                    self.words[*at] |= (off as u16) as u32;
                }
                FixupKind::Jump => {
                    let word_target = (self.base / 4) as u64 + target as u64;
                    self.words[*at] |= (word_target as u32) & 0x03FF_FFFF;
                }
            }
        }
        Ok(self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut p = Program::new(0);
        p.label("top");
        p.addiu(Reg::T0, Reg::T0, 1);
        p.bne(Reg::T0, Reg::T1, "top"); // backward: -2
        p.beq(Reg::T0, Reg::T1, "end"); // forward: +1
        p.nop();
        p.label("end");
        p.halt();
        let words = p.assemble().unwrap();
        assert_eq!(
            Instr::decode(words[1]),
            Some(Instr::Bne {
                rs: Reg::T0,
                rt: Reg::T1,
                off: -2
            })
        );
        assert_eq!(
            Instr::decode(words[2]),
            Some(Instr::Beq {
                rs: Reg::T0,
                rt: Reg::T1,
                off: 1
            })
        );
    }

    #[test]
    fn jumps_use_absolute_word_targets() {
        let mut p = Program::new(0x100);
        p.j("fn"); // word index 0 at byte 0x100
        p.nop();
        p.label("fn");
        p.halt();
        let words = p.assemble().unwrap();
        // "fn" is the third instruction: byte 0x108, word target 0x42.
        assert_eq!(Instr::decode(words[0]), Some(Instr::J { target: 0x42 }));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut p = Program::new(0);
        p.j("nowhere");
        assert_eq!(
            p.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".to_owned()))
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut p = Program::new(0);
        p.label("x");
        p.nop();
        p.label("x");
        assert_eq!(p.assemble(), Err(AsmError::DuplicateLabel("x".to_owned())));
    }

    #[test]
    fn li_expands_minimally() {
        let mut p = Program::new(0);
        p.li(Reg::T0, 0x12); // one word
        p.li(Reg::T1, 0x1234_0000); // one word (lui only)
        p.li(Reg::T2, 0x1234_5678); // two words
        let words = p.assemble().unwrap();
        assert_eq!(words.len(), 4);
        assert_eq!(
            Instr::decode(words[1]),
            Some(Instr::Lui {
                rt: Reg::T1,
                imm: 0x1234
            })
        );
    }

    #[test]
    fn here_tracks_addresses() {
        let mut p = Program::new(0x40);
        assert_eq!(p.here(), 0x40);
        p.nop();
        assert_eq!(p.here(), 0x44);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn misaligned_base_rejected() {
        let _ = Program::new(0x41);
    }
}
