//! Platform-level component energy reporting — the glue between the
//! peripherals' activity counters and the component energy models of
//! `hierbus-power` (the paper's announced extension).
//!
//! After a run, every counter-bearing peripheral is read back out of the
//! bus (via [`HasSlaves`]) and mapped through its activity-based model;
//! the result is a per-component energy breakdown to set beside the bus
//! energy estimate.

use crate::crypto::CryptoAccel;
use crate::platform::PlatformMap;
use crate::rng::TrueRng;
use crate::timer::DualTimer;
use crate::uart::Uart;
use hierbus_core::HasSlaves;
use hierbus_power::{ComponentEnergyModel, ComponentEstimate};
use std::fmt;

/// Per-component energy estimates for one run of the platform.
#[derive(Debug, Clone)]
pub struct PlatformEnergyReport {
    /// Cycles the report covers.
    pub cycles: u64,
    /// One estimate per modeled component.
    pub components: Vec<ComponentEstimate>,
}

impl PlatformEnergyReport {
    /// Total component energy in pJ (excluding the bus itself).
    pub fn total_pj(&self) -> f64 {
        self.components.iter().map(|c| c.total_pj()).sum()
    }

    /// The estimate of one component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentEstimate> {
        self.components.iter().find(|c| c.name == name)
    }
}

impl fmt::Display for PlatformEnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "component energy over {} cycles ({:.1} pJ total):",
            self.cycles,
            self.total_pj()
        )?;
        for c in &self.components {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// Builds the component energy report from a platform bus after a run of
/// `cycles` cycles.
///
/// UART register-access counts are approximated as zero here (the bus
/// energy models already charge the SFR transactions on the bus side);
/// the component models charge the *internal* activity: bytes shifted,
/// counter decrements, RNG words, cipher blocks.
///
/// # Panics
///
/// Panics if `bus` is not a [`Platform`](crate::platform::Platform)-built
/// bus (the standard slave ids must resolve to the expected peripheral
/// types).
pub fn platform_component_energy<B: HasSlaves>(bus: &B, cycles: u64) -> PlatformEnergyReport {
    let uart: &Uart = bus
        .slave_as(PlatformMap::UART)
        .expect("platform uart at its standard slave id");
    let timer: &DualTimer = bus
        .slave_as(PlatformMap::TIMER)
        .expect("platform timer at its standard slave id");
    let rng: &TrueRng = bus
        .slave_as(PlatformMap::RNG)
        .expect("platform rng at its standard slave id");
    let crypto: &CryptoAccel = bus
        .slave_as(PlatformMap::CRYPTO)
        .expect("platform crypto at its standard slave id");

    let components = vec![
        ComponentEnergyModel::uart().estimate(cycles, &[uart.sent().len() as u64, 0]),
        ComponentEnergyModel::timer().estimate(
            cycles,
            &[
                timer.decrements(0) + timer.decrements(1),
                timer.expiries(0) + timer.expiries(1),
            ],
        ),
        ComponentEnergyModel::rng().estimate(cycles, &[rng.words_drawn()]),
        ComponentEnergyModel::crypto().estimate(cycles, &[crypto.blocks_processed(), 0]),
    ];
    PlatformEnergyReport { cycles, components }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSystem;
    use crate::isa::Reg;
    use crate::platform::Platform;
    use crate::program::Program;

    #[test]
    fn report_reflects_peripheral_activity() {
        // Start a timer, draw two RNG words, run one crypto block, send
        // a UART byte.
        let mut p = Program::new(PlatformMap::RESET_PC);
        p.li(Reg::T0, PlatformMap::TIMER_BASE);
        p.li(Reg::T1, 50);
        p.sw(Reg::T1, Reg::T0, 0x4);
        p.li(Reg::T1, 1);
        p.sw(Reg::T1, Reg::T0, 0x0);
        p.li(Reg::T0, PlatformMap::RNG_BASE);
        p.lw(Reg::T2, Reg::T0, 0);
        p.lw(Reg::T3, Reg::T0, 0);
        p.li(Reg::T0, PlatformMap::CRYPTO_BASE);
        p.li(Reg::T1, 1);
        p.sw(Reg::T1, Reg::T0, 0x00); // start encrypt
        p.label("poll");
        p.lw(Reg::T2, Reg::T0, 0x04);
        p.andi(Reg::T2, Reg::T2, 1);
        p.bne(Reg::T2, Reg::ZERO, "poll");
        p.li(Reg::T0, PlatformMap::UART_BASE);
        p.li(Reg::T1, 2);
        p.sw(Reg::T1, Reg::T0, 0x8);
        p.li(Reg::T1, 0x5A);
        p.sw(Reg::T1, Reg::T0, 0x0);
        p.label("drain");
        p.lw(Reg::T2, Reg::T0, 0x4);
        p.andi(Reg::T2, Reg::T2, 1);
        p.bne(Reg::T2, Reg::ZERO, "drain");
        p.halt();
        let words = p.assemble().unwrap();

        let mut platform = Platform::new();
        platform.load_boot_program(&words);
        let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);
        let report = sys.run_until_halt(1_000_000, |_| {});
        assert!(report.fault.is_none());

        let energy = platform_component_energy(sys.bus(), report.cycles);
        assert_eq!(energy.components.len(), 4);
        // Every component has static energy; the active ones have
        // dynamic energy on top.
        for c in &energy.components {
            assert!(c.static_pj > 0.0, "{}", c.name);
        }
        assert!(energy.component("uart").unwrap().dynamic_pj() > 0.0);
        assert!(energy.component("timer").unwrap().dynamic_pj() > 0.0);
        assert!(energy.component("rng").unwrap().dynamic_pj() > 0.0);
        assert!(energy.component("crypto").unwrap().dynamic_pj() > 0.0);
        // The crypto block dominates this mix.
        assert!(
            energy.component("crypto").unwrap().dynamic_pj()
                > energy.component("rng").unwrap().dynamic_pj()
        );
        // The display names every component.
        let text = energy.to_string();
        for name in ["uart", "timer", "rng", "crypto"] {
            assert!(text.contains(name), "{text}");
        }
    }

    #[test]
    fn idle_platform_burns_only_static_energy() {
        let mut p = Program::new(PlatformMap::RESET_PC);
        p.nop();
        p.halt();
        let words = p.assemble().unwrap();
        let mut platform = Platform::new();
        platform.load_boot_program(&words);
        let mut sys = CpuSystem::new(platform.into_tlm1(), PlatformMap::RESET_PC);
        let report = sys.run_until_halt(10_000, |_| {});
        let energy = platform_component_energy(sys.bus(), report.cycles);
        for c in &energy.components {
            assert_eq!(c.dynamic_pj(), 0.0, "{} must be idle", c.name);
        }
        assert!(energy.total_pj() > 0.0);
    }
}
