//! The dual 16-bit timer block (T0/T1 of the target platform).
//!
//! Register map (word offsets):
//!
//! | offset | name      | access | contents |
//! |-------:|-----------|--------|----------|
//! | 0x00   | T0_CTRL   | R/W    | bit 0 enable, bit 1 auto-reload |
//! | 0x04   | T0_COUNT  | R/W    | current 16-bit down-counter |
//! | 0x08   | T0_RELOAD | R/W    | reload value |
//! | 0x0C   | T0_FLAGS  | R/W1C  | bit 0 expired (write 1 to clear) |
//! | 0x10.. | T1_*      |        | same layout for timer 1 |
//!
//! Counters decrement once per bus cycle while enabled, advanced by
//! delta catch-up ticks so idle-skipped cycles still count.

use hierbus_core::{SlaveReply, TlmSlave};
use hierbus_ec::{AccessRights, Address, AddressRange, SlaveConfig, WaitProfile};

/// Control register bits.
pub mod ctrl {
    /// Counting enabled.
    pub const ENABLE: u32 = 1 << 0;
    /// Reload and continue on expiry instead of stopping at zero.
    pub const AUTO_RELOAD: u32 = 1 << 1;
}

#[derive(Debug, Clone, Copy, Default)]
struct TimerUnit {
    enable: bool,
    auto_reload: bool,
    count: u16,
    reload: u16,
    expired: bool,
    /// Expiries since reset (diagnostic and energy-model input).
    expiries: u64,
    /// Counter decrements since reset (energy-model input).
    decrements: u64,
}

impl TimerUnit {
    fn advance(&mut self, mut delta: u64) {
        while self.enable && delta > 0 {
            if self.count as u64 > delta {
                self.count -= delta as u16;
                self.decrements += delta;
                return;
            }
            delta -= self.count as u64;
            self.decrements += self.count as u64;
            self.expired = true;
            self.expiries += 1;
            if self.auto_reload && self.reload > 0 {
                self.count = self.reload;
            } else {
                self.count = 0;
                self.enable = false;
                return;
            }
        }
    }
}

/// The two-timer peripheral.
#[derive(Debug, Clone)]
pub struct DualTimer {
    config: SlaveConfig,
    units: [TimerUnit; 2],
    last_cycle: u64,
}

impl DualTimer {
    /// Creates the block at the given window (needs at least 8 words).
    ///
    /// # Panics
    ///
    /// Panics if the window is smaller than 32 bytes.
    pub fn new(range: AddressRange) -> Self {
        assert!(range.size() >= 32, "timer window must hold 8 registers");
        DualTimer {
            config: SlaveConfig::new(range, WaitProfile::new(0, 0, 0), AccessRights::RW),
            units: [TimerUnit::default(); 2],
            last_cycle: 0,
        }
    }

    /// Expiry count of a timer (0 or 1) since reset.
    ///
    /// # Panics
    ///
    /// Panics if `unit > 1`.
    pub fn expiries(&self, unit: usize) -> u64 {
        self.units[unit].expiries
    }

    /// Counter decrements of a timer (0 or 1) since reset.
    ///
    /// # Panics
    ///
    /// Panics if `unit > 1`.
    pub fn decrements(&self, unit: usize) -> u64 {
        self.units[unit].decrements
    }

    fn decode(&self, addr: Address) -> Option<(usize, u64)> {
        let off = self.config.range.offset_of(addr)? & !0x3;
        if off >= 0x20 {
            return None;
        }
        Some(((off / 0x10) as usize, off % 0x10))
    }
}

impl TlmSlave for DualTimer {
    fn config(&self) -> SlaveConfig {
        self.config
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn irq(&self) -> bool {
        // Level-sensitive: asserted while any expiry flag is uncleared.
        self.units.iter().any(|u| u.expired)
    }

    fn tick(&mut self, cycle: u64) {
        let delta = cycle.saturating_sub(self.last_cycle);
        self.last_cycle = cycle;
        for u in &mut self.units {
            u.advance(delta);
        }
    }

    fn read_word(&mut self, addr: Address) -> SlaveReply<u32> {
        let Some((unit, reg)) = self.decode(addr) else {
            return SlaveReply::Error;
        };
        let t = &self.units[unit];
        match reg {
            0x0 => SlaveReply::Ok(
                (t.enable as u32) * ctrl::ENABLE + (t.auto_reload as u32) * ctrl::AUTO_RELOAD,
            ),
            0x4 => SlaveReply::Ok(t.count as u32),
            0x8 => SlaveReply::Ok(t.reload as u32),
            0xC => SlaveReply::Ok(t.expired as u32),
            _ => SlaveReply::Error,
        }
    }

    fn write_word(&mut self, addr: Address, data: u32, _ben: u8) -> SlaveReply<()> {
        let Some((unit, reg)) = self.decode(addr) else {
            return SlaveReply::Error;
        };
        let t = &mut self.units[unit];
        match reg {
            0x0 => {
                t.enable = data & ctrl::ENABLE != 0;
                t.auto_reload = data & ctrl::AUTO_RELOAD != 0;
                SlaveReply::Ok(())
            }
            0x4 => {
                t.count = data as u16;
                SlaveReply::Ok(())
            }
            0x8 => {
                t.reload = data as u16;
                SlaveReply::Ok(())
            }
            0xC => {
                if data & 1 != 0 {
                    t.expired = false;
                }
                SlaveReply::Ok(())
            }
            _ => SlaveReply::Error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0xA000;

    fn timer() -> DualTimer {
        DualTimer::new(AddressRange::new(Address::new(BASE), 0x100))
    }

    fn addr(off: u64) -> Address {
        Address::new(BASE + off)
    }

    #[test]
    fn one_shot_counts_down_and_stops() {
        let mut t = timer();
        t.write_word(addr(0x4), 10, 0b1111);
        t.write_word(addr(0x0), ctrl::ENABLE, 0b1111);
        t.tick(6);
        assert_eq!(t.read_word(addr(0x4)), SlaveReply::Ok(4));
        t.tick(20);
        assert_eq!(t.read_word(addr(0x4)), SlaveReply::Ok(0));
        assert_eq!(t.read_word(addr(0xC)), SlaveReply::Ok(1)); // expired
        assert_eq!(t.read_word(addr(0x0)), SlaveReply::Ok(0)); // disabled
        assert_eq!(t.expiries(0), 1);
    }

    #[test]
    fn auto_reload_keeps_running() {
        let mut t = timer();
        t.write_word(addr(0x8), 5, 0b1111);
        t.write_word(addr(0x4), 5, 0b1111);
        t.write_word(addr(0x0), ctrl::ENABLE | ctrl::AUTO_RELOAD, 0b1111);
        t.tick(23);
        assert_eq!(t.expiries(0), 4);
        let SlaveReply::Ok(ctrl_val) = t.read_word(addr(0x0)) else {
            panic!("ctrl must read");
        };
        assert!(ctrl_val & ctrl::ENABLE != 0);
    }

    #[test]
    fn timers_are_independent() {
        let mut t = timer();
        t.write_word(addr(0x14), 100, 0b1111); // T1 count
        t.write_word(addr(0x10), ctrl::ENABLE, 0b1111); // T1 enable
        t.tick(10);
        assert_eq!(t.read_word(addr(0x14)), SlaveReply::Ok(90));
        assert_eq!(t.read_word(addr(0x4)), SlaveReply::Ok(0)); // T0 untouched
    }

    #[test]
    fn flag_clears_on_write_one() {
        let mut t = timer();
        t.write_word(addr(0x4), 1, 0b1111);
        t.write_word(addr(0x0), ctrl::ENABLE, 0b1111);
        t.tick(2);
        assert_eq!(t.read_word(addr(0xC)), SlaveReply::Ok(1));
        t.write_word(addr(0xC), 1, 0b1111);
        assert_eq!(t.read_word(addr(0xC)), SlaveReply::Ok(0));
    }

    #[test]
    fn out_of_window_register_errors() {
        let mut t = timer();
        assert_eq!(t.read_word(addr(0x24)), SlaveReply::Error);
    }
}
