//! Property-based tests of the protocol layer's algebra: merge patterns,
//! address arithmetic, frame diffs, and outstanding-limit accounting.

use hierbus_ec::record::TxnRecord;
use hierbus_ec::*;
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = DataWidth> {
    prop_oneof![
        Just(DataWidth::W8),
        Just(DataWidth::W16),
        Just(DataWidth::W32),
    ]
}

proptest! {
    #[test]
    fn merge_extract_insert_roundtrip(
        word in any::<u32>(),
        value in any::<u32>(),
        offset in 0u64..4,
        width in arb_width(),
    ) {
        // Align the offset to the width.
        let offset = offset & !(width.bytes() - 1);
        let addr = Address::new(0x1000 + offset);
        let merged = width.insert(addr, word, value);
        // Extracting what was inserted returns the masked value.
        prop_assert_eq!(width.extract(addr, merged), value & width.value_mask());
        // Lanes outside the byte enables are untouched.
        let ben = width.byte_enables(addr);
        for lane in 0..4u32 {
            if ben & (1 << lane) == 0 {
                let mask = 0xFFu32 << (8 * lane);
                prop_assert_eq!(merged & mask, word & mask);
            }
        }
    }

    #[test]
    fn byte_enables_cover_exactly_the_width(
        offset in 0u64..4,
        width in arb_width(),
    ) {
        let offset = offset & !(width.bytes() - 1);
        let ben = width.byte_enables(Address::new(offset));
        prop_assert_eq!(u64::from(ben.count_ones()), width.bytes());
    }

    #[test]
    fn address_masking_is_idempotent(raw in any::<u64>()) {
        let a = Address::new(raw);
        prop_assert_eq!(Address::new(a.raw()), a);
        prop_assert!(a.raw() < (1u64 << 36));
    }

    #[test]
    fn frame_diff_is_symmetric_and_zero_on_self(
        addr in 0u64..(1 << 36),
        rdata in any::<u32>(),
        wdata in any::<u32>(),
        flags in any::<u8>(),
    ) {
        let a = SignalFrame {
            a_addr: addr,
            r_data: rdata,
            w_data: wdata,
            a_valid: flags & 1 != 0,
            r_valid: flags & 2 != 0,
            w_valid: flags & 4 != 0,
            ..SignalFrame::default()
        };
        let b = SignalFrame::default();
        prop_assert_eq!(a.diff(&a).total(), 0);
        prop_assert_eq!(a.diff(&b).total(), b.diff(&a).total());
        // The diff equals the Hamming distance of the packed fields.
        let expected = addr.count_ones()
            + rdata.count_ones()
            + wdata.count_ones()
            + u32::from(a.a_valid)
            + u32::from(a.r_valid)
            + u32::from(a.w_valid);
        prop_assert_eq!(a.diff(&b).total(), expected);
    }

    #[test]
    fn outstanding_tracker_never_exceeds_limits(
        script in proptest::collection::vec((0u8..3, any::<bool>()), 1..200),
    ) {
        let mut t = OutstandingTracker::new(OutstandingLimits::CORE_DEFAULT);
        for (cat_sel, issue) in script {
            let cat = TxnCategory::ALL[cat_sel as usize];
            if issue {
                let _ = t.try_issue(cat);
            } else if t.in_flight(cat) > 0 {
                t.complete(cat);
            }
            for c in TxnCategory::ALL {
                prop_assert!(t.in_flight(c) <= OutstandingLimits::CORE_DEFAULT.limit(c));
            }
        }
    }

    #[test]
    fn burst_beat_addresses_stay_in_order_and_aligned(
        word in 0u64..(1 << 30),
        burst_sel in 0u8..4,
    ) {
        let burst = BurstLen::ALL[burst_sel as usize];
        let txn = Transaction::fetch(TxnId(0), Address::new(word * 4), burst);
        let mut prev = None;
        for i in 0..txn.beats() {
            let a = txn.beat_addr(i);
            prop_assert!(a.is_aligned(4));
            if let Some(p) = prev {
                prop_assert_eq!(a.raw(), p + 4);
            }
            prev = Some(a.raw());
        }
    }

    #[test]
    fn record_latency_is_positive_and_consistent(
        issue in 0u64..1_000_000,
        duration in 0u64..10_000,
    ) {
        let r = TxnRecord {
            id: TxnId(0),
            kind: AccessKind::DataRead,
            addr: Address::new(0),
            width: DataWidth::W32,
            burst: BurstLen::Single,
            issue_cycle: issue,
            addr_done_cycle: Some(issue),
            done_cycle: Some(issue + duration),
            error: None,
            data: Vec::new(),
        };
        prop_assert_eq!(r.latency(), Some(duration + 1));
    }
}
