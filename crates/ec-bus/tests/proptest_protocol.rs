//! Randomized tests of the protocol layer's algebra: merge patterns,
//! address arithmetic, frame diffs, and outstanding-limit accounting.
//!
//! Formerly `proptest` properties; now deterministic seeded loops over
//! the same value spaces so the suite runs with no registry access and
//! every failure reproduces from its printed case index.

use hierbus_ec::record::TxnRecord;
use hierbus_ec::*;
use hierbus_sim::SplitMix64;

const CASES: u64 = 256;

const WIDTHS: [DataWidth; 3] = [DataWidth::W8, DataWidth::W16, DataWidth::W32];

#[test]
fn merge_extract_insert_roundtrip() {
    let mut rng = SplitMix64::new(0xA110);
    for case in 0..CASES {
        let word = rng.next_u32();
        let value = rng.next_u32();
        let width = WIDTHS[rng.range_u32(0, 3) as usize];
        // Align the offset to the width.
        let offset = rng.range_u64(0, 4) & !(width.bytes() - 1);
        let addr = Address::new(0x1000 + offset);
        let merged = width.insert(addr, word, value);
        // Extracting what was inserted returns the masked value.
        assert_eq!(
            width.extract(addr, merged),
            value & width.value_mask(),
            "case {case}"
        );
        // Lanes outside the byte enables are untouched.
        let ben = width.byte_enables(addr);
        for lane in 0..4u32 {
            if ben & (1 << lane) == 0 {
                let mask = 0xFFu32 << (8 * lane);
                assert_eq!(merged & mask, word & mask, "case {case} lane {lane}");
            }
        }
    }
}

#[test]
fn byte_enables_cover_exactly_the_width() {
    // Small enough to check exhaustively.
    for width in WIDTHS {
        for offset in 0..4u64 {
            let offset = offset & !(width.bytes() - 1);
            let ben = width.byte_enables(Address::new(offset));
            assert_eq!(u64::from(ben.count_ones()), width.bytes());
        }
    }
}

#[test]
fn address_masking_is_idempotent() {
    let mut rng = SplitMix64::new(0xADD7);
    for _ in 0..CASES {
        let a = Address::new(rng.next_u64());
        assert_eq!(Address::new(a.raw()), a);
        assert!(a.raw() < (1u64 << 36));
    }
}

#[test]
fn frame_diff_is_symmetric_and_zero_on_self() {
    let mut rng = SplitMix64::new(0xF8A3);
    for case in 0..CASES {
        let addr = rng.range_u64(0, 1 << 36);
        let rdata = rng.next_u32();
        let wdata = rng.next_u32();
        let flags = rng.next_u32() as u8;
        let a = SignalFrame {
            a_addr: addr,
            r_data: rdata,
            w_data: wdata,
            a_valid: flags & 1 != 0,
            r_valid: flags & 2 != 0,
            w_valid: flags & 4 != 0,
            ..SignalFrame::default()
        };
        let b = SignalFrame::default();
        assert_eq!(a.diff(&a).total(), 0, "case {case}");
        assert_eq!(a.diff(&b).total(), b.diff(&a).total(), "case {case}");
        // The diff equals the Hamming distance of the packed fields.
        let expected = addr.count_ones()
            + rdata.count_ones()
            + wdata.count_ones()
            + u32::from(a.a_valid)
            + u32::from(a.r_valid)
            + u32::from(a.w_valid);
        assert_eq!(a.diff(&b).total(), expected, "case {case}");
    }
}

#[test]
fn outstanding_tracker_never_exceeds_limits() {
    let mut rng = SplitMix64::new(0x0575);
    for case in 0..64 {
        let mut t = OutstandingTracker::new(OutstandingLimits::CORE_DEFAULT);
        let steps = rng.range_u64(1, 200);
        for _ in 0..steps {
            let cat = TxnCategory::ALL[rng.range_u32(0, 3) as usize];
            if rng.bool(0.5) {
                let _ = t.try_issue(cat);
            } else if t.in_flight(cat) > 0 {
                t.complete(cat);
            }
            for c in TxnCategory::ALL {
                assert!(
                    t.in_flight(c) <= OutstandingLimits::CORE_DEFAULT.limit(c),
                    "case {case}"
                );
            }
        }
    }
}

#[test]
fn burst_beat_addresses_stay_in_order_and_aligned() {
    let mut rng = SplitMix64::new(0xB425);
    for case in 0..CASES {
        let word = rng.range_u64(0, 1 << 30);
        let burst = BurstLen::ALL[rng.range_u32(0, 4) as usize];
        let txn = Transaction::fetch(TxnId(0), Address::new(word * 4), burst);
        let mut prev = None;
        for i in 0..txn.beats() {
            let a = txn.beat_addr(i);
            assert!(a.is_aligned(4), "case {case}");
            if let Some(p) = prev {
                assert_eq!(a.raw(), p + 4, "case {case}");
            }
            prev = Some(a.raw());
        }
    }
}

#[test]
fn record_latency_is_positive_and_consistent() {
    let mut rng = SplitMix64::new(0x1A7C);
    for case in 0..CASES {
        let issue = rng.range_u64(0, 1_000_000);
        let duration = rng.range_u64(0, 10_000);
        let r = TxnRecord {
            id: TxnId(0),
            kind: AccessKind::DataRead,
            addr: Address::new(0),
            width: DataWidth::W32,
            burst: BurstLen::Single,
            issue_cycle: issue,
            addr_done_cycle: Some(issue),
            done_cycle: Some(issue + duration),
            error: None,
            data: Vec::new(),
        };
        assert_eq!(r.latency(), Some(duration + 1), "case {case}");
    }
}
