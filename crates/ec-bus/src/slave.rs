//! Slave configuration — the paper's "slave control interface".
//!
//! §3.1: *"A slave has some additional properties, which are accessible by
//! the slave control interface. These are the address range of the slave,
//! wait states for address, read, and write phases, and bits to indicate
//! the access rights like read, write, and execute."*

use crate::addr::{Address, AddressRange};
use crate::txn::AccessKind;
use std::fmt;

/// Index of a slave on the bus controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlaveId(pub usize);

impl fmt::Display for SlaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slave{}", self.0)
    }
}

/// Read/write/execute permission bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessRights {
    /// Data loads allowed.
    pub read: bool,
    /// Data stores allowed.
    pub write: bool,
    /// Instruction fetches allowed.
    pub execute: bool,
}

impl AccessRights {
    /// Read + write + execute (e.g. scratchpad RAM holding code).
    pub const RWX: AccessRights = AccessRights {
        read: true,
        write: true,
        execute: true,
    };
    /// Read + execute (e.g. program ROM).
    pub const RX: AccessRights = AccessRights {
        read: true,
        write: false,
        execute: true,
    };
    /// Read + write, no execute (e.g. memory-mapped peripherals).
    pub const RW: AccessRights = AccessRights {
        read: true,
        write: true,
        execute: false,
    };
    /// Read only.
    pub const RO: AccessRights = AccessRights {
        read: true,
        write: false,
        execute: false,
    };

    /// True if `kind` is permitted.
    pub const fn permits(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::InstrFetch => self.execute,
            AccessKind::DataRead => self.read,
            AccessKind::DataWrite => self.write,
        }
    }
}

impl fmt::Display for AccessRights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' }
        )
    }
}

/// Wait states a slave inserts into each protocol phase.
///
/// `address` delays completion of the address phase; `read`/`write` delay
/// each data beat of the respective direction. Zero everywhere means the
/// phase completes in the cycle it is initiated, which the protocol allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WaitProfile {
    /// Extra cycles before the address phase completes.
    pub address: u32,
    /// Extra cycles per read data beat.
    pub read: u32,
    /// Extra cycles per write data beat.
    pub write: u32,
}

impl WaitProfile {
    /// No wait states in any phase.
    pub const ZERO: WaitProfile = WaitProfile {
        address: 0,
        read: 0,
        write: 0,
    };

    /// Creates a profile from (address, read, write) wait-state counts.
    pub const fn new(address: u32, read: u32, write: u32) -> Self {
        WaitProfile {
            address,
            read,
            write,
        }
    }

    /// Wait states for one data beat of `kind`.
    pub const fn data_wait(&self, kind: AccessKind) -> u32 {
        match kind {
            AccessKind::InstrFetch | AccessKind::DataRead => self.read,
            AccessKind::DataWrite => self.write,
        }
    }
}

impl fmt::Display for WaitProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}/r{}/w{}", self.address, self.read, self.write)
    }
}

/// Static configuration of one slave: range, wait states, rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlaveConfig {
    /// The address window the slave decodes.
    pub range: AddressRange,
    /// Wait states inserted per phase.
    pub waits: WaitProfile,
    /// Permitted access kinds.
    pub rights: AccessRights,
}

impl SlaveConfig {
    /// Creates a slave configuration.
    pub const fn new(range: AddressRange, waits: WaitProfile, rights: AccessRights) -> Self {
        SlaveConfig {
            range,
            waits,
            rights,
        }
    }

    /// True if the slave decodes `addr`.
    pub fn contains(&self, addr: Address) -> bool {
        self.range.contains(addr)
    }
}

impl fmt::Display for SlaveConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} waits={}", self.range, self.rights, self.waits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rights_permit_matrix() {
        assert!(AccessRights::RX.permits(AccessKind::InstrFetch));
        assert!(AccessRights::RX.permits(AccessKind::DataRead));
        assert!(!AccessRights::RX.permits(AccessKind::DataWrite));
        assert!(AccessRights::RW.permits(AccessKind::DataWrite));
        assert!(!AccessRights::RW.permits(AccessKind::InstrFetch));
        assert!(AccessRights::RWX.permits(AccessKind::InstrFetch));
        assert!(!AccessRights::RO.permits(AccessKind::DataWrite));
    }

    #[test]
    fn rights_display() {
        assert_eq!(AccessRights::RWX.to_string(), "rwx");
        assert_eq!(AccessRights::RO.to_string(), "r--");
    }

    #[test]
    fn wait_profile_per_kind() {
        let w = WaitProfile::new(1, 2, 3);
        assert_eq!(w.data_wait(AccessKind::InstrFetch), 2);
        assert_eq!(w.data_wait(AccessKind::DataRead), 2);
        assert_eq!(w.data_wait(AccessKind::DataWrite), 3);
        assert_eq!(WaitProfile::ZERO.address, 0);
    }

    #[test]
    fn config_contains() {
        let cfg = SlaveConfig::new(
            AddressRange::new(Address::new(0x8000), 0x1000),
            WaitProfile::ZERO,
            AccessRights::RW,
        );
        assert!(cfg.contains(Address::new(0x8abc)));
        assert!(!cfg.contains(Address::new(0x9000)));
    }
}
