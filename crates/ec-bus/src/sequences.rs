//! Verification and workload sequences.
//!
//! §4.1 of the paper verifies the models against *"transaction examples
//! defined in the EC interface specification: single read and write with
//! and without wait states, back-to-back reads, back-to-back writes, read
//! followed by write and write followed by read with reordering, and at
//! least burst read and writes"*. This module encodes that suite as data
//! every model can replay, plus the random mixed-traffic generator used
//! for the simulation-performance measurements (§4.2: *"all combinations
//! between single read, single write, burst read, and burst write
//! transactions"*).

use crate::addr::Address;
use crate::merge::DataWidth;
use crate::slave::WaitProfile;
use crate::txn::{AccessKind, BurstLen};
use hierbus_sim::SplitMix64;
use std::fmt;

/// One master-side stimulus: wait `idle_before` cycles after the previous
/// op has been *issued*, then start this transaction.
///
/// `idle_before = 0` requests back-to-back issue (the next transaction's
/// address phase as early as the protocol allows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterOp {
    /// Idle cycles inserted before issuing.
    pub idle_before: u32,
    /// Fetch, load or store.
    pub kind: AccessKind,
    /// Start address.
    pub addr: Address,
    /// Beat width.
    pub width: DataWidth,
    /// Beat count.
    pub burst: BurstLen,
    /// Write payload (one word per beat); empty for reads. Shared for
    /// the same reason as [`Scenario::ops`]: issuing a transaction
    /// hands the payload to the bus as a reference-count bump instead
    /// of an allocation per write.
    pub data: std::sync::Arc<[u32]>,
}

impl MasterOp {
    /// A single-beat word read at `addr`.
    pub fn read(addr: u64) -> Self {
        MasterOp {
            idle_before: 0,
            kind: AccessKind::DataRead,
            addr: Address::new(addr),
            width: DataWidth::W32,
            burst: BurstLen::Single,
            data: Vec::new().into(),
        }
    }

    /// A single-beat word write of `value` at `addr`.
    pub fn write(addr: u64, value: u32) -> Self {
        MasterOp {
            idle_before: 0,
            kind: AccessKind::DataWrite,
            addr: Address::new(addr),
            width: DataWidth::W32,
            burst: BurstLen::Single,
            data: vec![value].into(),
        }
    }

    /// An instruction fetch at `addr` (single or burst).
    pub fn fetch(addr: u64, burst: BurstLen) -> Self {
        MasterOp {
            idle_before: 0,
            kind: AccessKind::InstrFetch,
            addr: Address::new(addr),
            width: DataWidth::W32,
            burst,
            data: Vec::new().into(),
        }
    }

    /// A burst read of `burst` beats at `addr`.
    pub fn burst_read(addr: u64, burst: BurstLen) -> Self {
        MasterOp {
            burst,
            ..MasterOp::read(addr)
        }
    }

    /// A burst write at `addr` with the given beat payloads.
    ///
    /// # Panics
    ///
    /// Panics if `data` length is not a legal burst beat count (1/2/4/8).
    pub fn burst_write(addr: u64, data: Vec<u32>) -> Self {
        let burst = match data.len() {
            1 => BurstLen::Single,
            2 => BurstLen::B2,
            4 => BurstLen::B4,
            8 => BurstLen::B8,
            n => panic!("no burst length with {n} beats"),
        };
        MasterOp {
            idle_before: 0,
            kind: AccessKind::DataWrite,
            addr: Address::new(addr),
            width: DataWidth::W32,
            burst,
            data: data.into(),
        }
    }

    /// Returns this op with `idle` idle cycles before issue.
    pub fn after_idle(mut self, idle: u32) -> Self {
        self.idle_before = idle;
        self
    }
}

/// A named stimulus sequence plus the wait-state profile the target test
/// slave must be configured with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Short identifier, e.g. `"single_read_wait"`.
    pub name: &'static str,
    /// The stimuli, in issue order. Shared so that handing a scenario
    /// to a system is a reference-count bump, not a deep copy — perf
    /// arms and campaign workers re-run the same scenario thousands of
    /// times and the per-run clone/drop of the op list (with its burst
    /// data vectors) used to dominate setup cost.
    pub ops: std::sync::Arc<[MasterOp]>,
    /// Wait states the test slave inserts.
    pub waits: WaitProfile,
}

impl Scenario {
    /// Total data beats across all ops (useful for throughput accounting).
    pub fn total_beats(&self) -> u64 {
        self.ops.iter().map(|op| op.burst.beats() as u64).sum()
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the scenario has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} txns, waits {})",
            self.name,
            self.ops.len(),
            self.waits
        )
    }
}

/// Base address the canned scenarios target (inside the test slave's
/// window).
pub const SCENARIO_BASE: u64 = 0x100;

/// The full §4.1 verification suite.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        single_read(false),
        single_read(true),
        single_write(false),
        single_write(true),
        back_to_back_reads(),
        back_to_back_writes(),
        write_after_read(),
        read_after_write_reordered(),
        burst_reads(),
        burst_writes(),
    ]
}

/// The subset used to characterize the energy models (disjoint use from
/// evaluation is the caller's responsibility; see `hierbus-power`).
pub fn training_scenarios() -> Vec<Scenario> {
    vec![
        single_read(false),
        single_write(true),
        back_to_back_reads(),
        burst_writes(),
    ]
}

/// Single word read; `wait` selects a slave with one address and two read
/// wait states.
pub fn single_read(wait: bool) -> Scenario {
    Scenario {
        name: if wait {
            "single_read_wait"
        } else {
            "single_read"
        },
        ops: vec![MasterOp::read(SCENARIO_BASE)].into(),
        waits: if wait {
            WaitProfile::new(1, 2, 2)
        } else {
            WaitProfile::ZERO
        },
    }
}

/// Single word write; `wait` selects a slave with one address and three
/// write wait states.
pub fn single_write(wait: bool) -> Scenario {
    Scenario {
        name: if wait {
            "single_write_wait"
        } else {
            "single_write"
        },
        ops: vec![MasterOp::write(SCENARIO_BASE, 0xCAFE_F00D)].into(),
        waits: if wait {
            WaitProfile::new(1, 0, 3)
        } else {
            WaitProfile::ZERO
        },
    }
}

/// Four reads issued back to back at consecutive word addresses.
pub fn back_to_back_reads() -> Scenario {
    Scenario {
        name: "back_to_back_reads",
        ops: (0..4)
            .map(|i| MasterOp::read(SCENARIO_BASE + 4 * i))
            .collect(),
        waits: WaitProfile::ZERO,
    }
}

/// Four writes issued back to back at consecutive word addresses.
pub fn back_to_back_writes() -> Scenario {
    Scenario {
        name: "back_to_back_writes",
        ops: (0..4)
            .map(|i| MasterOp::write(SCENARIO_BASE + 4 * i, 0x1111_1111 * (i as u32 + 1)))
            .collect(),
        waits: WaitProfile::ZERO,
    }
}

/// A read immediately followed by a write to a different word.
pub fn write_after_read() -> Scenario {
    Scenario {
        name: "write_after_read",
        ops: vec![
            MasterOp::read(SCENARIO_BASE),
            MasterOp::write(SCENARIO_BASE + 0x20, 0xAA55_AA55),
        ]
        .into(),
        waits: WaitProfile::new(0, 2, 0),
    }
}

/// A slow write followed by a fast read: with independent read/write data
/// buses the read completes first — the reordering case of the spec.
pub fn read_after_write_reordered() -> Scenario {
    Scenario {
        name: "read_after_write_reordered",
        ops: vec![
            MasterOp::write(SCENARIO_BASE + 0x40, 0xDEAD_BEEF),
            MasterOp::read(SCENARIO_BASE),
        ]
        .into(),
        waits: WaitProfile::new(0, 0, 4),
    }
}

/// A 4-beat and an 8-beat burst read.
pub fn burst_reads() -> Scenario {
    Scenario {
        name: "burst_reads",
        ops: vec![
            MasterOp::burst_read(SCENARIO_BASE, BurstLen::B4),
            MasterOp::burst_read(SCENARIO_BASE + 0x40, BurstLen::B8).after_idle(1),
        ]
        .into(),
        waits: WaitProfile::new(0, 1, 1),
    }
}

/// A 4-beat and a 2-beat burst write.
pub fn burst_writes() -> Scenario {
    Scenario {
        name: "burst_writes",
        ops: vec![
            MasterOp::burst_write(
                SCENARIO_BASE,
                vec![0x0101_0101, 0x0202_0202, 0x0404_0404, 0x0808_0808],
            ),
            MasterOp::burst_write(SCENARIO_BASE + 0x40, vec![0xF0F0_F0F0, 0x0F0F_0F0F])
                .after_idle(1),
        ]
        .into(),
        waits: WaitProfile::new(1, 0, 1),
    }
}

/// The statistical shape of write payloads in a generated mix.
///
/// Characterization stimulus traditionally uses uniform-random data;
/// real smart-card traffic (stack values, pointers, counters, padded
/// buffers) has far lower switching activity. The gap between the two is
/// one of the drivers of the layer-2 energy model's overestimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataProfile {
    /// Uniform-random 32-bit words (synthetic characterization traffic).
    #[default]
    Random,
    /// Small integers and repeated bytes with occasional random words —
    /// the correlated data of real workloads.
    SmallValues,
}

/// Generation parameters for [`random_mix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixParams {
    /// Number of transactions.
    pub count: usize,
    /// First byte of the target window.
    pub base: u64,
    /// Window size in bytes (must hold the largest burst).
    pub window: u64,
    /// Percentage (0..=100) of ops that are reads.
    pub read_pct: u32,
    /// Percentage (0..=100) of ops that are bursts.
    pub burst_pct: u32,
    /// Maximum idle cycles inserted between ops.
    pub max_idle: u32,
    /// Percentage (0..=100) of reads that are instruction fetches.
    pub fetch_pct: u32,
    /// Address locality: percentage (0..=100) of ops addressed
    /// sequentially after the previous op rather than at random. High
    /// locality is what makes layer-2's correlation-blind energy estimate
    /// pessimistic.
    pub sequential_pct: u32,
    /// Statistical shape of write payloads.
    pub data_profile: DataProfile,
}

impl Default for MixParams {
    fn default() -> Self {
        MixParams {
            count: 1000,
            base: 0,
            window: 0x1_0000,
            read_pct: 60,
            burst_pct: 30,
            max_idle: 2,
            fetch_pct: 40,
            sequential_pct: 70,
            data_profile: DataProfile::Random,
        }
    }
}

/// Deterministic random mixed traffic: all combinations of single/burst
/// reads/writes and fetches, with tunable locality.
pub fn random_mix(seed: u64, params: MixParams) -> Scenario {
    let mut rng = SplitMix64::new(seed);
    let mut ops = Vec::with_capacity(params.count);
    let mut next_seq_addr = params.base;
    let window_words = (params.window / 4).max(16);
    for _ in 0..params.count {
        let is_read = rng.chance(params.read_pct);
        let is_burst = rng.chance(params.burst_pct);
        let burst = if is_burst {
            match rng.range_u32(0, 3) {
                0 => BurstLen::B2,
                1 => BurstLen::B4,
                _ => BurstLen::B8,
            }
        } else {
            BurstLen::Single
        };
        let sequential = rng.chance(params.sequential_pct);
        let addr = if sequential {
            next_seq_addr
        } else {
            params.base + 4 * rng.range_u64(0, window_words - 8)
        };
        // Keep the whole burst inside the window.
        let span = 4 * burst.beats() as u64;
        let addr = addr.min(params.base + params.window - span) & !0x3;
        next_seq_addr = if addr + span >= params.base + params.window - 32 {
            params.base
        } else {
            addr + span
        };

        let kind = if is_read {
            if rng.chance(params.fetch_pct) {
                AccessKind::InstrFetch
            } else {
                AccessKind::DataRead
            }
        } else {
            AccessKind::DataWrite
        };
        let data = if kind == AccessKind::DataWrite {
            (0..burst.beats())
                .map(|_| match params.data_profile {
                    DataProfile::Random => rng.next_u32(),
                    DataProfile::SmallValues => match rng.range_u32(0, 10) {
                        0 => rng.next_u32(),
                        1..=4 => rng.range_u32(0, 0x100),
                        5..=7 => rng.range_u32(0, 0x1_0000),
                        _ => 0,
                    },
                })
                .collect()
        } else {
            Vec::new()
        };
        ops.push(MasterOp {
            idle_before: rng.range_u32(0, params.max_idle + 1),
            kind,
            addr: Address::new(addr),
            width: DataWidth::W32,
            burst,
            data: data.into(),
        });
    }
    Scenario {
        name: "random_mix",
        ops: ops.into(),
        waits: WaitProfile::new(0, 1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_the_spec_examples() {
        let names: Vec<&str> = all_scenarios().iter().map(|s| s.name).collect();
        for expected in [
            "single_read",
            "single_read_wait",
            "single_write",
            "single_write_wait",
            "back_to_back_reads",
            "back_to_back_writes",
            "write_after_read",
            "read_after_write_reordered",
            "burst_reads",
            "burst_writes",
        ] {
            assert!(names.contains(&expected), "missing scenario {expected}");
        }
    }

    #[test]
    fn training_is_a_strict_subset() {
        let all: Vec<&str> = all_scenarios().iter().map(|s| s.name).collect();
        let training = training_scenarios();
        assert!(training.len() < all.len());
        for s in training {
            assert!(all.contains(&s.name));
        }
    }

    #[test]
    fn write_ops_carry_payloads_reads_do_not() {
        for s in all_scenarios() {
            for op in s.ops.iter() {
                if op.kind == AccessKind::DataWrite {
                    assert_eq!(op.data.len(), op.burst.beats() as usize, "{}", s.name);
                } else {
                    assert!(op.data.is_empty(), "{}", s.name);
                }
            }
        }
    }

    #[test]
    fn scenario_beat_accounting() {
        let s = burst_reads();
        assert_eq!(s.total_beats(), 12);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn random_mix_is_deterministic_per_seed() {
        let p = MixParams {
            count: 50,
            ..MixParams::default()
        };
        let a = random_mix(7, p);
        let b = random_mix(7, p);
        let c = random_mix(8, p);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn random_mix_stays_in_window_and_aligned() {
        let p = MixParams {
            count: 500,
            base: 0x1000,
            window: 0x2000,
            ..MixParams::default()
        };
        for op in random_mix(42, p).ops.iter() {
            let span = 4 * op.burst.beats() as u64;
            assert!(op.addr.raw() >= p.base);
            assert!(op.addr.raw() + span <= p.base + p.window);
            assert!(op.addr.is_aligned(4));
        }
    }

    #[test]
    #[should_panic(expected = "no burst length")]
    fn burst_write_rejects_odd_beat_counts() {
        let _ = MasterOp::burst_write(0, vec![1, 2, 3]);
    }
}
