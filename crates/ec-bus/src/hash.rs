//! A multiplicative hasher for the simulator's small integer keys.
//!
//! The bus models key their bookkeeping maps by [`TxnId`] (a sequential
//! counter) and sparse memories by word offset; both sit on the
//! per-cycle / per-beat hot path, where the standard library's
//! DoS-resistant SipHash is pure overhead. A single golden-ratio
//! multiply with an xor-shift finisher spreads sequential keys across
//! the table just as well, at a fraction of the cost.
//!
//! Swapping the hasher is observationally invisible: every map using it
//! is accessed by key only, or sorts before exposing its contents (e.g.
//! [`MemSlave::snapshot`]) — iteration order never reaches a result.
//!
//! [`TxnId`]: crate::TxnId
//! [`MemSlave::snapshot`]: ../hierbus_core/struct.MemSlave.html#method.snapshot

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-hashing [`Hasher`] for integer keys (not DoS-resistant —
/// simulation keys are internal counters, never attacker-controlled).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastIdHasher {
    hash: u64,
}

/// 2^64 / φ, the usual odd golden-ratio multiplier.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FastIdHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The table index comes from the low bits and the control byte
        // from the high bits; fold the high half down so both see the
        // multiply's strongest bits.
        self.hash ^ (self.hash >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A `HashMap` keyed by simulator ids/offsets through [`FastIdHasher`].
pub type FastIdMap<K, V> = HashMap<K, V, BuildHasherDefault<FastIdHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_keys_do_not_collide_in_low_bits() {
        // Sequential TxnIds must spread over the table; identical low
        // bits for many keys would degrade the map to a list.
        let mut low_bits = std::collections::HashSet::new();
        for id in 0u64..128 {
            let mut h = FastIdHasher::default();
            h.write_u64(id);
            low_bits.insert(h.finish() & 0x7F);
        }
        assert!(
            low_bits.len() > 64,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn map_roundtrips_inserts() {
        let mut map: FastIdMap<crate::TxnId, usize> = FastIdMap::default();
        for i in 0..1000u64 {
            map.insert(crate::TxnId(i), i as usize * 3);
        }
        for i in 0..1000u64 {
            assert_eq!(map.get(&crate::TxnId(i)), Some(&(i as usize * 3)));
        }
        assert_eq!(map.remove(&crate::TxnId(500)), Some(1500));
        assert_eq!(map.len(), 999);
    }
}
