//! The canonical signal-level view of one bus cycle.
//!
//! The layer-1 energy model of the paper works like a *transaction level to
//! RTL adapter*: a dedicated power module keeps old/new member variables
//! for every interface signal, the bus phases write the new values, and at
//! the end of the cycle bit transitions are recognised and converted to
//! energy. [`SignalFrame`] is that set of member variables, shared between
//! the cycle-true RTL reference (which drives real wires with the same
//! encoding) and the layer-1 model (which reconstructs them) — so both
//! sides count transitions over an identical signal inventory.

use crate::merge::DataWidth;
use crate::txn::{AccessKind, BurstLen};
use std::fmt;

/// Signal groups used for power characterization.
///
/// The gate-level estimator reports per-wire energies; the characterization
/// step (paper §3.3) abstracts them to an *average energy per transition*
/// per signal group, which is what the TLM energy models consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalClass {
    /// The 36 address wires.
    AddrBus,
    /// Address-phase control: valid, kind, width, burst, ready, error.
    AddrCtl,
    /// The 32 read-data wires.
    ReadData,
    /// Read-phase control: valid, id, ready, error.
    ReadCtl,
    /// The 32 write-data wires.
    WriteData,
    /// Write-phase control: valid, byte enables, id, ready, error.
    WriteCtl,
}

impl SignalClass {
    /// All classes in a fixed order (the index order of
    /// [`TogglesByClass`]).
    pub const ALL: [SignalClass; 6] = [
        SignalClass::AddrBus,
        SignalClass::AddrCtl,
        SignalClass::ReadData,
        SignalClass::ReadCtl,
        SignalClass::WriteData,
        SignalClass::WriteCtl,
    ];

    /// Number of wires in the class.
    pub const fn wires(self) -> u32 {
        match self {
            SignalClass::AddrBus => 36,
            SignalClass::AddrCtl => 8,
            SignalClass::ReadData => 32,
            SignalClass::ReadCtl => 6,
            SignalClass::WriteData => 32,
            SignalClass::WriteCtl => 10,
        }
    }

    /// Index into [`TogglesByClass`] and characterization tables.
    pub const fn index(self) -> usize {
        match self {
            SignalClass::AddrBus => 0,
            SignalClass::AddrCtl => 1,
            SignalClass::ReadData => 2,
            SignalClass::ReadCtl => 3,
            SignalClass::WriteData => 4,
            SignalClass::WriteCtl => 5,
        }
    }
}

impl fmt::Display for SignalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SignalClass::AddrBus => "addr.bus",
            SignalClass::AddrCtl => "addr.ctl",
            SignalClass::ReadData => "read.data",
            SignalClass::ReadCtl => "read.ctl",
            SignalClass::WriteData => "write.data",
            SignalClass::WriteCtl => "write.ctl",
        };
        f.write_str(s)
    }
}

/// Per-class bit-toggle counts from one frame-to-frame comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TogglesByClass([u32; 6]);

impl TogglesByClass {
    /// Toggles in one class.
    pub fn get(&self, class: SignalClass) -> u32 {
        self.0[class.index()]
    }

    /// Sum over all classes.
    pub fn total(&self) -> u32 {
        self.0.iter().sum()
    }

    /// Iterates `(class, toggles)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SignalClass, u32)> + '_ {
        SignalClass::ALL
            .iter()
            .map(move |&c| (c, self.0[c.index()]))
    }

    /// Adds another count set, class-wise.
    pub fn accumulate(&mut self, other: &TogglesByClass) {
        for i in 0..6 {
            self.0[i] += other.0[i];
        }
    }

    /// The raw counts, indexed by [`SignalClass::index`] — the zero-cost
    /// view energy models fold against their per-class weight arrays.
    pub fn as_array(&self) -> &[u32; 6] {
        &self.0
    }

    /// Builds a count set from raw per-class counts in
    /// [`SignalClass::index`] order — the inverse of
    /// [`as_array`](Self::as_array), used by batched engines that
    /// compute counts outside [`PackedFrame::diff`].
    pub fn from_array(counts: [u32; 6]) -> TogglesByClass {
        TogglesByClass(counts)
    }
}

/// A [`SignalFrame`] with every signal class packed into one word,
/// indexed by [`SignalClass::index`] — the representation the layer-1
/// per-cycle hot path diffs.
///
/// Packing happens once per frame; the cycle-boundary transition count
/// is then one XOR + `count_ones` per class ([`PackedFrame::diff`])
/// instead of a walk over individual wires. An energy model keeps the
/// *packed* previous frame, so each cycle packs only the new frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedFrame([u64; 6]);

impl PackedFrame {
    /// Bit toggles per signal class between `prev` and `self` — the
    /// word-packed fast path, byte-for-byte equal to
    /// [`SignalFrame::diff_reference`] on the corresponding frames.
    pub fn diff(&self, prev: &PackedFrame) -> TogglesByClass {
        let mut t = [0u32; 6];
        for (i, out) in t.iter_mut().enumerate() {
            *out = (self.0[i] ^ prev.0[i]).count_ones();
        }
        TogglesByClass(t)
    }

    /// The six class words in [`SignalClass::index`] order — the raw
    /// lane view batched (structure-of-arrays) engines scatter into
    /// per-class word columns.
    pub fn words(&self) -> &[u64; 6] {
        &self.0
    }

    /// Rebuilds a packed frame from raw class words (inverse of
    /// [`words`](Self::words)).
    pub fn from_words(words: [u64; 6]) -> PackedFrame {
        PackedFrame(words)
    }
}

/// The settled value of every interface signal in one clock cycle.
///
/// Defaults represent the idle bus: all valid/ready/error flags low, buses
/// holding their last value (zero at reset). Undriven buses *hold* rather
/// than float — consecutive idle frames therefore diff to zero toggles,
/// matching a keeper-equipped on-chip bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignalFrame {
    /// Address phase valid.
    pub a_valid: bool,
    /// Address bus (36 bits).
    pub a_addr: u64,
    /// Access kind field.
    pub a_kind: u8,
    /// Width field.
    pub a_width: u8,
    /// Burst field.
    pub a_burst: u8,
    /// Slave address-phase ready.
    pub a_ready: bool,
    /// Address-phase error.
    pub a_error: bool,

    /// Read data valid.
    pub r_valid: bool,
    /// Read data bus (32 bits).
    pub r_data: u32,
    /// Read transaction tag (3 bits).
    pub r_id: u8,
    /// Master ready to accept read data.
    pub r_ready: bool,
    /// Read-phase error.
    pub r_error: bool,

    /// Write data valid.
    pub w_valid: bool,
    /// Write data bus (32 bits).
    pub w_data: u32,
    /// Write byte enables (4 bits).
    pub w_ben: u8,
    /// Write transaction tag (3 bits).
    pub w_id: u8,
    /// Slave ready to accept write data.
    pub w_ready: bool,
    /// Write-phase error.
    pub w_error: bool,
}

impl SignalFrame {
    /// Drives the address-phase signals for a transaction.
    pub fn drive_address(
        &mut self,
        addr: u64,
        kind: AccessKind,
        width: DataWidth,
        burst: BurstLen,
        ready: bool,
        error: bool,
    ) {
        self.a_valid = true;
        self.a_addr = addr & ((1u64 << 36) - 1);
        self.a_kind = kind.encode();
        self.a_width = width.encode();
        self.a_burst = burst.encode();
        self.a_ready = ready;
        self.a_error = error;
    }

    /// Drives the read-data-phase signals for one beat.
    pub fn drive_read(&mut self, data: u32, id: u8, ready: bool, error: bool) {
        self.r_valid = true;
        self.r_data = data;
        self.r_id = id & 0x7;
        self.r_ready = ready;
        self.r_error = error;
    }

    /// Drives the write-data-phase signals for one beat.
    pub fn drive_write(&mut self, data: u32, ben: u8, id: u8, ready: bool, error: bool) {
        self.w_valid = true;
        self.w_data = data;
        self.w_ben = ben & 0xf;
        self.w_id = id & 0x7;
        self.w_ready = ready;
        self.w_error = error;
    }

    /// Returns this frame with all handshake flags idle, buses holding
    /// their values — the value the interface settles to on a cycle with
    /// no activity in that phase.
    pub fn to_idle(mut self) -> SignalFrame {
        self.a_valid = false;
        self.a_ready = false;
        self.a_error = false;
        self.r_valid = false;
        self.r_ready = false;
        self.r_error = false;
        self.w_valid = false;
        self.w_ready = false;
        self.w_error = false;
        self
    }

    /// Packs the address-phase control bits into one word for diffing.
    fn addr_ctl(&self) -> u64 {
        (self.a_valid as u64)
            | ((self.a_kind as u64 & 0x3) << 1)
            | ((self.a_width as u64 & 0x3) << 3)
            | ((self.a_burst as u64 & 0x3) << 5)
            | ((self.a_ready as u64) << 7)
            | ((self.a_error as u64) << 8)
    }

    fn read_ctl(&self) -> u64 {
        (self.r_valid as u64)
            | ((self.r_id as u64 & 0x7) << 1)
            | ((self.r_ready as u64) << 4)
            | ((self.r_error as u64) << 5)
    }

    fn write_ctl(&self) -> u64 {
        (self.w_valid as u64)
            | ((self.w_ben as u64 & 0xf) << 1)
            | ((self.w_id as u64 & 0x7) << 5)
            | ((self.w_ready as u64) << 8)
            | ((self.w_error as u64) << 9)
    }

    /// Packs every signal class into its word (one-time cost per frame;
    /// see [`PackedFrame`]).
    pub fn packed(&self) -> PackedFrame {
        PackedFrame([
            self.a_addr,
            self.addr_ctl(),
            self.r_data as u64,
            self.read_ctl(),
            self.w_data as u64,
            self.write_ctl(),
        ])
    }

    /// Bit toggles per signal class between `prev` and `self` — the
    /// layer-1 energy model's per-cycle transition count (word-packed
    /// fast path).
    pub fn diff(&self, prev: &SignalFrame) -> TogglesByClass {
        self.packed().diff(&prev.packed())
    }

    /// The original wire-by-wire transition count: walks every bit
    /// position of every class and compares the two frames' settled
    /// values individually, exactly as the first layer-1 power module
    /// did. Kept as the reference implementation the differential tests
    /// hold [`diff`](Self::diff) (and [`PackedFrame::diff`]) to — both
    /// must agree toggle-for-toggle on every class for every frame
    /// pair.
    pub fn diff_reference(&self, prev: &SignalFrame) -> TogglesByClass {
        let mut t = TogglesByClass::default();
        let mut count = |class: SignalClass, new: u64, old: u64| {
            let mut toggles = 0u32;
            for bit in 0..u64::BITS {
                if (new >> bit) & 1 != (old >> bit) & 1 {
                    toggles += 1;
                }
            }
            t.0[class.index()] = toggles;
        };
        count(SignalClass::AddrBus, self.a_addr, prev.a_addr);
        count(SignalClass::AddrCtl, self.addr_ctl(), prev.addr_ctl());
        count(
            SignalClass::ReadData,
            self.r_data as u64,
            prev.r_data as u64,
        );
        count(SignalClass::ReadCtl, self.read_ctl(), prev.read_ctl());
        count(
            SignalClass::WriteData,
            self.w_data as u64,
            prev.w_data as u64,
        );
        count(SignalClass::WriteCtl, self.write_ctl(), prev.write_ctl());
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_wire_counts_cover_interface() {
        let total: u32 = SignalClass::ALL.iter().map(|c| c.wires()).sum();
        // 36 addr + 8 actl + 32 rdata + 6 rctl + 32 wdata + 10 wctl
        assert_eq!(total, 124);
    }

    #[test]
    fn identical_frames_diff_to_zero() {
        let f = SignalFrame::default();
        assert_eq!(f.diff(&f).total(), 0);
    }

    #[test]
    fn address_drive_toggles_addr_classes_only() {
        let prev = SignalFrame::default();
        let mut cur = prev;
        cur.drive_address(
            0xFFF,
            AccessKind::DataRead,
            DataWidth::W32,
            BurstLen::Single,
            true,
            false,
        );
        let d = cur.diff(&prev);
        assert_eq!(d.get(SignalClass::AddrBus), 12);
        assert!(d.get(SignalClass::AddrCtl) > 0);
        assert_eq!(d.get(SignalClass::ReadData), 0);
        assert_eq!(d.get(SignalClass::WriteData), 0);
    }

    #[test]
    fn idle_clears_handshakes_but_holds_buses() {
        let mut f = SignalFrame::default();
        f.drive_address(
            0xABC,
            AccessKind::DataWrite,
            DataWidth::W16,
            BurstLen::Single,
            true,
            false,
        );
        f.drive_write(0x1234, 0b0011, 1, true, false);
        let idle = f.to_idle();
        assert!(!idle.a_valid && !idle.w_valid && !idle.w_ready);
        assert_eq!(idle.a_addr, 0xABC);
        assert_eq!(idle.w_data, 0x1234);
    }

    #[test]
    fn toggles_accumulate() {
        let prev = SignalFrame::default();
        let mut cur = prev;
        cur.drive_read(0xF, 1, true, false);
        let d = cur.diff(&prev);
        let mut acc = TogglesByClass::default();
        acc.accumulate(&d);
        acc.accumulate(&d);
        assert_eq!(acc.total(), 2 * d.total());
        assert_eq!(acc.get(SignalClass::ReadData), 8);
    }

    #[test]
    fn control_packing_keeps_fields_disjoint() {
        let a = SignalFrame {
            a_valid: true,
            ..SignalFrame::default()
        };
        let b = SignalFrame {
            a_error: true,
            ..SignalFrame::default()
        };
        // Different single-bit fields must land on different packed bits.
        assert_eq!(a.diff(&SignalFrame::default()).get(SignalClass::AddrCtl), 1);
        assert_eq!(b.diff(&SignalFrame::default()).get(SignalClass::AddrCtl), 1);
        assert_eq!(a.diff(&b).get(SignalClass::AddrCtl), 2);
    }

    #[test]
    fn packed_diff_matches_reference_on_driven_frames() {
        let mut frames = vec![SignalFrame::default()];
        let mut f = SignalFrame::default();
        f.drive_address(
            0xF0F0_F0F0F,
            AccessKind::DataWrite,
            DataWidth::W32,
            BurstLen::B4,
            true,
            false,
        );
        f.drive_write(0xDEAD_BEEF, 0xF, 3, true, false);
        frames.push(f);
        frames.push(f.to_idle());
        let mut e = SignalFrame::default();
        e.drive_read(0x1234_5678, 5, true, true);
        frames.push(e);
        for a in &frames {
            for b in &frames {
                assert_eq!(a.diff(b), a.diff_reference(b));
                assert_eq!(a.packed().diff(&b.packed()), a.diff_reference(b));
            }
        }
    }

    #[test]
    fn drive_masks_oversized_fields() {
        let mut f = SignalFrame::default();
        f.drive_read(0, 0xFF, false, false);
        assert_eq!(f.r_id, 0x7);
        f.drive_write(0, 0xFF, 0xFF, false, false);
        assert_eq!(f.w_ben, 0xF);
        assert_eq!(f.w_id, 0x7);
    }
}
