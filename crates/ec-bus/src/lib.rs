//! Protocol layer for an EC-like smart-card core bus.
//!
//! The DATE 2004 paper models the MIPS 4Ksc *EC interface*: a single-master
//! core interface with a 36-bit address bus, separated unidirectional 32-bit
//! read and write data buses (each with its own error indication), pipelined
//! address and data phases, slave-inserted wait states, 8/16/32-bit accesses
//! following fixed merge patterns, and at most four outstanding burst
//! instruction reads, four burst data reads and four burst writes. A bus
//! controller extends the one-master/one-slave interface to several slaves.
//!
//! The original specification is proprietary; this crate is a clean-room
//! protocol with exactly the properties the paper states, shared by **all**
//! models in the workspace — the cycle-true RTL reference, the layer-1 and
//! layer-2 TLM buses and the energy models — so that accuracy comparisons
//! are comparisons of *modeling style*, never of protocol interpretation.
//!
//! Contents:
//!
//! * [`Address`], [`AddressRange`] — 36-bit addressing.
//! * [`DataWidth`], [`merge`] — access sizes and byte-lane merge patterns.
//! * [`BusStatus`] — the four interface return states
//!   (`Request`/`Wait`/`Ok`/`Error`) of the non-blocking master interface.
//! * [`Transaction`], [`AccessKind`], [`BurstLen`] — transaction
//!   descriptors.
//! * [`OutstandingLimits`], [`OutstandingTracker`] — per-category
//!   outstanding-transaction accounting.
//! * [`SlaveConfig`], [`AccessRights`], [`WaitProfile`] — the "slave
//!   control interface" of the paper: address range, wait states, rights.
//! * [`AddressMap`] — bus-controller address decoding.
//! * [`SignalFrame`], [`SignalClass`] — the canonical signal-level view of
//!   one bus cycle, shared by the RTL reference and the layer-1 energy
//!   model ("TLM-to-RTL adapter").
//! * [`sequences`] — the verification scenarios of §4.1 plus random mixes.
//! * [`fault`] — deterministic fault plans (error replies, stalls, card
//!   tear), the master retry/timeout policy and per-op outcomes.
//! * [`arbiter`], [`dma`] — the multi-master extension: the shared
//!   request/grant arbitration kernel (fixed-priority and round-robin)
//!   and the DMA engine's seeded descriptor programs.

pub mod addr;
pub mod arbiter;
pub mod dma;
pub mod error;
pub mod fault;
pub mod frame;
pub mod hash;
pub mod limits;
pub mod map;
pub mod merge;
pub mod record;
pub mod sequences;
pub mod slave;
pub mod status;
pub mod txn;

pub use addr::{Address, AddressRange};
pub use arbiter::{Arbiter, ArbiterStats, ArbitrationPolicy};
pub use dma::{DmaParams, DmaProgram, MultiScenario, DMA_ID_BASE};
pub use error::BusError;
pub use fault::{
    FaultCounters, FaultKind, FaultParams, FaultPlan, OpFault, RetryPolicy, TxnOutcome,
};
pub use frame::{PackedFrame, SignalClass, SignalFrame, TogglesByClass};
pub use hash::{FastIdHasher, FastIdMap};
pub use limits::{OutstandingLimits, OutstandingTracker, TxnCategory};
pub use map::AddressMap;
pub use merge::DataWidth;
pub use record::TxnRecord;
pub use sequences::{DataProfile, MasterOp, MixParams, Scenario};
pub use slave::{AccessRights, SlaveConfig, SlaveId, WaitProfile};
pub use status::BusStatus;
pub use txn::{AccessKind, BurstLen, Transaction, TxnId};

/// Width of the address bus in bits.
pub const ADDR_BITS: u32 = 36;
/// Width of each data bus in bits.
pub const DATA_BITS: u32 = 32;
