//! Transaction descriptors.

use crate::addr::Address;
use crate::merge::DataWidth;
use std::fmt;

/// A monotonically increasing transaction identity, unique per master.
///
/// On the signal-level interface the low three bits are carried on the
/// `r_id`/`w_id` wires so data phases can be matched to address phases
/// when several transactions are outstanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The three-bit tag driven on the data-phase id wires.
    pub const fn tag(self) -> u8 {
        (self.0 & 0x7) as u8
    }

    /// The next id in sequence.
    pub const fn next(self) -> TxnId {
        TxnId(self.0 + 1)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// The three kinds of access the core interface distinguishes.
///
/// Instruction fetches travel on a dedicated master interface (the paper's
/// I-IF) but share the bus; the distinction matters for outstanding-limit
/// accounting and for access-right checks (fetch requires execute rights).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (a read with execute-right checking).
    InstrFetch,
    /// Data load.
    DataRead,
    /// Data store.
    DataWrite,
}

impl AccessKind {
    /// All kinds.
    pub const ALL: [AccessKind; 3] = [
        AccessKind::InstrFetch,
        AccessKind::DataRead,
        AccessKind::DataWrite,
    ];

    /// True for the two read-direction kinds.
    pub const fn is_read(self) -> bool {
        !matches!(self, AccessKind::DataWrite)
    }

    /// Two-bit field encoding used on the signal-level interface.
    pub const fn encode(self) -> u8 {
        match self {
            AccessKind::InstrFetch => 0b00,
            AccessKind::DataRead => 0b01,
            AccessKind::DataWrite => 0b10,
        }
    }

    /// Decodes the two-bit signal field; `0b11` is reserved.
    pub const fn decode(bits: u8) -> Option<AccessKind> {
        match bits & 0b11 {
            0b00 => Some(AccessKind::InstrFetch),
            0b01 => Some(AccessKind::DataRead),
            0b10 => Some(AccessKind::DataWrite),
            _ => None,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstrFetch => "fetch",
            AccessKind::DataRead => "read",
            AccessKind::DataWrite => "write",
        };
        f.write_str(s)
    }
}

/// Burst length in beats. Bursts are word-width and address-incrementing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BurstLen {
    /// A single beat (not a burst).
    Single,
    /// Two beats.
    B2,
    /// Four beats — the natural cache-line fill of the modeled core.
    B4,
    /// Eight beats.
    B8,
}

impl BurstLen {
    /// All lengths, shortest first.
    pub const ALL: [BurstLen; 4] = [BurstLen::Single, BurstLen::B2, BurstLen::B4, BurstLen::B8];

    /// Number of data beats.
    pub const fn beats(self) -> u32 {
        match self {
            BurstLen::Single => 1,
            BurstLen::B2 => 2,
            BurstLen::B4 => 4,
            BurstLen::B8 => 8,
        }
    }

    /// True for multi-beat transfers.
    pub const fn is_burst(self) -> bool {
        !matches!(self, BurstLen::Single)
    }

    /// Two-bit field encoding (log2 of the beat count).
    pub const fn encode(self) -> u8 {
        match self {
            BurstLen::Single => 0b00,
            BurstLen::B2 => 0b01,
            BurstLen::B4 => 0b10,
            BurstLen::B8 => 0b11,
        }
    }

    /// Decodes the two-bit signal field (total, all encodings valid).
    pub const fn decode(bits: u8) -> BurstLen {
        match bits & 0b11 {
            0b00 => BurstLen::Single,
            0b01 => BurstLen::B2,
            0b10 => BurstLen::B4,
            _ => BurstLen::B8,
        }
    }
}

impl fmt::Display for BurstLen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.beats())
    }
}

/// A bus transaction: one address phase plus one data phase of
/// [`beats`](BurstLen::beats) beats.
///
/// Burst transfers are always [`DataWidth::W32`]; sub-word widths are only
/// legal on single transfers (enforced by [`Transaction::new`]). For writes
/// `data` carries one word per beat going in; for reads the interconnect
/// fills it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Master-assigned identity.
    pub id: TxnId,
    /// Fetch, load or store.
    pub kind: AccessKind,
    /// Start address of the first beat.
    pub addr: Address,
    /// Width of each beat.
    pub width: DataWidth,
    /// Number of beats.
    pub burst: BurstLen,
    /// Beat payloads (writes: input; reads: filled on completion).
    pub data: std::sync::Arc<[u32]>,
}

impl Transaction {
    /// Creates a transaction descriptor.
    ///
    /// # Panics
    ///
    /// Panics if a burst is requested with a sub-word width, if `addr`
    /// violates the width's alignment, or if `data` is non-empty but does
    /// not have one entry per beat.
    pub fn new(
        id: TxnId,
        kind: AccessKind,
        addr: Address,
        width: DataWidth,
        burst: BurstLen,
        data: impl Into<std::sync::Arc<[u32]>>,
    ) -> Self {
        let data = data.into();
        assert!(
            !burst.is_burst() || width == DataWidth::W32,
            "burst transfers must be word-width"
        );
        assert!(
            width.is_aligned(addr),
            "misaligned {width} access at {addr}"
        );
        assert!(
            data.is_empty() || data.len() == burst.beats() as usize,
            "payload length {} does not match {} beats",
            data.len(),
            burst.beats()
        );
        Transaction {
            id,
            kind,
            addr,
            width,
            burst,
            data,
        }
    }

    /// Convenience constructor for a single-beat read.
    pub fn single_read(id: TxnId, addr: Address, width: DataWidth) -> Self {
        Transaction::new(
            id,
            AccessKind::DataRead,
            addr,
            width,
            BurstLen::Single,
            Vec::new(),
        )
    }

    /// Convenience constructor for a single-beat write.
    pub fn single_write(id: TxnId, addr: Address, width: DataWidth, value: u32) -> Self {
        Transaction::new(
            id,
            AccessKind::DataWrite,
            addr,
            width,
            BurstLen::Single,
            vec![value & width.value_mask()],
        )
    }

    /// Convenience constructor for an instruction fetch (single or burst).
    pub fn fetch(id: TxnId, addr: Address, burst: BurstLen) -> Self {
        Transaction::new(
            id,
            AccessKind::InstrFetch,
            addr,
            DataWidth::W32,
            burst,
            Vec::new(),
        )
    }

    /// The address of beat `i` (word-incrementing for bursts).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not less than the beat count.
    pub fn beat_addr(&self, i: u32) -> Address {
        assert!(i < self.burst.beats(), "beat {i} out of range");
        self.addr + (i as u64) * self.width.bytes()
    }

    /// Number of data beats.
    pub fn beats(&self) -> u32 {
        self.burst.beats()
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.width.bytes() * self.burst.beats() as u64
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} @{}",
            self.id, self.kind, self.width, self.burst, self.addr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_tagging() {
        assert_eq!(TxnId(0).tag(), 0);
        assert_eq!(TxnId(9).tag(), 1);
        assert_eq!(TxnId(3).next(), TxnId(4));
    }

    #[test]
    fn kind_direction_and_codes() {
        assert!(AccessKind::InstrFetch.is_read());
        assert!(AccessKind::DataRead.is_read());
        assert!(!AccessKind::DataWrite.is_read());
        for k in AccessKind::ALL {
            assert_eq!(AccessKind::decode(k.encode()), Some(k));
        }
        assert_eq!(AccessKind::decode(0b11), None);
    }

    #[test]
    fn burst_beats_and_codes() {
        let beats: Vec<u32> = BurstLen::ALL.iter().map(|b| b.beats()).collect();
        assert_eq!(beats, vec![1, 2, 4, 8]);
        for b in BurstLen::ALL {
            assert_eq!(BurstLen::decode(b.encode()), b);
        }
        assert!(!BurstLen::Single.is_burst());
        assert!(BurstLen::B4.is_burst());
    }

    #[test]
    fn beat_addresses_increment_by_width() {
        let t = Transaction::fetch(TxnId(1), Address::new(0x100), BurstLen::B4);
        assert_eq!(t.beat_addr(0), Address::new(0x100));
        assert_eq!(t.beat_addr(3), Address::new(0x10c));
        assert_eq!(t.bytes(), 16);
    }

    #[test]
    fn single_write_masks_payload() {
        let t = Transaction::single_write(TxnId(0), Address::new(0x3), DataWidth::W8, 0xABCD);
        assert_eq!(&t.data[..], &[0xCD]);
    }

    #[test]
    #[should_panic(expected = "word-width")]
    fn subword_burst_rejected() {
        let _ = Transaction::new(
            TxnId(0),
            AccessKind::DataRead,
            Address::new(0),
            DataWidth::W8,
            BurstLen::B4,
            Vec::new(),
        );
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_txn_rejected() {
        let _ = Transaction::single_read(TxnId(0), Address::new(0x2), DataWidth::W32);
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn wrong_payload_length_rejected() {
        let _ = Transaction::new(
            TxnId(0),
            AccessKind::DataWrite,
            Address::new(0),
            DataWidth::W32,
            BurstLen::B2,
            vec![1, 2, 3],
        );
    }
}
