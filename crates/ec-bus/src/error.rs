//! Bus error conditions.

use crate::addr::Address;
use crate::limits::TxnCategory;
use crate::txn::AccessKind;
use std::error::Error;
use std::fmt;

/// The ways a bus transaction can terminate with an error.
///
/// Both data buses carry their own error indication; all models map these
/// conditions onto [`BusStatus::Error`](crate::BusStatus::Error) and
/// record the cause for diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusError {
    /// No slave decodes the address.
    Decode(Address),
    /// A slave decodes the address but the access kind is not permitted.
    AccessViolation(Address, AccessKind),
    /// The master exceeded the outstanding-transaction ceiling.
    LimitExceeded(TxnCategory),
    /// The slave itself signalled an error during the data phase.
    SlaveError(Address),
    /// The access width/alignment combination is not representable.
    Misaligned(Address),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Decode(a) => write!(f, "no slave decodes address {a}"),
            BusError::AccessViolation(a, k) => {
                write!(f, "{k} access at {a} violates slave rights")
            }
            BusError::LimitExceeded(c) => {
                write!(f, "outstanding {c} transaction limit exceeded")
            }
            BusError::SlaveError(a) => write!(f, "slave signalled error at {a}"),
            BusError::Misaligned(a) => write!(f, "misaligned access at {a}"),
        }
    }
}

impl Error for BusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let msgs = [
            BusError::Decode(Address::new(0x10)).to_string(),
            BusError::AccessViolation(Address::new(0x10), AccessKind::DataWrite).to_string(),
            BusError::LimitExceeded(TxnCategory::Write).to_string(),
            BusError::SlaveError(Address::new(0x10)).to_string(),
            BusError::Misaligned(Address::new(0x11)).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(BusError::Decode(Address::new(0)));
    }
}
