//! Bus-controller address decoding.

use crate::addr::Address;
use crate::error::BusError;
use crate::slave::{SlaveConfig, SlaveId};
use crate::txn::AccessKind;
use std::fmt;

/// The address decoder of the bus controller: an ordered, overlap-checked
/// set of slave configurations.
///
/// The core interface itself supports one master and one slave; the bus
/// controller (which the paper's models implement together with the
/// address decoder) extends it to many slaves. Decoding an address that no
/// slave claims, or with a kind the slave's rights forbid, yields a
/// [`BusError`] which the models turn into an error-terminated transaction.
///
/// ```
/// use hierbus_ec::*;
/// let mut map = AddressMap::new();
/// let rom = map.add_slave(SlaveConfig::new(
///     AddressRange::new(Address::new(0x0), 0x1000),
///     WaitProfile::ZERO,
///     AccessRights::RX,
/// )).unwrap();
/// assert_eq!(map.decode(Address::new(0x10), AccessKind::DataRead), Ok(rom));
/// assert!(map.decode(Address::new(0x10), AccessKind::DataWrite).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    slaves: Vec<SlaveConfig>,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        AddressMap { slaves: Vec::new() }
    }

    /// Registers a slave window.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::Overlap`] if the window overlaps an existing
    /// slave's window.
    pub fn add_slave(&mut self, config: SlaveConfig) -> Result<SlaveId, MapError> {
        for (i, existing) in self.slaves.iter().enumerate() {
            if existing.range.overlaps(&config.range) {
                return Err(MapError::Overlap {
                    new: config,
                    existing: *existing,
                    existing_id: SlaveId(i),
                });
            }
        }
        let id = SlaveId(self.slaves.len());
        self.slaves.push(config);
        Ok(id)
    }

    /// Number of registered slaves.
    pub fn len(&self) -> usize {
        self.slaves.len()
    }

    /// True if no slave is registered.
    pub fn is_empty(&self) -> bool {
        self.slaves.is_empty()
    }

    /// The configuration of a slave.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this map's
    /// [`add_slave`](Self::add_slave).
    pub fn config(&self, id: SlaveId) -> &SlaveConfig {
        &self.slaves[id.0]
    }

    /// Iterates over `(id, config)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (SlaveId, &SlaveConfig)> {
        self.slaves.iter().enumerate().map(|(i, c)| (SlaveId(i), c))
    }

    /// Decodes `addr` for an access of `kind`.
    ///
    /// # Errors
    ///
    /// [`BusError::Decode`] if no slave claims the address,
    /// [`BusError::AccessViolation`] if the claiming slave's rights forbid
    /// the access kind.
    pub fn decode(&self, addr: Address, kind: AccessKind) -> Result<SlaveId, BusError> {
        for (i, cfg) in self.slaves.iter().enumerate() {
            if cfg.contains(addr) {
                return if cfg.rights.permits(kind) {
                    Ok(SlaveId(i))
                } else {
                    Err(BusError::AccessViolation(addr, kind))
                };
            }
        }
        Err(BusError::Decode(addr))
    }
}

/// Errors raised while constructing an [`AddressMap`].
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The new slave window overlaps an existing one.
    Overlap {
        /// The configuration being added.
        new: SlaveConfig,
        /// The already-registered configuration it collides with.
        existing: SlaveConfig,
        /// The id of the colliding slave.
        existing_id: SlaveId,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Overlap {
                new,
                existing,
                existing_id,
            } => write!(
                f,
                "window {} overlaps {existing_id} ({})",
                new.range, existing.range
            ),
        }
    }
}

impl std::error::Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddressRange;
    use crate::slave::{AccessRights, WaitProfile};

    fn cfg(base: u64, size: u64, rights: AccessRights) -> SlaveConfig {
        SlaveConfig::new(
            AddressRange::new(Address::new(base), size),
            WaitProfile::ZERO,
            rights,
        )
    }

    #[test]
    fn decode_picks_containing_slave() {
        let mut map = AddressMap::new();
        let rom = map
            .add_slave(cfg(0x0000, 0x1000, AccessRights::RX))
            .unwrap();
        let ram = map
            .add_slave(cfg(0x1000, 0x1000, AccessRights::RWX))
            .unwrap();
        assert_eq!(
            map.decode(Address::new(0x0abc), AccessKind::InstrFetch),
            Ok(rom)
        );
        assert_eq!(
            map.decode(Address::new(0x1abc), AccessKind::DataWrite),
            Ok(ram)
        );
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn decode_error_outside_all_windows() {
        let mut map = AddressMap::new();
        map.add_slave(cfg(0, 0x100, AccessRights::RWX)).unwrap();
        assert_eq!(
            map.decode(Address::new(0x200), AccessKind::DataRead),
            Err(BusError::Decode(Address::new(0x200)))
        );
    }

    #[test]
    fn rights_violation_reported() {
        let mut map = AddressMap::new();
        map.add_slave(cfg(0, 0x100, AccessRights::RO)).unwrap();
        assert_eq!(
            map.decode(Address::new(0x10), AccessKind::DataWrite),
            Err(BusError::AccessViolation(
                Address::new(0x10),
                AccessKind::DataWrite
            ))
        );
    }

    #[test]
    fn overlapping_windows_rejected() {
        let mut map = AddressMap::new();
        map.add_slave(cfg(0, 0x100, AccessRights::RWX)).unwrap();
        let err = map
            .add_slave(cfg(0x80, 0x100, AccessRights::RW))
            .unwrap_err();
        assert!(matches!(err, MapError::Overlap { .. }));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn iter_visits_in_registration_order() {
        let mut map = AddressMap::new();
        map.add_slave(cfg(0, 0x10, AccessRights::RX)).unwrap();
        map.add_slave(cfg(0x10, 0x10, AccessRights::RW)).unwrap();
        let ids: Vec<usize> = map.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
