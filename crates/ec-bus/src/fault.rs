//! Deterministic fault injection: plans, retry policies, outcomes.
//!
//! Smart cards live with adversity — slaves answer with error replies,
//! peripherals stall, and the card can be torn from the reader mid
//! transaction. This module gives every model layer one shared,
//! deterministic description of such an adversarial run:
//!
//! * [`FaultKind`] / [`OpFault`] — a single injectable event.
//! * [`FaultPlan`] — a schedule of events keyed by *stimulus position*
//!   (the index of the [`MasterOp`](crate::sequences::MasterOp) in the
//!   scenario) plus an optional card-tear cycle. Keying on the op index
//!   rather than on cycles or transaction ids is what makes the same
//!   plan replayable at every abstraction level: layer 2 is not
//!   cycle-accurate and retries shift id assignment, but the stimulus
//!   order is identical everywhere.
//! * [`RetryPolicy`] — the master-side robustness policy: bounded
//!   exponential backoff between retries and an optional per-transaction
//!   timeout after which the master abandons the transaction.
//! * [`TxnOutcome`] — the final per-op verdict after the policy ran.
//! * [`FaultCounters`] — the `fault.injected` / `fault.retried` /
//!   `fault.aborted` observability counters.
//!
//! Plans are plain data; buses receive resolved [`FaultKind`]s through
//! `CycleBus::inject` at issue time and never see the plan itself.

use crate::error::BusError;
use hierbus_sim::SplitMix64;
use std::collections::BTreeMap;
use std::fmt;

/// One injectable fault event on a transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The slave answers the first data beat with an error reply.
    ///
    /// The error fires *before* any data is committed, at the cycle the
    /// first beat would otherwise have completed — so a faulted write
    /// never partially commits and all layers agree on memory state.
    SlaveError,
    /// The slave inserts this many extra wait states before the first
    /// data beat (a transient stall / wait-state overrun).
    Stall(u32),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::SlaveError => f.write_str("slave-error"),
            FaultKind::Stall(n) => write!(f, "stall({n})"),
        }
    }
}

/// A fault attached to one stimulus position.
///
/// The fault fires on the first `attempts` issue attempts of the op; a
/// retry beyond that succeeds. `attempts == u32::MAX` makes the fault
/// permanent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpFault {
    /// What happens.
    pub kind: FaultKind,
    /// How many consecutive attempts it happens on (counted from 0).
    pub attempts: u32,
}

impl OpFault {
    /// A fault that fires exactly once (the first attempt succeeds on
    /// retry).
    pub const fn once(kind: FaultKind) -> Self {
        OpFault { kind, attempts: 1 }
    }

    /// A fault that fires on every attempt.
    pub const fn always(kind: FaultKind) -> Self {
        OpFault {
            kind,
            attempts: u32::MAX,
        }
    }
}

/// Parameters for [`FaultPlan::random`].
#[derive(Debug, Clone, Copy)]
pub struct FaultParams {
    /// Percentage (0..=100) of ops that carry a fault.
    pub fault_pct: u32,
    /// Of the faulted ops, percentage that are error replies (the rest
    /// are stalls).
    pub error_pct: u32,
    /// Maximum extra wait states a stall inserts (inclusive; drawn
    /// uniformly from `1..=stall_max`).
    pub stall_max: u32,
    /// Maximum number of attempts an error persists for (inclusive;
    /// drawn uniformly from `1..=error_attempts_max`).
    pub error_attempts_max: u32,
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams {
            fault_pct: 25,
            error_pct: 50,
            stall_max: 6,
            error_attempts_max: 2,
        }
    }
}

/// A deterministic, replayable schedule of fault events.
///
/// Keys are stimulus positions (op indices); the same plan handed to the
/// RTL reference, the layer-1 bus and the layer-2 bus injects the same
/// faults into the same transactions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, OpFault>,
    /// Cycle at which the card is torn: the clock stops *before* this
    /// cycle executes, mid-transaction if one is in flight. `None`
    /// means the run completes normally.
    pub tear_cycle: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (no faults, no tear).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Attaches a fault to the op at `index`; builder-style.
    pub fn with_fault(mut self, index: usize, fault: OpFault) -> Self {
        self.faults.insert(index, fault);
        self
    }

    /// Sets the card-tear cycle; builder-style.
    pub fn with_tear(mut self, cycle: u64) -> Self {
        self.tear_cycle = Some(cycle);
        self
    }

    /// The fault to inject for issue attempt `attempt` (0-based) of the
    /// op at `index`, if any.
    pub fn resolve(&self, index: usize, attempt: u32) -> Option<FaultKind> {
        let f = self.faults.get(&index)?;
        (attempt < f.attempts).then_some(f.kind)
    }

    /// True when the plan injects nothing and never tears.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.tear_cycle.is_none()
    }

    /// Number of ops carrying a fault.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// The scheduled faults in op-index order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, OpFault)> + '_ {
        self.faults.iter().map(|(&i, &f)| (i, f))
    }

    /// A seeded random plan over `n_ops` stimulus positions. The same
    /// `(seed, n_ops, params)` always produces the same plan, so a
    /// failing differential test reproduces from its printed seed.
    pub fn random(seed: u64, n_ops: usize, params: FaultParams) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xFA01_7D15_EA5E_D001);
        let mut plan = FaultPlan::new();
        for index in 0..n_ops {
            if rng.next_u64() % 100 >= u64::from(params.fault_pct.min(100)) {
                continue;
            }
            let fault = if rng.next_u64() % 100 < u64::from(params.error_pct.min(100)) {
                OpFault {
                    kind: FaultKind::SlaveError,
                    attempts: 1
                        + (rng.next_u64() % u64::from(params.error_attempts_max.max(1))) as u32,
                }
            } else {
                OpFault::always(FaultKind::Stall(
                    1 + (rng.next_u64() % u64::from(params.stall_max.max(1))) as u32,
                ))
            };
            plan.faults.insert(index, fault);
        }
        plan
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no faults");
        }
        let mut first = true;
        for (i, fault) in &self.faults {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "op{i}:{}", fault.kind)?;
            if fault.attempts != u32::MAX {
                write!(f, "x{}", fault.attempts)?;
            }
        }
        if let Some(tc) = self.tear_cycle {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "tear@{tc}")?;
        }
        Ok(())
    }
}

/// The master-side robustness policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a transaction that completed with a *slave* error
    /// is reissued. Decode and access-violation errors are permanent
    /// and never retried.
    pub max_retries: u32,
    /// Idle cycles inserted before retry `n` (0-based): `base << n`,
    /// saturating at `backoff_cap`.
    pub backoff_base: u32,
    /// Upper bound on the backoff gap.
    pub backoff_cap: u32,
    /// Cycles after issue at which the master gives up on an attempt
    /// and marks the op [`TxnOutcome::Aborted`]. The bus is left to
    /// drain the abandoned transaction naturally, so the FSM always
    /// returns to a defined idle state.
    pub timeout: Option<u64>,
}

impl RetryPolicy {
    /// No retries, no timeout — the pre-fault behaviour.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        backoff_base: 0,
        backoff_cap: 0,
        timeout: None,
    };

    /// A sensible default for robustness sweeps: up to 3 retries with
    /// a 2/4/8-cycle backoff, no timeout.
    pub const fn retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            backoff_base: 2,
            backoff_cap: 8,
            timeout: None,
        }
    }

    /// The backoff gap (idle cycles) before reissuing after failed
    /// attempt `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> u32 {
        if self.backoff_base == 0 {
            return 0;
        }
        self.backoff_base
            .saturating_shl(attempt.min(31))
            .min(self.backoff_cap.max(self.backoff_base))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::NONE
    }
}

/// Final verdict for one stimulus op after the retry policy ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Completed successfully (possibly after retries).
    Ok,
    /// Completed with a bus error that the policy did not (or could
    /// not) retry away.
    Error(BusError),
    /// Abandoned: the per-transaction timeout expired, or the card was
    /// torn before completion.
    Aborted,
}

impl TxnOutcome {
    /// True for [`TxnOutcome::Ok`].
    pub const fn is_ok(self) -> bool {
        matches!(self, TxnOutcome::Ok)
    }
}

impl fmt::Display for TxnOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnOutcome::Ok => f.write_str("ok"),
            TxnOutcome::Error(e) => write!(f, "error: {e}"),
            TxnOutcome::Aborted => f.write_str("aborted"),
        }
    }
}

/// Observability counters mirrored to the `fault.*` counter tracks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults actually injected into a bus (one per faulted attempt).
    pub injected: u64,
    /// Retries the master issued.
    pub retried: u64,
    /// Ops abandoned by timeout or card tear.
    pub aborted: u64,
}

impl FaultCounters {
    /// True when nothing fault-related happened.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounters::default()
    }
}

trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u32 {
    fn saturating_shl(self, n: u32) -> u32 {
        self.checked_shl(n).unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honours_attempt_budget() {
        let plan = FaultPlan::new()
            .with_fault(2, OpFault::once(FaultKind::SlaveError))
            .with_fault(5, OpFault::always(FaultKind::Stall(3)));
        assert_eq!(plan.resolve(2, 0), Some(FaultKind::SlaveError));
        assert_eq!(plan.resolve(2, 1), None);
        assert_eq!(plan.resolve(5, 0), Some(FaultKind::Stall(3)));
        assert_eq!(plan.resolve(5, 7), Some(FaultKind::Stall(3)));
        assert_eq!(plan.resolve(0, 0), None);
    }

    #[test]
    fn random_plans_reproduce_from_seed() {
        let a = FaultPlan::random(0xDEAD, 64, FaultParams::default());
        let b = FaultPlan::random(0xDEAD, 64, FaultParams::default());
        assert_eq!(a, b);
        let c = FaultPlan::random(0xBEEF, 64, FaultParams::default());
        assert_ne!(a, c, "different seeds should differ at 64 ops");
    }

    #[test]
    fn random_plan_respects_rate() {
        let none = FaultPlan::random(
            1,
            256,
            FaultParams {
                fault_pct: 0,
                ..FaultParams::default()
            },
        );
        assert!(none.is_empty());
        let all = FaultPlan::random(
            1,
            256,
            FaultParams {
                fault_pct: 100,
                ..FaultParams::default()
            },
        );
        assert_eq!(all.fault_count(), 256);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::retries(3);
        assert_eq!(p.backoff(0), 2);
        assert_eq!(p.backoff(1), 4);
        assert_eq!(p.backoff(2), 8);
        assert_eq!(p.backoff(3), 8);
        assert_eq!(RetryPolicy::NONE.backoff(0), 0);
    }

    #[test]
    fn display_is_readable() {
        let plan = FaultPlan::new()
            .with_fault(1, OpFault::once(FaultKind::SlaveError))
            .with_tear(120);
        assert_eq!(plan.to_string(), "op1:slave-errorx1, tear@120");
        assert_eq!(FaultPlan::new().to_string(), "no faults");
        assert_eq!(TxnOutcome::Ok.to_string(), "ok");
        assert_eq!(TxnOutcome::Aborted.to_string(), "aborted");
    }
}
