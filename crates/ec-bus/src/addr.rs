//! 36-bit bus addresses.

use crate::ADDR_BITS;
use std::fmt;

/// The mask of valid address bits.
pub const ADDR_MASK: u64 = (1u64 << ADDR_BITS) - 1;

/// A 36-bit physical bus address.
///
/// Constructors mask to 36 bits so an `Address` is always in range; byte
/// addresses are used throughout (a 32-bit word spans four consecutive
/// byte addresses).
///
/// ```
/// use hierbus_ec::Address;
/// let a = Address::new(0x0_4000_0013);
/// assert_eq!(a.word_aligned().raw(), 0x0_4000_0010);
/// assert_eq!(a.byte_in_word(), 3);
/// assert_eq!((a + 4).raw() - a.raw(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address, masking to 36 bits.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw & ADDR_MASK)
    }

    /// The raw 36-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The word-aligned base of this address.
    #[inline]
    pub const fn word_aligned(self) -> Address {
        Address(self.0 & !0x3)
    }

    /// Word index from the start of the address space.
    #[inline]
    pub const fn word_offset(self) -> u64 {
        self.0 >> 2
    }

    /// Byte lane within the 32-bit word (0..=3).
    #[inline]
    pub const fn byte_in_word(self) -> u32 {
        (self.0 & 0x3) as u32
    }

    /// True if aligned to `bytes` (must be a power of two).
    #[inline]
    pub const fn is_aligned(self, bytes: u64) -> bool {
        self.0.is_multiple_of(bytes)
    }

    /// Wrapping add within the 36-bit space.
    #[inline]
    pub const fn wrapping_add(self, delta: u64) -> Address {
        Address((self.0.wrapping_add(delta)) & ADDR_MASK)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#011x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address::new(raw)
    }
}

impl std::ops::Add<u64> for Address {
    type Output = Address;
    #[inline]
    fn add(self, rhs: u64) -> Address {
        Address::new(self.0 + rhs)
    }
}

/// A half-open address range `[base, base + size)`.
///
/// ```
/// use hierbus_ec::{Address, AddressRange};
/// let rom = AddressRange::new(Address::new(0x1000), 0x100);
/// assert!(rom.contains(Address::new(0x10ff)));
/// assert!(!rom.contains(Address::new(0x1100)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressRange {
    base: Address,
    size: u64,
}

impl AddressRange {
    /// Creates a range starting at `base` spanning `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the range would exceed the 36-bit space.
    pub fn new(base: Address, size: u64) -> Self {
        assert!(size > 0, "address range must be non-empty");
        assert!(
            base.raw()
                .checked_add(size)
                .is_some_and(|end| end <= ADDR_MASK + 1),
            "address range {base}+{size:#x} exceeds the 36-bit space"
        );
        AddressRange { base, size }
    }

    /// The first address in the range.
    pub fn base(&self) -> Address {
        self.base
    }

    /// The range length in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// One past the last address in the range.
    pub fn end(&self) -> u64 {
        self.base.raw() + self.size
    }

    /// True if `addr` falls inside the range.
    #[inline]
    pub fn contains(&self, addr: Address) -> bool {
        addr.raw() >= self.base.raw() && addr.raw() < self.end()
    }

    /// Byte offset of `addr` from the range base, or `None` if outside.
    pub fn offset_of(&self, addr: Address) -> Option<u64> {
        self.contains(addr).then(|| addr.raw() - self.base.raw())
    }

    /// True if the two ranges share any address.
    pub fn overlaps(&self, other: &AddressRange) -> bool {
        self.base.raw() < other.end() && other.base.raw() < self.end()
    }
}

impl fmt::Display for AddressRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {:#011x})", self.base, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_masks_to_36_bits() {
        let a = Address::new(u64::MAX);
        assert_eq!(a.raw(), ADDR_MASK);
    }

    #[test]
    fn word_and_byte_decomposition() {
        let a = Address::new(0x1007);
        assert_eq!(a.word_aligned().raw(), 0x1004);
        assert_eq!(a.byte_in_word(), 3);
        assert!(!a.is_aligned(2));
        assert!(Address::new(0x1004).is_aligned(4));
    }

    #[test]
    fn wrapping_add_stays_in_space() {
        let a = Address::new(ADDR_MASK);
        assert_eq!(a.wrapping_add(1).raw(), 0);
    }

    #[test]
    fn range_contains_and_offset() {
        let r = AddressRange::new(Address::new(0x2000), 0x40);
        assert!(r.contains(Address::new(0x2000)));
        assert!(r.contains(Address::new(0x203f)));
        assert!(!r.contains(Address::new(0x2040)));
        assert_eq!(r.offset_of(Address::new(0x2010)), Some(0x10));
        assert_eq!(r.offset_of(Address::new(0x1fff)), None);
    }

    #[test]
    fn range_overlap_detection() {
        let a = AddressRange::new(Address::new(0x1000), 0x100);
        let b = AddressRange::new(Address::new(0x10ff), 0x10);
        let c = AddressRange::new(Address::new(0x1100), 0x10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = AddressRange::new(Address::new(0), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_range_rejected() {
        let _ = AddressRange::new(Address::new(ADDR_MASK), 2);
    }
}
