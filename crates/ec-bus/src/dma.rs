//! A DMA engine master: seeded, deterministic descriptor programs.
//!
//! The second bus master of the multi-master configuration. A DMA
//! controller executes a *descriptor program* — a finite list of block
//! transfers, each a burst read or burst write at a programmed address
//! with a programmed inter-descriptor gap. Descriptors compile to the
//! same [`MasterOp`] stimulus form the CPU replays, so every model
//! layer (RTL, layer 1, layer 2) reuses its existing master replay
//! machinery unchanged; only the arbiter decides who drives the bus.
//!
//! Programs are generated from a seed ([`DmaProgram::seeded`]) exactly
//! like [`sequences::random_mix`](crate::sequences::random_mix)
//! generates CPU traffic, so a `(seed, params)` pair names the same
//! program in every layer, campaign worker and serve session.
//!
//! DMA transactions draw their [`TxnId`](crate::TxnId)s from
//! [`DMA_ID_BASE`] upward, so any transaction id — and hence any span
//! trace id or phase event — is attributable to its master with a
//! single threshold compare ([`master_of_trace`]).

use crate::arbiter::ArbitrationPolicy;
use crate::sequences::{MasterOp, Scenario};
use crate::txn::BurstLen;
use hierbus_sim::SplitMix64;
use std::sync::Arc;

/// First transaction id of the DMA master. CPU ids count from 0; no
/// realistic stimulus reaches 2^32 transactions, so the ranges never
/// collide and `id >= DMA_ID_BASE` identifies DMA traffic. The 3-bit
/// wire tag (`id & 7`) is unaffected: `DMA_ID_BASE` is 8-aligned, so
/// the tag sequence on the bus is the same as a CPU master's.
pub const DMA_ID_BASE: u64 = 1 << 32;

/// Master names, indexed by master number (0 = CPU, 1 = DMA).
pub const MASTER_NAMES: [&str; 2] = ["cpu", "dma"];

/// The master a transaction id (equivalently: span trace id, phase
/// event trace id) belongs to — 0 for CPU, 1 for DMA.
pub fn master_index_of_trace(trace_id: u64) -> usize {
    usize::from(trace_id >= DMA_ID_BASE)
}

/// The stable name of the master owning `trace_id`.
pub fn master_of_trace(trace_id: u64) -> &'static str {
    MASTER_NAMES[master_index_of_trace(trace_id)]
}

/// Transfer direction of one descriptor, seen from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDir {
    /// Burst read from memory (device-bound stream).
    FromMem,
    /// Burst write into memory (device-sourced stream).
    ToMem,
}

/// One DMA descriptor: a single burst transfer plus the idle gap the
/// engine waits before starting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmaDescriptor {
    /// Transfer direction.
    pub dir: DmaDir,
    /// Word-aligned start address.
    pub addr: u64,
    /// Beats in the burst.
    pub burst: BurstLen,
    /// Idle cycles before this descriptor issues.
    pub gap: u32,
    /// Write payload, one word per beat ([`DmaDir::ToMem`] only).
    pub data: Vec<u32>,
}

/// Generation parameters for a seeded descriptor program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaParams {
    /// Number of descriptors.
    pub descriptors: usize,
    /// Burst length of every transfer (the campaign axis).
    pub burst: BurstLen,
    /// Percentage of descriptors that read ([`DmaDir::FromMem`]).
    pub read_pct: u32,
    /// Gaps are drawn uniformly from `0..=max_gap`.
    pub max_gap: u32,
    /// Start of the DMA address window.
    pub base: u64,
    /// Window size in bytes. Kept disjoint from the CPU window by
    /// default so contention never makes final memory order-dependent.
    pub window: u64,
}

impl Default for DmaParams {
    fn default() -> Self {
        DmaParams {
            descriptors: 16,
            burst: BurstLen::B4,
            read_pct: 50,
            max_gap: 3,
            // The CPU mix defaults to [0, 0x1_0000); the DMA window
            // sits directly above it.
            base: 0x1_0000,
            window: 0x1_0000,
        }
    }
}

/// A compiled descriptor program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmaProgram {
    /// The descriptors, in execution order.
    pub descriptors: Vec<DmaDescriptor>,
}

impl DmaProgram {
    /// Generates a deterministic program from `seed`. The same
    /// `(seed, params)` pair yields the same program everywhere.
    pub fn seeded(seed: u64, params: DmaParams) -> Self {
        let beats = u64::from(params.burst.beats());
        let window_words = params.window / 4;
        assert!(window_words >= beats, "DMA window smaller than one burst");
        let mut rng = SplitMix64::new(seed);
        let descriptors = (0..params.descriptors)
            .map(|_| {
                let dir = if rng.chance(params.read_pct) {
                    DmaDir::FromMem
                } else {
                    DmaDir::ToMem
                };
                let word = rng.range_u64(0, window_words - beats + 1);
                let addr = params.base + 4 * word;
                let gap = rng.range_u32(0, params.max_gap + 1);
                let data = match dir {
                    DmaDir::FromMem => Vec::new(),
                    DmaDir::ToMem => (0..beats).map(|_| rng.next_u32()).collect(),
                };
                DmaDescriptor {
                    dir,
                    addr,
                    burst: params.burst,
                    gap,
                    data,
                }
            })
            .collect();
        DmaProgram { descriptors }
    }

    /// Compiles the program to master stimulus ops.
    pub fn to_ops(&self) -> Arc<[MasterOp]> {
        self.descriptors
            .iter()
            .map(|d| {
                let op = match d.dir {
                    DmaDir::FromMem => MasterOp::burst_read(d.addr, d.burst),
                    DmaDir::ToMem => {
                        debug_assert_eq!(d.data.len(), d.burst.beats() as usize);
                        MasterOp::burst_write(d.addr, d.data.clone())
                    }
                };
                op.after_idle(d.gap)
            })
            .collect::<Vec<_>>()
            .into()
    }

    /// Total beats transferred by the program.
    pub fn total_beats(&self) -> u64 {
        self.descriptors
            .iter()
            .map(|d| u64::from(d.burst.beats()))
            .sum()
    }
}

/// A complete multi-master workload: CPU stimulus, a DMA program and
/// the arbitration policy tying them together. The slave wait profile
/// is the CPU scenario's — both masters target the same slave(s).
#[derive(Debug, Clone)]
pub struct MultiScenario {
    /// Short identifier for reports and cache keys.
    pub name: &'static str,
    /// The CPU master's stimulus (master 0).
    pub cpu: Scenario,
    /// The DMA master's compiled stimulus (master 1).
    pub dma_ops: Arc<[MasterOp]>,
    /// Who wins contended cycles.
    pub policy: ArbitrationPolicy,
}

impl MultiScenario {
    /// Builds a multi-master workload from a CPU scenario and a DMA
    /// program.
    pub fn new(
        name: &'static str,
        cpu: Scenario,
        program: &DmaProgram,
        policy: ArbitrationPolicy,
    ) -> Self {
        MultiScenario {
            name,
            cpu,
            dma_ops: program.to_ops(),
            policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_programs_are_deterministic() {
        let p = DmaParams::default();
        let a = DmaProgram::seeded(7, p);
        let b = DmaProgram::seeded(7, p);
        let c = DmaProgram::seeded(8, p);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn descriptors_stay_inside_the_window() {
        let params = DmaParams {
            descriptors: 200,
            burst: BurstLen::B8,
            ..DmaParams::default()
        };
        let prog = DmaProgram::seeded(11, params);
        for d in &prog.descriptors {
            assert!(d.addr >= params.base);
            assert!(d.addr + 4 * u64::from(d.burst.beats()) <= params.base + params.window);
            assert_eq!(d.addr % 4, 0);
        }
    }

    #[test]
    fn writes_carry_one_word_per_beat() {
        let params = DmaParams {
            read_pct: 0,
            burst: BurstLen::B2,
            ..DmaParams::default()
        };
        let prog = DmaProgram::seeded(3, params);
        for d in &prog.descriptors {
            assert_eq!(d.dir, DmaDir::ToMem);
            assert_eq!(d.data.len(), 2);
        }
        let ops = prog.to_ops();
        assert_eq!(ops.len(), params.descriptors);
        assert!(ops.iter().all(|op| op.data.len() == 2));
    }

    #[test]
    fn trace_ids_partition_by_master() {
        assert_eq!(master_of_trace(0), "cpu");
        assert_eq!(master_of_trace(DMA_ID_BASE - 1), "cpu");
        assert_eq!(master_of_trace(DMA_ID_BASE), "dma");
        assert_eq!(master_index_of_trace(DMA_ID_BASE + 5), 1);
        assert_eq!(DMA_ID_BASE % 8, 0);
    }
}
