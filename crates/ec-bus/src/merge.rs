//! Access widths and byte-lane merge patterns.
//!
//! The EC interface transfers 8-, 16- and 32-bit quantities over the 32-bit
//! data buses using fixed *merge patterns*: the byte lanes a datum occupies
//! are determined by the access width and the low address bits. This module
//! encodes those patterns as byte-enable masks and provides the lane
//! extraction/insertion helpers every model uses to move sub-word data.

use crate::addr::Address;
use std::fmt;

/// The width of a single data beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataWidth {
    /// 8-bit access; any byte offset.
    W8,
    /// 16-bit access; address must be 2-byte aligned.
    W16,
    /// 32-bit access; address must be 4-byte aligned.
    W32,
}

impl DataWidth {
    /// All widths, narrowest first.
    pub const ALL: [DataWidth; 3] = [DataWidth::W8, DataWidth::W16, DataWidth::W32];

    /// Size of one beat in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            DataWidth::W8 => 1,
            DataWidth::W16 => 2,
            DataWidth::W32 => 4,
        }
    }

    /// Size of one beat in bits.
    pub const fn bits(self) -> u32 {
        (self.bytes() as u32) * 8
    }

    /// Two-bit field encoding used on the signal-level interface.
    pub const fn encode(self) -> u8 {
        match self {
            DataWidth::W8 => 0b00,
            DataWidth::W16 => 0b01,
            DataWidth::W32 => 0b10,
        }
    }

    /// Decodes the two-bit signal field; returns `None` for the reserved
    /// encoding `0b11`.
    pub const fn decode(bits: u8) -> Option<DataWidth> {
        match bits & 0b11 {
            0b00 => Some(DataWidth::W8),
            0b01 => Some(DataWidth::W16),
            0b10 => Some(DataWidth::W32),
            _ => None,
        }
    }

    /// True if `addr` satisfies this width's alignment requirement.
    pub fn is_aligned(self, addr: Address) -> bool {
        addr.is_aligned(self.bytes())
    }

    /// The merge pattern (byte-enable mask, bit *n* = byte lane *n*) for an
    /// access of this width at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` violates the width's alignment requirement — the
    /// protocol has no encoding for misaligned beats, so models must reject
    /// them before this point.
    pub fn byte_enables(self, addr: Address) -> u8 {
        assert!(self.is_aligned(addr), "misaligned {self} access at {addr}");
        let lane = addr.byte_in_word();
        match self {
            DataWidth::W8 => 1 << lane,
            DataWidth::W16 => 0b11 << lane,
            DataWidth::W32 => 0b1111,
        }
    }

    /// Extracts the beat value from the 32-bit bus `word` for an access at
    /// `addr`, already shifted down to bit zero.
    ///
    /// # Panics
    ///
    /// Panics on misaligned `addr` (see [`byte_enables`](Self::byte_enables)).
    pub fn extract(self, addr: Address, word: u32) -> u32 {
        let shift = addr.byte_in_word() * 8;
        let mask = self.value_mask();
        assert!(self.is_aligned(addr), "misaligned {self} access at {addr}");
        (word >> shift) & mask
    }

    /// Inserts `value` into `word` at the lanes for an access at `addr`,
    /// leaving the other lanes untouched (the write-bus merge operation).
    ///
    /// # Panics
    ///
    /// Panics on misaligned `addr` (see [`byte_enables`](Self::byte_enables)).
    pub fn insert(self, addr: Address, word: u32, value: u32) -> u32 {
        assert!(self.is_aligned(addr), "misaligned {self} access at {addr}");
        let shift = addr.byte_in_word() * 8;
        let mask = self.value_mask() << shift;
        (word & !mask) | ((value << shift) & mask)
    }

    /// Value mask for one beat (`0xff`, `0xffff` or `0xffff_ffff`).
    pub const fn value_mask(self) -> u32 {
        match self {
            DataWidth::W8 => 0xff,
            DataWidth::W16 => 0xffff,
            DataWidth::W32 => 0xffff_ffff,
        }
    }
}

impl fmt::Display for DataWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_enable_patterns_match_spec() {
        // 8-bit accesses: one lane per byte offset.
        for lane in 0..4u64 {
            let be = DataWidth::W8.byte_enables(Address::new(0x100 + lane));
            assert_eq!(be, 1 << lane);
        }
        // 16-bit accesses at offsets 0 and 2.
        assert_eq!(DataWidth::W16.byte_enables(Address::new(0x100)), 0b0011);
        assert_eq!(DataWidth::W16.byte_enables(Address::new(0x102)), 0b1100);
        // 32-bit access drives all lanes.
        assert_eq!(DataWidth::W32.byte_enables(Address::new(0x100)), 0b1111);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_half_word_rejected() {
        let _ = DataWidth::W16.byte_enables(Address::new(0x101));
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_word_rejected() {
        let _ = DataWidth::W32.byte_enables(Address::new(0x102));
    }

    #[test]
    fn extract_and_insert_roundtrip() {
        let word = 0xDDCC_BBAA;
        assert_eq!(DataWidth::W8.extract(Address::new(0), word), 0xAA);
        assert_eq!(DataWidth::W8.extract(Address::new(3), word), 0xDD);
        assert_eq!(DataWidth::W16.extract(Address::new(2), word), 0xDDCC);
        assert_eq!(DataWidth::W32.extract(Address::new(0), word), word);

        let merged = DataWidth::W8.insert(Address::new(1), word, 0xEE);
        assert_eq!(merged, 0xDDCC_EEAA);
        let merged = DataWidth::W16.insert(Address::new(0), word, 0x1122);
        assert_eq!(merged, 0xDDCC_1122);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for w in DataWidth::ALL {
            assert_eq!(DataWidth::decode(w.encode()), Some(w));
        }
        assert_eq!(DataWidth::decode(0b11), None);
    }

    #[test]
    fn insert_masks_oversized_value() {
        let merged = DataWidth::W8.insert(Address::new(0), 0, 0xABCD);
        assert_eq!(merged, 0xCD);
    }
}
