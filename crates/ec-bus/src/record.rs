//! Per-transaction lifecycle records.
//!
//! Every bus model in the workspace — the cycle-true RTL reference and
//! both TLM layers — reports transaction lifetimes in this shape, so
//! timing comparisons (Table 1) are plain record-by-record diffs.

use crate::addr::Address;
use crate::error::BusError;
use crate::merge::DataWidth;
use crate::txn::{AccessKind, BurstLen, TxnId};

/// What a model recorded about one transaction's lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// The identity the master assigned.
    pub id: TxnId,
    /// Fetch, load or store.
    pub kind: AccessKind,
    /// Start address.
    pub addr: Address,
    /// Beat width.
    pub width: DataWidth,
    /// Beat count.
    pub burst: BurstLen,
    /// Cycle the master first presented the request.
    pub issue_cycle: u64,
    /// Cycle the address phase completed.
    pub addr_done_cycle: Option<u64>,
    /// Cycle the final beat completed (or the error was signalled).
    pub done_cycle: Option<u64>,
    /// Error that terminated the transaction, if any.
    pub error: Option<BusError>,
    /// Beat payloads: write data going out, or read data collected.
    pub data: Vec<u32>,
}

impl TxnRecord {
    /// Transaction latency in cycles (issue through completion,
    /// inclusive); `None` while in flight.
    pub fn latency(&self) -> Option<u64> {
        self.done_cycle.map(|d| d - self.issue_cycle + 1)
    }
}

/// Compares two record sets transaction-by-transaction and reports the
/// first divergence, if any — the workhorse of the model-equivalence
/// integration tests.
pub fn first_divergence<'a>(
    reference: &'a [TxnRecord],
    candidate: &'a [TxnRecord],
) -> Option<(usize, &'a TxnRecord, Option<&'a TxnRecord>)> {
    for (i, r) in reference.iter().enumerate() {
        match candidate.get(i) {
            None => return Some((i, r, None)),
            Some(c) if c != r => return Some((i, r, Some(c))),
            Some(_) => {}
        }
    }
    if candidate.len() > reference.len() {
        return Some((
            reference.len(),
            candidate.last().expect("candidate longer"),
            None,
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, issue: u64, done: Option<u64>) -> TxnRecord {
        TxnRecord {
            id: TxnId(id),
            kind: AccessKind::DataRead,
            addr: Address::new(0x100),
            width: DataWidth::W32,
            burst: BurstLen::Single,
            issue_cycle: issue,
            addr_done_cycle: done,
            done_cycle: done,
            error: None,
            data: Vec::new(),
        }
    }

    #[test]
    fn latency_is_inclusive() {
        assert_eq!(rec(0, 2, Some(5)).latency(), Some(4));
        assert_eq!(rec(0, 2, None).latency(), None);
    }

    #[test]
    fn divergence_detects_first_mismatch() {
        let a = vec![rec(0, 0, Some(0)), rec(1, 1, Some(1))];
        let mut b = a.clone();
        assert!(first_divergence(&a, &b).is_none());
        b[1].done_cycle = Some(2);
        let (i, _, _) = first_divergence(&a, &b).expect("divergence");
        assert_eq!(i, 1);
    }

    #[test]
    fn divergence_detects_length_mismatch() {
        let a = vec![rec(0, 0, Some(0))];
        let b: Vec<TxnRecord> = Vec::new();
        assert!(first_divergence(&a, &b).is_some());
        assert!(first_divergence(&b, &a).is_some());
    }
}
