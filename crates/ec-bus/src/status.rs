//! The non-blocking interface return states.

use std::fmt;

/// Status returned by every non-blocking bus interface call.
///
/// The paper (§3.1): *"The interface returns a bus state, which can have
/// the states request, wait, ok, or error. Request means the bus request
/// has been accepted, wait means the request is in progress, error
/// indicates a bus error, ok indicates a finished bus request."* The
/// master keeps invoking the interface every clock cycle until it sees
/// [`Ok`](BusStatus::Ok) or [`Error`](BusStatus::Error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusStatus {
    /// The request has been accepted into the bus on this call.
    Request,
    /// The request is in progress; poll again next cycle.
    Wait,
    /// The request finished successfully; any read data is available.
    Ok,
    /// The request terminated with a bus error (decode failure, access
    /// violation, or a slave-signalled error).
    Error,
}

impl BusStatus {
    /// True for the terminal states [`Ok`](Self::Ok) and
    /// [`Error`](Self::Error).
    pub const fn is_done(self) -> bool {
        matches!(self, BusStatus::Ok | BusStatus::Error)
    }
}

impl fmt::Display for BusStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusStatus::Request => "request",
            BusStatus::Wait => "wait",
            BusStatus::Ok => "ok",
            BusStatus::Error => "error",
        };
        f.write_str(s)
    }
}

// A terminal `Error` status is usable as an error value directly (e.g.
// in campaign manifests and `?`-style test plumbing); the richer cause
// lives in [`crate::BusError`].
impl std::error::Error for BusStatus {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(BusStatus::Ok.is_done());
        assert!(BusStatus::Error.is_done());
        assert!(!BusStatus::Request.is_done());
        assert!(!BusStatus::Wait.is_done());
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(BusStatus::Request.to_string(), "request");
        assert_eq!(BusStatus::Wait.to_string(), "wait");
        assert_eq!(BusStatus::Ok.to_string(), "ok");
        assert_eq!(BusStatus::Error.to_string(), "error");
    }
}
