//! Bus arbitration for multi-master configurations.
//!
//! The paper's EC interface is single-master, but its successor
//! architectures (and the AMBA-family buses the TLM literature models)
//! put an arbiter between several masters and the shared address
//! channel. This module provides the one shared arbitration kernel used
//! by **every** layer — the RTL reference grants per clock edge, the
//! layer-1 TLM grants per modeled cycle, and the layer-2 TLM grants per
//! issue event — so cross-layer equivalence is a property of the shared
//! code, not of three parallel reimplementations.
//!
//! The protocol is the classic two-wire request/grant handshake:
//!
//! 1. At each rising edge every master that wants to issue raises its
//!    request line.
//! 2. The arbiter combinationally grants **at most one** requester.
//! 3. The granted master drives the address channel that same cycle;
//!    losers keep their request raised and re-arbitrate next cycle
//!    (they accumulate *grant wait states*).
//!
//! Two policies are provided. [`ArbitrationPolicy::FixedPriority`]
//! always grants the lowest-indexed requester (master 0 — the CPU —
//! can never be blocked, DMA can starve). [`ArbitrationPolicy::RoundRobin`]
//! scans from one past the previous grant winner, so continuous
//! requesters alternate and no master waits more than `n - 1` grants.

/// Which master wins when several request in the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbitrationPolicy {
    /// Lowest master index wins; master 0 never waits.
    FixedPriority,
    /// Rotating priority starting one past the last winner.
    RoundRobin,
}

impl ArbitrationPolicy {
    /// Both policies, in a stable order — for sweeps.
    pub const ALL: [ArbitrationPolicy; 2] = [
        ArbitrationPolicy::FixedPriority,
        ArbitrationPolicy::RoundRobin,
    ];

    /// Stable lower-case name (used in campaign axes and serve specs).
    pub fn name(self) -> &'static str {
        match self {
            ArbitrationPolicy::FixedPriority => "fixed",
            ArbitrationPolicy::RoundRobin => "rr",
        }
    }

    /// Parses [`name`](Self::name) output.
    pub fn from_name(s: &str) -> Option<ArbitrationPolicy> {
        match s {
            "fixed" => Some(ArbitrationPolicy::FixedPriority),
            "rr" => Some(ArbitrationPolicy::RoundRobin),
            _ => None,
        }
    }
}

/// Per-master arbitration statistics, accumulated as the run proceeds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Grants won by each master.
    pub grants: Vec<u64>,
    /// Cycles each master requested but was **not** granted (its grant
    /// wait states).
    pub waits: Vec<u64>,
    /// Cycles in which two or more masters requested simultaneously.
    pub contended_cycles: u64,
}

/// The shared arbitration state machine.
///
/// Deterministic: the grant sequence is a pure function of the policy
/// and the request-line history, so identical request streams at two
/// model layers produce identical grant lines.
#[derive(Debug, Clone)]
pub struct Arbiter {
    policy: ArbitrationPolicy,
    /// Last winner, for the round-robin scan start. `None` before the
    /// first grant (scan starts at master 0).
    last: Option<usize>,
    stats: ArbiterStats,
    /// Grant log: `(cycle, master)` per grant, in cycle order. The RTL
    /// and TLM1 logs are compared entry-for-entry by the equivalence
    /// suite ("cycle-exact grant lines").
    log: Vec<(u64, usize)>,
    keep_log: bool,
}

impl Arbiter {
    /// A fresh arbiter for `masters` request lines.
    pub fn new(policy: ArbitrationPolicy, masters: usize) -> Self {
        Arbiter {
            policy,
            last: None,
            stats: ArbiterStats {
                grants: vec![0; masters],
                waits: vec![0; masters],
                contended_cycles: 0,
            },
            log: Vec::new(),
            keep_log: true,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> ArbitrationPolicy {
        self.policy
    }

    /// Disables the grant log (throughput mode); stats stay live.
    pub fn disable_log(&mut self) {
        self.keep_log = false;
    }

    /// Arbitrates one cycle. `requests[i]` is master `i`'s request
    /// line; returns the granted master, if any.
    pub fn grant(&mut self, cycle: u64, requests: &[bool]) -> Option<usize> {
        debug_assert_eq!(requests.len(), self.stats.grants.len());
        let requesting = requests.iter().filter(|r| **r).count();
        if requesting == 0 {
            return None;
        }
        if requesting > 1 {
            self.stats.contended_cycles += 1;
        }
        let n = requests.len();
        let start = match self.policy {
            ArbitrationPolicy::FixedPriority => 0,
            ArbitrationPolicy::RoundRobin => self.last.map_or(0, |l| (l + 1) % n),
        };
        let winner = (0..n)
            .map(|k| (start + k) % n)
            .find(|&i| requests[i])
            .expect("at least one requester");
        self.last = Some(winner);
        self.stats.grants[winner] += 1;
        for (i, &req) in requests.iter().enumerate() {
            if req && i != winner {
                self.stats.waits[i] += 1;
            }
        }
        if self.keep_log {
            self.log.push((cycle, winner));
        }
        Some(winner)
    }

    /// The statistics so far.
    pub fn stats(&self) -> &ArbiterStats {
        &self.stats
    }

    /// The grant log so far: `(cycle, master)` in cycle order.
    pub fn log(&self) -> &[(u64, usize)] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_priority_always_grants_lowest_requester() {
        let mut arb = Arbiter::new(ArbitrationPolicy::FixedPriority, 2);
        for cycle in 0..10 {
            assert_eq!(arb.grant(cycle, &[true, true]), Some(0));
        }
        assert_eq!(arb.stats().grants, vec![10, 0]);
        assert_eq!(arb.stats().waits, vec![0, 10]);
        assert_eq!(arb.stats().contended_cycles, 10);
    }

    #[test]
    fn fixed_priority_grants_dma_when_cpu_silent() {
        let mut arb = Arbiter::new(ArbitrationPolicy::FixedPriority, 2);
        assert_eq!(arb.grant(0, &[false, true]), Some(1));
        assert_eq!(arb.stats().waits, vec![0, 0]);
    }

    #[test]
    fn round_robin_alternates_under_full_contention() {
        let mut arb = Arbiter::new(ArbitrationPolicy::RoundRobin, 2);
        let winners: Vec<_> = (0..6)
            .map(|c| arb.grant(c, &[true, true]).unwrap())
            .collect();
        assert_eq!(winners, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(arb.stats().grants, vec![3, 3]);
    }

    #[test]
    fn round_robin_skips_silent_masters() {
        let mut arb = Arbiter::new(ArbitrationPolicy::RoundRobin, 3);
        assert_eq!(arb.grant(0, &[true, false, true]), Some(0));
        // Scan resumes at 1, which is silent, so 2 wins.
        assert_eq!(arb.grant(1, &[true, false, true]), Some(2));
        assert_eq!(arb.grant(2, &[true, false, false]), Some(0));
    }

    #[test]
    fn no_request_no_grant() {
        let mut arb = Arbiter::new(ArbitrationPolicy::RoundRobin, 2);
        assert_eq!(arb.grant(0, &[false, false]), None);
        assert!(arb.log().is_empty());
        assert_eq!(arb.stats().contended_cycles, 0);
    }

    #[test]
    fn grant_log_records_cycle_and_winner() {
        let mut arb = Arbiter::new(ArbitrationPolicy::FixedPriority, 2);
        arb.grant(3, &[false, true]);
        arb.grant(7, &[true, false]);
        assert_eq!(arb.log(), &[(3, 1), (7, 0)]);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in ArbitrationPolicy::ALL {
            assert_eq!(ArbitrationPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(ArbitrationPolicy::from_name("bogus"), None);
    }
}
