//! Outstanding-transaction accounting.
//!
//! The modeled core (paper §1) *"limits the number of possible outstanding
//! transactions to four burst instruction reads, four burst data reads,
//! and four burst writes"*. [`OutstandingTracker`] enforces those
//! per-category ceilings for every bus model; exceeding a ceiling is a
//! master-side protocol violation, so the tracker's `try_issue` is the
//! gatekeeper each master interface calls before accepting a request.

use crate::txn::AccessKind;
use std::fmt;

/// The three independently limited transaction categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnCategory {
    /// Instruction-read transactions.
    InstrRead,
    /// Data-read transactions.
    DataRead,
    /// Write transactions.
    Write,
}

impl TxnCategory {
    /// All categories.
    pub const ALL: [TxnCategory; 3] = [
        TxnCategory::InstrRead,
        TxnCategory::DataRead,
        TxnCategory::Write,
    ];

    /// The category a given access kind is accounted under.
    pub const fn of(kind: AccessKind) -> TxnCategory {
        match kind {
            AccessKind::InstrFetch => TxnCategory::InstrRead,
            AccessKind::DataRead => TxnCategory::DataRead,
            AccessKind::DataWrite => TxnCategory::Write,
        }
    }

    const fn index(self) -> usize {
        match self {
            TxnCategory::InstrRead => 0,
            TxnCategory::DataRead => 1,
            TxnCategory::Write => 2,
        }
    }
}

impl fmt::Display for TxnCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxnCategory::InstrRead => "instruction read",
            TxnCategory::DataRead => "data read",
            TxnCategory::Write => "write",
        };
        f.write_str(s)
    }
}

/// Per-category outstanding-transaction ceilings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutstandingLimits {
    /// Maximum concurrent instruction reads.
    pub instr_reads: u32,
    /// Maximum concurrent data reads.
    pub data_reads: u32,
    /// Maximum concurrent writes.
    pub writes: u32,
}

impl OutstandingLimits {
    /// The limits of the modeled core: four of each category.
    pub const CORE_DEFAULT: OutstandingLimits = OutstandingLimits {
        instr_reads: 4,
        data_reads: 4,
        writes: 4,
    };

    /// The ceiling for `category`.
    pub const fn limit(&self, category: TxnCategory) -> u32 {
        match category {
            TxnCategory::InstrRead => self.instr_reads,
            TxnCategory::DataRead => self.data_reads,
            TxnCategory::Write => self.writes,
        }
    }
}

impl Default for OutstandingLimits {
    fn default() -> Self {
        OutstandingLimits::CORE_DEFAULT
    }
}

/// Live outstanding-transaction counters against a set of
/// [`OutstandingLimits`].
///
/// ```
/// use hierbus_ec::{OutstandingLimits, OutstandingTracker, TxnCategory};
/// let mut t = OutstandingTracker::new(OutstandingLimits::CORE_DEFAULT);
/// assert!(t.try_issue(TxnCategory::Write));
/// assert_eq!(t.in_flight(TxnCategory::Write), 1);
/// t.complete(TxnCategory::Write);
/// assert_eq!(t.in_flight(TxnCategory::Write), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutstandingTracker {
    limits: OutstandingLimits,
    counts: [u32; 3],
    /// Highest simultaneous occupancy seen, per category (for diagnostics).
    high_water: [u32; 3],
}

impl OutstandingTracker {
    /// Creates a tracker with the given ceilings and no transactions in
    /// flight.
    pub fn new(limits: OutstandingLimits) -> Self {
        OutstandingTracker {
            limits,
            counts: [0; 3],
            high_water: [0; 3],
        }
    }

    /// The configured ceilings.
    pub fn limits(&self) -> OutstandingLimits {
        self.limits
    }

    /// Attempts to account a new transaction; returns `false` (and changes
    /// nothing) if the category is at its ceiling.
    pub fn try_issue(&mut self, category: TxnCategory) -> bool {
        let i = category.index();
        if self.counts[i] >= self.limits.limit(category) {
            return false;
        }
        self.counts[i] += 1;
        self.high_water[i] = self.high_water[i].max(self.counts[i]);
        true
    }

    /// True if a new transaction of `category` could be issued now.
    pub fn can_issue(&self, category: TxnCategory) -> bool {
        self.counts[category.index()] < self.limits.limit(category)
    }

    /// Releases one transaction of `category`.
    ///
    /// # Panics
    ///
    /// Panics if no transaction of that category is in flight — completing
    /// a transaction that was never issued is a model bug worth failing
    /// loudly on.
    pub fn complete(&mut self, category: TxnCategory) {
        let i = category.index();
        assert!(self.counts[i] > 0, "no outstanding {category} to complete");
        self.counts[i] -= 1;
    }

    /// Transactions of `category` currently in flight.
    pub fn in_flight(&self, category: TxnCategory) -> u32 {
        self.counts[category.index()]
    }

    /// Total transactions in flight across all categories.
    pub fn total_in_flight(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Highest simultaneous occupancy observed for `category`.
    pub fn high_water(&self, category: TxnCategory) -> u32 {
        self.high_water[category.index()]
    }
}

impl Default for OutstandingTracker {
    fn default() -> Self {
        OutstandingTracker::new(OutstandingLimits::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_mapping() {
        assert_eq!(
            TxnCategory::of(AccessKind::InstrFetch),
            TxnCategory::InstrRead
        );
        assert_eq!(TxnCategory::of(AccessKind::DataRead), TxnCategory::DataRead);
        assert_eq!(TxnCategory::of(AccessKind::DataWrite), TxnCategory::Write);
    }

    #[test]
    fn ceilings_enforced_per_category() {
        let mut t = OutstandingTracker::default();
        for _ in 0..4 {
            assert!(t.try_issue(TxnCategory::DataRead));
        }
        assert!(!t.try_issue(TxnCategory::DataRead));
        assert!(!t.can_issue(TxnCategory::DataRead));
        // Other categories are unaffected.
        assert!(t.try_issue(TxnCategory::Write));
        assert_eq!(t.total_in_flight(), 5);
    }

    #[test]
    fn complete_frees_a_slot() {
        let mut t = OutstandingTracker::default();
        for _ in 0..4 {
            t.try_issue(TxnCategory::Write);
        }
        t.complete(TxnCategory::Write);
        assert!(t.try_issue(TxnCategory::Write));
        assert_eq!(t.high_water(TxnCategory::Write), 4);
    }

    #[test]
    #[should_panic(expected = "no outstanding")]
    fn spurious_complete_panics() {
        let mut t = OutstandingTracker::default();
        t.complete(TxnCategory::InstrRead);
    }

    #[test]
    fn custom_limits() {
        let limits = OutstandingLimits {
            instr_reads: 1,
            data_reads: 2,
            writes: 0,
        };
        let mut t = OutstandingTracker::new(limits);
        assert!(t.try_issue(TxnCategory::InstrRead));
        assert!(!t.try_issue(TxnCategory::InstrRead));
        assert!(!t.try_issue(TxnCategory::Write));
    }
}
