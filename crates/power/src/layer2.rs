//! The layer-2 (per-phase) energy model.

use crate::characterize::CharacterizationDb;
use hierbus_core::{PhaseEvent, PhaseKind};
use hierbus_ec::SignalClass;

/// The layer-2 energy model: one estimate per completed protocol phase.
///
/// Estimation rules (§3.3 of the paper, "Layer 2 Energy Model"):
///
/// * **Address phase** — the model has no record of the address bus's
///   previous value (that belonged to the *previous* transaction), so it
///   charges the characterized average transition counts for the address
///   bus and control group.
/// * **Data phase** — the first beat is likewise charged at the
///   characterized average; for subsequent beats the data is in hand
///   (the burst's slice), so the actual Hamming distance between
///   consecutive beat words is used. Control wires are charged the
///   per-beat average for every beat.
///
/// Because the averages come from a gate-level training run (which counts
/// glitches) and ignore inter-transaction correlation, the model
/// systematically **over**estimates on address-sequential traffic — the
/// behaviour behind the paper's +14.7% row of Table 2.
///
/// The power interface has exactly one query,
/// [`energy_since_last_call`](Self::energy_since_last_call): energy is
/// booked when a phase *completes*, so a sample taken between two phase
/// completions attributes whole phases to the interval (Fig. 6's
/// sampling semantics) — this model does not support cycle-accurate
/// profiling.
#[derive(Debug, Clone)]
pub struct Layer2EnergyModel {
    db: CharacterizationDb,
    total_pj: f64,
    since_last_pj: f64,
    /// Optional ablation: remember the last word seen on each data bus
    /// and the last address, restoring the inter-transaction knowledge
    /// layer 2 normally lacks.
    correlation_correction: bool,
    last_addr: Option<u64>,
    last_read_word: Option<u32>,
    last_write_word: Option<u32>,
    phases_estimated: u64,
    partial_phases: u64,
}

impl Layer2EnergyModel {
    /// Creates the model over a characterization database.
    pub fn new(db: CharacterizationDb) -> Self {
        Layer2EnergyModel {
            db,
            total_pj: 0.0,
            since_last_pj: 0.0,
            correlation_correction: false,
            last_addr: None,
            last_read_word: None,
            last_write_word: None,
            phases_estimated: 0,
            partial_phases: 0,
        }
    }

    /// Enables the inter-transaction correlation correction (ablation
    /// study): first-beat and address estimates use actual Hamming
    /// distances to the previously observed bus values instead of
    /// training averages. This is *not* part of the paper's layer-2
    /// model — it quantifies exactly how much of the overestimate the
    /// missing correlation causes.
    pub fn enable_correlation_correction(&mut self) {
        self.correlation_correction = true;
    }

    /// Books the energy of one completed phase — or, for a phase
    /// truncated by a card tear (`ev.completed == false`), its
    /// characterized per-phase average pro-rata: the layer has no
    /// signal knowledge of the interrupted cycles, so it charges
    /// `cycles / planned_cycles` of the average-only estimate.
    ///
    /// Returns the energy booked for this event, in pJ, so callers can
    /// attribute it (see [`on_event_ledger`](Self::on_event_ledger)).
    pub fn on_event(&mut self, ev: &PhaseEvent) -> f64 {
        if !ev.completed {
            let fraction = f64::from(ev.cycles) / f64::from(ev.planned_cycles.max(1));
            let e = |class: SignalClass| self.db.energy_per_toggle(class);
            let full = match ev.kind {
                PhaseKind::Address => {
                    self.db.avg_addr_bus_toggles() * e(SignalClass::AddrBus)
                        + self.db.avg_addr_ctl_toggles() * e(SignalClass::AddrCtl)
                }
                PhaseKind::ReadData => {
                    let (avg_data, avg_ctl) = self.db.avg_read_beat_toggles();
                    ev.beats as f64
                        * (avg_data * e(SignalClass::ReadData) + avg_ctl * e(SignalClass::ReadCtl))
                }
                PhaseKind::WriteData => {
                    let (avg_data, avg_ctl) = self.db.avg_write_beat_toggles();
                    ev.beats as f64
                        * (avg_data * e(SignalClass::WriteData)
                            + avg_ctl * e(SignalClass::WriteCtl))
                }
            };
            let energy = full * fraction;
            self.total_pj += energy;
            self.since_last_pj += energy;
            self.phases_estimated += 1;
            self.partial_phases += 1;
            return energy;
        }
        let e = |class: SignalClass| self.db.energy_per_toggle(class);
        let energy = match ev.kind {
            PhaseKind::Address => {
                let bus_toggles = match (self.correlation_correction, self.last_addr) {
                    (true, Some(prev)) => (prev ^ ev.addr.raw()).count_ones() as f64,
                    _ => self.db.avg_addr_bus_toggles(),
                };
                self.last_addr = Some(ev.addr.raw());
                bus_toggles * e(SignalClass::AddrBus)
                    + self.db.avg_addr_ctl_toggles() * e(SignalClass::AddrCtl)
            }
            PhaseKind::ReadData => {
                let (avg_data, avg_ctl) = self.db.avg_read_beat_toggles();

                Self::data_phase_toggles(
                    &ev.data,
                    avg_data,
                    self.correlation_correction,
                    &mut self.last_read_word,
                ) * e(SignalClass::ReadData)
                    + ev.beats as f64 * avg_ctl * e(SignalClass::ReadCtl)
            }
            PhaseKind::WriteData => {
                let (avg_data, avg_ctl) = self.db.avg_write_beat_toggles();

                Self::data_phase_toggles(
                    &ev.data,
                    avg_data,
                    self.correlation_correction,
                    &mut self.last_write_word,
                ) * e(SignalClass::WriteData)
                    + ev.beats as f64 * avg_ctl * e(SignalClass::WriteCtl)
            }
        };
        self.total_pj += energy;
        self.since_last_pj += energy;
        self.phases_estimated += 1;
        energy
    }

    /// [`on_event`](Self::on_event), plus attribution: the booked
    /// energy lands in the ledger bucket for the event's slave window,
    /// protocol phase and access kind. Layer 2 prices whole phases, so
    /// its ledgers have no idle bucket; the ledger total still matches
    /// [`total_energy`](Self::total_energy) up to f64 regrouping.
    pub fn on_event_ledger(
        &mut self,
        ev: &PhaseEvent,
        ledger: &mut hierbus_obs::EnergyLedger,
        slaves: &hierbus_obs::SlaveMap,
    ) {
        self.on_event_ledger_by_master(ev, ledger, slaves, |_| None);
    }

    /// [`on_event_ledger`](Self::on_event_ledger) with the per-master
    /// dimension: the bucket is additionally tagged with the name of
    /// the master owning the event's transaction, resolved from the
    /// event's trace id by `master_of` (multi-master runs pass
    /// [`hierbus_ec::dma::master_of_trace`]). A `None` resolution
    /// books into the untagged bucket, so single-master ledgers are
    /// unchanged.
    pub fn on_event_ledger_by_master(
        &mut self,
        ev: &PhaseEvent,
        ledger: &mut hierbus_obs::EnergyLedger,
        slaves: &hierbus_obs::SlaveMap,
        master_of: impl Fn(u64) -> Option<&'static str>,
    ) {
        use hierbus_obs::{AccessClass, BucketKey, LedgerPhase};
        let energy = self.on_event(ev);
        let phase = match ev.kind {
            PhaseKind::Address => LedgerPhase::Address,
            PhaseKind::ReadData => LedgerPhase::ReadData,
            PhaseKind::WriteData => LedgerPhase::WriteData,
        };
        let class = match ev.access {
            hierbus_ec::AccessKind::InstrFetch => AccessClass::Fetch,
            hierbus_ec::AccessKind::DataRead => AccessClass::Read,
            hierbus_ec::AccessKind::DataWrite => AccessClass::Write,
        };
        let key = BucketKey::new(slaves.resolve(ev.addr.raw()), phase, Some(class))
            .with_master(master_of(ev.trace_id));
        ledger.book(key, energy);
    }

    /// Data-bus toggle estimate for a whole data phase: first beat at the
    /// training average (or corrected), following beats at actual
    /// intra-burst Hamming distance.
    fn data_phase_toggles(
        data: &[u32],
        avg_first: f64,
        corrected: bool,
        last_word: &mut Option<u32>,
    ) -> f64 {
        let mut toggles = match (corrected, *last_word, data.first()) {
            (true, Some(prev), Some(&first)) => (prev ^ first).count_ones() as f64,
            _ => avg_first,
        };
        for pair in data.windows(2) {
            toggles += (pair[0] ^ pair[1]).count_ones() as f64;
        }
        if let Some(&last) = data.last() {
            *last_word = Some(last);
        }
        toggles
    }

    /// Energy dissipated since the previous call, in pJ — the layer-2
    /// power interface's only method.
    pub fn energy_since_last_call(&mut self) -> f64 {
        std::mem::take(&mut self.since_last_pj)
    }

    /// Total estimated energy in pJ.
    pub fn total_energy(&self) -> f64 {
        self.total_pj
    }

    /// Number of phases booked so far.
    pub fn phases_estimated(&self) -> u64 {
        self.phases_estimated
    }

    /// Number of truncated (card-tear) phases booked pro-rata.
    pub fn partial_phases(&self) -> u64 {
        self.partial_phases
    }

    /// The characterization database in use.
    pub fn db(&self) -> &CharacterizationDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::{AccessKind, Address, DataWidth};

    fn addr_event(addr: u64) -> PhaseEvent {
        PhaseEvent {
            kind: PhaseKind::Address,
            addr: Address::new(addr),
            access: AccessKind::DataRead,
            width: DataWidth::W32,
            beats: 1,
            cycles: 1,
            planned_cycles: 1,
            completed: true,
            data: Vec::new(),
            at_cycle: 0,
            trace_id: 0,
        }
    }

    fn read_event(data: Vec<u32>) -> PhaseEvent {
        PhaseEvent {
            kind: PhaseKind::ReadData,
            addr: Address::new(0x100),
            access: AccessKind::DataRead,
            width: DataWidth::W32,
            beats: data.len() as u32,
            cycles: data.len() as u32,
            planned_cycles: data.len() as u32,
            completed: true,
            data,
            at_cycle: 0,
            trace_id: 0,
        }
    }

    #[test]
    fn address_phase_uses_training_average() {
        let mut m = Layer2EnergyModel::new(CharacterizationDb::uniform());
        m.on_event(&addr_event(0x100));
        // uniform db: avg addr toggles = 18 bus + 4 ctl, 1 pJ each.
        assert_eq!(m.total_energy(), 22.0);
    }

    #[test]
    fn correlated_addresses_do_not_reduce_the_uncorrected_estimate() {
        let mut m = Layer2EnergyModel::new(CharacterizationDb::uniform());
        m.on_event(&addr_event(0x100));
        m.on_event(&addr_event(0x104)); // 1-bit actual distance
                                        // Uncorrected layer 2 still charges the average for both phases.
        assert_eq!(m.total_energy(), 44.0);
    }

    #[test]
    fn correlation_correction_uses_actual_hamming() {
        let mut m = Layer2EnergyModel::new(CharacterizationDb::uniform());
        m.enable_correlation_correction();
        m.on_event(&addr_event(0x100)); // first: average (18 + 4)
        m.on_event(&addr_event(0x104)); // corrected: 1 + 4
        assert_eq!(m.total_energy(), 22.0 + 5.0);
    }

    #[test]
    fn burst_uses_intra_transaction_hamming() {
        let mut m = Layer2EnergyModel::new(CharacterizationDb::uniform());
        // Beats: first at avg (16), then hamming 1 and 2; ctl 3 beats × 3.
        m.on_event(&read_event(vec![0b000, 0b001, 0b111]));
        assert_eq!(m.total_energy(), 16.0 + 1.0 + 2.0 + 9.0);
    }

    #[test]
    fn since_last_call_implements_fig6_sampling() {
        let mut m = Layer2EnergyModel::new(CharacterizationDb::uniform());
        m.on_event(&addr_event(0x100)); // phase 1
        m.on_event(&addr_event(0x200)); // phase 2
        let t1 = m.energy_since_last_call();
        assert_eq!(t1, 44.0); // both completed phases land in sample 1
        m.on_event(&read_event(vec![0xF]));
        let t2 = m.energy_since_last_call();
        assert!(t2 > 0.0);
        assert_eq!(m.energy_since_last_call(), 0.0);
        assert_eq!(m.total_energy(), t1 + t2);
    }

    #[test]
    fn truncated_phase_charges_average_pro_rata() {
        let mut m = Layer2EnergyModel::new(CharacterizationDb::uniform());
        // A 4-beat read phase torn after 2 of its 4 cycles: half of the
        // average-only estimate (4 beats × (16 data + 3 ctl) = 76).
        let ev = PhaseEvent {
            beats: 4,
            cycles: 2,
            planned_cycles: 4,
            completed: false,
            data: Vec::new(),
            ..read_event(vec![0, 0, 0, 0])
        };
        m.on_event(&ev);
        assert_eq!(m.total_energy(), 76.0 / 2.0);
        assert_eq!(m.partial_phases(), 1);
        // The charge scales linearly with the driven fraction: the same
        // phase torn one cycle later costs proportionally more.
        let mut later = Layer2EnergyModel::new(CharacterizationDb::uniform());
        later.on_event(&PhaseEvent {
            cycles: 3,
            ..ev.clone()
        });
        assert_eq!(later.total_energy(), 76.0 * 3.0 / 4.0);
    }

    #[test]
    fn ledger_booking_decomposes_the_total() {
        use hierbus_obs::{BucketKey, EnergyLedger, LedgerPhase, SlaveMap};
        let mut m = Layer2EnergyModel::new(CharacterizationDb::uniform());
        let mut ledger = EnergyLedger::new("tlm2");
        let mut slaves = SlaveMap::new();
        slaves.add(0x0, 0x1000, "mem");
        m.on_event_ledger(&addr_event(0x100), &mut ledger, &slaves);
        m.on_event_ledger(&read_event(vec![0b000, 0b001]), &mut ledger, &slaves);
        // Attribution only decomposes: bucket sum equals the model total.
        assert_eq!(ledger.total_pj(), m.total_energy());
        assert_eq!(
            ledger.get(&BucketKey::new(
                "mem",
                LedgerPhase::Address,
                Some(hierbus_obs::AccessClass::Read)
            )),
            22.0
        );
        // Torn phases book into the same phase bucket.
        let torn = PhaseEvent {
            beats: 4,
            cycles: 2,
            planned_cycles: 4,
            completed: false,
            data: Vec::new(),
            ..read_event(vec![0, 0, 0, 0])
        };
        m.on_event_ledger(&torn, &mut ledger, &slaves);
        assert_eq!(ledger.total_pj(), m.total_energy());
        assert_eq!(ledger.bucket_count(), 2);
    }

    #[test]
    fn phase_counter_tracks_events() {
        let mut m = Layer2EnergyModel::new(CharacterizationDb::uniform());
        m.on_event(&addr_event(0));
        m.on_event(&read_event(vec![1]));
        assert_eq!(m.phases_estimated(), 2);
    }
}
