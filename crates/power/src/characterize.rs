//! The characterization database.

use hierbus_ec::SignalClass;
use std::fmt;

/// Phase/beat counts of a training run, used to turn class transition
/// totals into per-phase averages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseCounts {
    /// Address phases executed (one per transaction, including errored
    /// ones).
    pub addr_phases: u64,
    /// Read data beats executed.
    pub read_beats: u64,
    /// Write data beats executed.
    pub write_beats: u64,
}

/// Average energy per transition per signal class, plus average per-phase
/// transition counts — everything the TLM energy models need.
///
/// Built from a gate-level training run via
/// [`from_class_stats`](CharacterizationDb::from_class_stats). Because
/// the gate-level transition counts include glitches, the per-phase
/// averages are slightly pessimistic for a cycle-boundary view — one of
/// the documented reasons layer 2 overestimates.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationDb {
    /// pJ per transition, indexed by [`SignalClass::index`].
    energy_per_toggle: [f64; 6],
    /// Average transitions per address phase for the two address classes.
    avg_addr_toggles: [f64; 2],
    /// Average transitions per read beat (data, control).
    avg_read_toggles: [f64; 2],
    /// Average transitions per write beat (data, control).
    avg_write_toggles: [f64; 2],
}

impl CharacterizationDb {
    /// Builds the database from gate-level class statistics
    /// (`(class, total energy pJ, total transitions)`) and the training
    /// run's phase counts.
    ///
    /// Classes that never toggled during training get zero energy per
    /// transition — choose training sequences that exercise every class
    /// (the canned [`training_scenarios`](hierbus_ec::sequences::training_scenarios)
    /// plus a random mix do).
    pub fn from_class_stats(stats: &[(SignalClass, f64, u64)], counts: PhaseCounts) -> Self {
        let mut energy_per_toggle = [0.0; 6];
        let mut transitions = [0u64; 6];
        for &(class, energy, count) in stats {
            transitions[class.index()] = count;
            energy_per_toggle[class.index()] = if count > 0 {
                energy / count as f64
            } else {
                0.0
            };
        }
        let per_phase = |class: SignalClass, phases: u64| -> f64 {
            if phases == 0 {
                0.0
            } else {
                transitions[class.index()] as f64 / phases as f64
            }
        };
        CharacterizationDb {
            energy_per_toggle,
            avg_addr_toggles: [
                per_phase(SignalClass::AddrBus, counts.addr_phases),
                per_phase(SignalClass::AddrCtl, counts.addr_phases),
            ],
            avg_read_toggles: [
                per_phase(SignalClass::ReadData, counts.read_beats),
                per_phase(SignalClass::ReadCtl, counts.read_beats),
            ],
            avg_write_toggles: [
                per_phase(SignalClass::WriteData, counts.write_beats),
                per_phase(SignalClass::WriteCtl, counts.write_beats),
            ],
        }
    }

    /// A synthetic database for tests and examples that do not want to
    /// run a gate-level training pass: 1 pJ per toggle everywhere,
    /// half-width average activity per phase.
    pub fn uniform() -> Self {
        CharacterizationDb {
            energy_per_toggle: [1.0; 6],
            avg_addr_toggles: [
                SignalClass::AddrBus.wires() as f64 / 2.0,
                SignalClass::AddrCtl.wires() as f64 / 2.0,
            ],
            avg_read_toggles: [
                SignalClass::ReadData.wires() as f64 / 2.0,
                SignalClass::ReadCtl.wires() as f64 / 2.0,
            ],
            avg_write_toggles: [
                SignalClass::WriteData.wires() as f64 / 2.0,
                SignalClass::WriteCtl.wires() as f64 / 2.0,
            ],
        }
    }

    /// pJ per transition of a class.
    pub fn energy_per_toggle(&self, class: SignalClass) -> f64 {
        self.energy_per_toggle[class.index()]
    }

    /// Average transitions of the address bus per address phase.
    pub fn avg_addr_bus_toggles(&self) -> f64 {
        self.avg_addr_toggles[0]
    }

    /// Average transitions of the address control group per address
    /// phase.
    pub fn avg_addr_ctl_toggles(&self) -> f64 {
        self.avg_addr_toggles[1]
    }

    /// Average (data, control) transitions per read beat.
    pub fn avg_read_beat_toggles(&self) -> (f64, f64) {
        (self.avg_read_toggles[0], self.avg_read_toggles[1])
    }

    /// Average (data, control) transitions per write beat.
    pub fn avg_write_beat_toggles(&self) -> (f64, f64) {
        (self.avg_write_toggles[0], self.avg_write_toggles[1])
    }
}

impl fmt::Display for CharacterizationDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "class             pJ/toggle")?;
        for class in SignalClass::ALL {
            writeln!(
                f,
                "  {:<14} {:.4}",
                class.to_string(),
                self.energy_per_toggle(class)
            )?;
        }
        writeln!(
            f,
            "  addr phase avg toggles: bus {:.2} ctl {:.2}",
            self.avg_addr_toggles[0], self.avg_addr_toggles[1]
        )?;
        writeln!(
            f,
            "  read beat avg toggles:  data {:.2} ctl {:.2}",
            self.avg_read_toggles[0], self.avg_read_toggles[1]
        )?;
        write!(
            f,
            "  write beat avg toggles: data {:.2} ctl {:.2}",
            self.avg_write_toggles[0], self.avg_write_toggles[1]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Vec<(SignalClass, f64, u64)> {
        vec![
            (SignalClass::AddrBus, 100.0, 50),
            (SignalClass::AddrCtl, 10.0, 20),
            (SignalClass::ReadData, 80.0, 40),
            (SignalClass::ReadCtl, 5.0, 10),
            (SignalClass::WriteData, 60.0, 30),
            (SignalClass::WriteCtl, 6.0, 12),
        ]
    }

    #[test]
    fn energy_per_toggle_is_the_ratio() {
        let db = CharacterizationDb::from_class_stats(
            &stats(),
            PhaseCounts {
                addr_phases: 10,
                read_beats: 8,
                write_beats: 6,
            },
        );
        assert_eq!(db.energy_per_toggle(SignalClass::AddrBus), 2.0);
        assert_eq!(db.energy_per_toggle(SignalClass::ReadData), 2.0);
        assert_eq!(db.energy_per_toggle(SignalClass::WriteCtl), 0.5);
    }

    #[test]
    fn per_phase_averages() {
        let db = CharacterizationDb::from_class_stats(
            &stats(),
            PhaseCounts {
                addr_phases: 10,
                read_beats: 8,
                write_beats: 6,
            },
        );
        assert_eq!(db.avg_addr_bus_toggles(), 5.0);
        assert_eq!(db.avg_addr_ctl_toggles(), 2.0);
        assert_eq!(db.avg_read_beat_toggles(), (5.0, 1.25));
        assert_eq!(db.avg_write_beat_toggles(), (5.0, 2.0));
    }

    #[test]
    fn zero_counts_do_not_divide_by_zero() {
        let db = CharacterizationDb::from_class_stats(
            &[(SignalClass::AddrBus, 0.0, 0)],
            PhaseCounts::default(),
        );
        assert_eq!(db.energy_per_toggle(SignalClass::AddrBus), 0.0);
        assert_eq!(db.avg_addr_bus_toggles(), 0.0);
    }

    #[test]
    fn uniform_db_is_nonzero_everywhere() {
        let db = CharacterizationDb::uniform();
        for class in SignalClass::ALL {
            assert!(db.energy_per_toggle(class) > 0.0, "{class}");
        }
        assert!(db.avg_addr_bus_toggles() > 0.0);
    }

    #[test]
    fn display_lists_all_classes() {
        let s = CharacterizationDb::uniform().to_string();
        for class in SignalClass::ALL {
            assert!(s.contains(&class.to_string()), "{class}");
        }
    }
}
