//! Power-profile analysis.
//!
//! Smart cards care about power over *time*, not just totals: simple
//! power analysis (SPA) reads secrets off profile peaks, differential
//! power analysis (DPA) correlates profiles with data hypotheses. The
//! paper motivates cycle-accurate energy profiling with exactly this
//! threat ("Estimation of power consumption over time is important to
//! reduce the probability of a successful power analysis attack"); this
//! module provides the analysis side: peaks, windows, and Pearson
//! correlation of a profile against per-interval data weights.

use std::fmt;

/// A per-cycle (or per-interval) energy profile in pJ.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerTrace {
    samples: Vec<f64>,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PowerTrace::default()
    }

    /// Creates an empty trace with room for `capacity` intervals, so a
    /// simulation of known length never reallocates mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        PowerTrace {
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Drops all samples but keeps the allocation, for reuse across
    /// simulations.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Wraps an existing sample vector.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        PowerTrace { samples }
    }

    /// Appends one interval's energy.
    pub fn push(&mut self, energy_pj: f64) {
        self.samples.push(energy_pj);
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of intervals recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total energy in pJ.
    pub fn total(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Mean energy per interval in pJ (zero for an empty trace).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.total() / self.samples.len() as f64
        }
    }

    /// `(index, energy)` of the highest-energy interval, or `None` if
    /// empty.
    pub fn peak(&self) -> Option<(usize, f64)> {
        self.samples
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Indices of intervals whose energy exceeds `mean + factor × σ` —
    /// the "visible to SPA" spikes.
    pub fn spikes(&self, factor: f64) -> Vec<usize> {
        if self.samples.len() < 2 {
            return Vec::new();
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        let threshold = mean + factor * var.sqrt();
        self.samples
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sums the trace into non-overlapping windows of `width` intervals
    /// (the last window may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn windowed(&self, width: usize) -> PowerTrace {
        assert!(width > 0, "window width must be non-zero");
        PowerTrace {
            samples: self.samples.chunks(width).map(|c| c.iter().sum()).collect(),
        }
    }

    /// Kocher-style difference-of-means DPA statistic: partitions the
    /// intervals by the `selector` bit hypothesis and returns
    /// `mean(selected) − mean(rest)`. A hypothesis correlated with the
    /// processed data yields a visibly non-zero difference; a wrong (or
    /// masked-away) hypothesis averages out. Returns `None` when lengths
    /// differ or either partition is empty.
    pub fn difference_of_means(&self, selector: &[bool]) -> Option<f64> {
        if self.samples.len() != selector.len() {
            return None;
        }
        let (mut s1, mut n1, mut s0, mut n0) = (0.0f64, 0u32, 0.0f64, 0u32);
        for (&x, &sel) in self.samples.iter().zip(selector) {
            if sel {
                s1 += x;
                n1 += 1;
            } else {
                s0 += x;
                n0 += 1;
            }
        }
        if n1 == 0 || n0 == 0 {
            return None;
        }
        Some(s1 / n1 as f64 - s0 / n0 as f64)
    }

    /// Pearson correlation between the trace and per-interval `weights`
    /// (e.g. Hamming weights of a secret being processed) — the core DPA
    /// statistic. Returns `None` when lengths differ, fewer than two
    /// samples exist, or either series is constant.
    pub fn correlation(&self, weights: &[f64]) -> Option<f64> {
        if self.samples.len() != weights.len() || self.samples.len() < 2 {
            return None;
        }
        let n = self.samples.len() as f64;
        let mx = self.mean();
        let my = weights.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (&x, &y) in self.samples.iter().zip(weights) {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        if vx == 0.0 || vy == 0.0 {
            return None;
        }
        Some(cov / (vx.sqrt() * vy.sqrt()))
    }
}

impl FromIterator<f64> for PowerTrace {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        PowerTrace {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for PowerTrace {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl fmt::Display for PowerTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace: {} intervals, total {:.2} pJ, mean {:.3} pJ",
            self.len(),
            self.total(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_mean() {
        let t = PowerTrace::from_samples(vec![1.0, 2.0, 3.0]);
        assert_eq!(t.total(), 6.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn peak_finds_maximum() {
        let t = PowerTrace::from_samples(vec![1.0, 5.0, 2.0]);
        assert_eq!(t.peak(), Some((1, 5.0)));
        assert_eq!(PowerTrace::new().peak(), None);
    }

    #[test]
    fn spikes_flag_outliers() {
        let mut samples = vec![1.0; 100];
        samples[40] = 50.0;
        let t = PowerTrace::from_samples(samples);
        assert_eq!(t.spikes(3.0), vec![40]);
    }

    #[test]
    fn windowing_sums_chunks() {
        let t = PowerTrace::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let w = t.windowed(2);
        assert_eq!(w.samples(), &[3.0, 7.0, 5.0]);
    }

    #[test]
    fn correlation_detects_data_dependence() {
        // Energy directly proportional to the weight: correlation 1.
        let weights: Vec<f64> = (0..32).map(|i| (i % 8) as f64).collect();
        let energy: Vec<f64> = weights.iter().map(|w| 3.0 * w + 1.0).collect();
        let t = PowerTrace::from_samples(energy);
        let r = t.correlation(&weights).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_none_on_degenerate_input() {
        let t = PowerTrace::from_samples(vec![1.0, 1.0, 1.0]);
        assert_eq!(t.correlation(&[1.0, 2.0, 3.0]), None); // constant trace
        let t2 = PowerTrace::from_samples(vec![1.0, 2.0]);
        assert_eq!(t2.correlation(&[1.0]), None); // length mismatch
    }

    #[test]
    fn difference_of_means_detects_partition() {
        // Selected intervals carry 2 pJ extra.
        let selector: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let samples: Vec<f64> = selector
            .iter()
            .map(|&s| if s { 5.0 } else { 3.0 })
            .collect();
        let t = PowerTrace::from_samples(samples);
        assert_eq!(t.difference_of_means(&selector), Some(2.0));
        // A wrong hypothesis averages toward zero on balanced data.
        let wrong: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let d = t.difference_of_means(&wrong).unwrap();
        assert!(d.abs() < 0.5, "wrong hypothesis leaked {d}");
    }

    #[test]
    fn difference_of_means_degenerate_cases() {
        let t = PowerTrace::from_samples(vec![1.0, 2.0]);
        assert_eq!(t.difference_of_means(&[true]), None); // length mismatch
        assert_eq!(t.difference_of_means(&[true, true]), None); // empty side
    }

    #[test]
    fn collects_from_iterator() {
        let t: PowerTrace = vec![1.0, 2.0].into_iter().collect();
        assert_eq!(t.len(), 2);
        let mut t2 = PowerTrace::new();
        t2.extend([3.0, 4.0]);
        assert_eq!(t2.total(), 7.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let _ = PowerTrace::new().windowed(0);
    }
}
