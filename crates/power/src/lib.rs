//! Hierarchical energy models for the TLM bus layers (§3.3 of the paper).
//!
//! The methodology has three pieces:
//!
//! 1. **Characterization** ([`CharacterizationDb`]): the gate-level
//!    estimator's per-signal-class energies and transition counts from a
//!    training run are abstracted into an *average energy per transition*
//!    per class, plus average per-phase transition counts. "We abstracted
//!    all different transitions and use the average energy per transition
//!    for each signal."
//! 2. **Layer-1 model** ([`Layer1EnergyModel`]): a dedicated power module
//!    holding old/new values of every interface signal. The bus phases
//!    write the new values (the reconstructed
//!    [`SignalFrame`](hierbus_ec::SignalFrame)); at the end of each cycle
//!    bit transitions are recognised and converted to energy. Being a
//!    TLM-to-RTL adapter, it supports *cycle-accurate* profiling through
//!    two interface methods: energy of the last clock cycle and energy
//!    since the last call.
//! 3. **Layer-2 model** ([`Layer2EnergyModel`]): estimates each
//!    address/read/write phase in one shot when the phase completes, from
//!    the transaction descriptor alone. It knows intra-burst data (the
//!    slice is right there) but not the signal state left by previous
//!    transactions — the correlation blindness that makes it
//!    *over*estimate on sequential traffic, and its power interface has
//!    only the energy-since-last-call method (Fig. 6's sampling
//!    semantics).
//!
//! [`PowerTrace`] adds profile-over-time analysis (peak detection,
//! windowing, Pearson correlation against secret-data weights) serving
//! the paper's smart-card motivation: estimating power over time to
//! assess simple/differential power-analysis exposure early.

//! # Example
//!
//! ```
//! use hierbus_power::{CharacterizationDb, Layer1EnergyModel};
//! use hierbus_ec::SignalFrame;
//!
//! let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
//! let frame = SignalFrame { a_addr: 0xFF, ..SignalFrame::default() };
//! model.on_frame(&frame);               // 8 address bits rise
//! assert_eq!(model.energy_last_cycle(), 8.0); // 1 pJ/toggle in the uniform db
//! ```

pub mod characterize;
pub mod components;
pub mod layer1;
pub mod layer2;
pub mod packed;
pub mod trace;

pub use characterize::{CharacterizationDb, PhaseCounts};
pub use components::{ComponentEnergyModel, ComponentEstimate};
pub use layer1::Layer1EnergyModel;
pub use layer2::Layer2EnergyModel;
pub use packed::{Backend, BatchedLayer1, FrameBlock, PackedBits, ScalarBits, BLOCK};
pub use trace::PowerTrace;
