//! Component energy models — the paper's announced extension.
//!
//! The conclusion of the paper: *"We will extend this first model to
//! allow an early energy estimation for several different typical smart
//! card components, like random number generators, UARTs or timers."*
//! This module is that extension: per-component activity-based energy
//! models in the same characterize-then-estimate spirit as the bus
//! models. Each model maps a component's observable activity counters
//! (bytes transmitted, timer decrements, RNG words drawn, cipher blocks)
//! plus elapsed cycles onto energy:
//!
//! `E = static_per_cycle × cycles + Σ event_cost × event_count`
//!
//! The default coefficients are derived from the same synthetic layout
//! scale as the bus wires (pF-level capacitances at the 1.8 V core
//! supply); like the bus characterization they are placeholders for a
//! gate-level characterization run in a real flow.

use std::fmt;

/// One activity class of a component and its unit energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityCost {
    /// Label (for breakdowns), e.g. `"byte shifted"`.
    pub label: &'static str,
    /// Energy per event in pJ.
    pub pj_per_event: f64,
}

/// A generic activity-based component energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEnergyModel {
    name: &'static str,
    /// Clock-tree plus leakage charge per cycle, in pJ.
    static_pj_per_cycle: f64,
    costs: Vec<ActivityCost>,
}

impl ComponentEnergyModel {
    /// Creates a model.
    pub fn new(name: &'static str, static_pj_per_cycle: f64, costs: Vec<ActivityCost>) -> Self {
        ComponentEnergyModel {
            name,
            static_pj_per_cycle,
            costs,
        }
    }

    /// The component's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The activity classes of the model, in estimation order.
    pub fn costs(&self) -> &[ActivityCost] {
        &self.costs
    }

    /// Estimates total energy for `cycles` elapsed cycles and one event
    /// count per activity class.
    ///
    /// # Panics
    ///
    /// Panics if `events` does not have one entry per activity class.
    pub fn estimate(&self, cycles: u64, events: &[u64]) -> ComponentEstimate {
        assert_eq!(
            events.len(),
            self.costs.len(),
            "{}: one event count per activity class",
            self.name
        );
        let static_pj = self.static_pj_per_cycle * cycles as f64;
        let dynamic: Vec<(&'static str, f64)> = self
            .costs
            .iter()
            .zip(events)
            .map(|(c, &n)| (c.label, c.pj_per_event * n as f64))
            .collect();
        ComponentEstimate {
            name: self.name,
            static_pj,
            dynamic,
        }
    }

    /// The UART: energy per byte shifted out (the shift register plus
    /// pad driver dominate) and per register access.
    pub fn uart() -> Self {
        ComponentEnergyModel::new(
            "uart",
            0.02,
            vec![
                ActivityCost {
                    label: "byte shifted",
                    pj_per_event: 18.0,
                },
                ActivityCost {
                    label: "register access",
                    pj_per_event: 0.9,
                },
            ],
        )
    }

    /// A 16-bit down-counter timer: a decrement toggles ~2 bits on
    /// average (binary countdown), an expiry reloads the full register.
    pub fn timer() -> Self {
        ComponentEnergyModel::new(
            "timer",
            0.015,
            vec![
                ActivityCost {
                    label: "decrement",
                    pj_per_event: 0.35,
                },
                ActivityCost {
                    label: "expiry/reload",
                    pj_per_event: 2.6,
                },
            ],
        )
    }

    /// The RNG: each drawn word churns the whole generator state.
    pub fn rng() -> Self {
        ComponentEnergyModel::new(
            "rng",
            0.03,
            vec![ActivityCost {
                label: "word drawn",
                pj_per_event: 5.2,
            }],
        )
    }

    /// The crypto coprocessor: per processed block (rounds × datapath
    /// width) plus per register access.
    pub fn crypto() -> Self {
        ComponentEnergyModel::new(
            "crypto",
            0.05,
            vec![
                ActivityCost {
                    label: "block processed",
                    pj_per_event: 340.0,
                },
                ActivityCost {
                    label: "register access",
                    pj_per_event: 1.1,
                },
            ],
        )
    }
}

/// The result of one component estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEstimate {
    /// Component name.
    pub name: &'static str,
    /// Static (clock/leakage) share in pJ.
    pub static_pj: f64,
    /// `(activity label, energy pJ)` per class.
    pub dynamic: Vec<(&'static str, f64)>,
}

impl ComponentEstimate {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.static_pj + self.dynamic.iter().map(|(_, e)| e).sum::<f64>()
    }

    /// The dynamic share in pJ.
    pub fn dynamic_pj(&self) -> f64 {
        self.dynamic.iter().map(|(_, e)| e).sum()
    }
}

impl fmt::Display for ComponentEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1} pJ ({:.1} static",
            self.name,
            self.total_pj(),
            self.static_pj
        )?;
        for (label, e) in &self.dynamic {
            write!(f, ", {e:.1} {label}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_is_linear_in_activity() {
        let m = ComponentEnergyModel::uart();
        let once = m.estimate(100, &[1, 4]);
        let twice = m.estimate(100, &[2, 8]);
        assert!((twice.dynamic_pj() - 2.0 * once.dynamic_pj()).abs() < 1e-9);
        assert_eq!(once.static_pj, twice.static_pj);
    }

    #[test]
    fn static_share_scales_with_cycles() {
        let m = ComponentEnergyModel::timer();
        let short = m.estimate(100, &[0, 0]);
        let long = m.estimate(1_000, &[0, 0]);
        assert!((long.static_pj - 10.0 * short.static_pj).abs() < 1e-9);
        assert_eq!(short.dynamic_pj(), 0.0);
    }

    #[test]
    fn idle_component_still_burns_static_energy() {
        let m = ComponentEnergyModel::rng();
        let e = m.estimate(10_000, &[0]);
        assert!(e.total_pj() > 0.0);
        assert_eq!(e.total_pj(), e.static_pj);
    }

    #[test]
    fn crypto_blocks_dominate_register_traffic() {
        let m = ComponentEnergyModel::crypto();
        let e = m.estimate(1_000, &[4, 40]);
        let block = e.dynamic[0].1;
        let regs = e.dynamic[1].1;
        assert!(block > 10.0 * regs);
    }

    #[test]
    #[should_panic(expected = "one event count per activity class")]
    fn event_count_arity_checked() {
        let _ = ComponentEnergyModel::uart().estimate(10, &[1]);
    }

    #[test]
    fn display_names_every_activity() {
        let m = ComponentEnergyModel::uart();
        let s = m.estimate(10, &[3, 7]).to_string();
        assert!(s.contains("byte shifted"));
        assert!(s.contains("register access"));
        assert!(s.contains("uart"));
    }
}
