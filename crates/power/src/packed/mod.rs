//! Lane-parallel bit-transition counting for the layer-1 hot loop.
//!
//! The layer-1 model spends essentially all of its time computing
//! `popcount(cur ^ prev)` per signal class per cycle. Those operations
//! are embarrassingly lane-parallel: consecutive cycles of one class
//! column are independent words, so N of them can advance per packed
//! operation. This module provides
//!
//! * [`PackedBits`] — the backend trait (plonky2 `packed_field.rs`
//!   idiom): a guaranteed-available scalar-u64 backend plus x86_64
//!   intrinsic backends compiled behind the `simd` cargo feature and
//!   selected by *runtime* CPU detection;
//! * [`Backend`] — the runtime-dispatched kernel handle, overridable
//!   with the `HIERBUS_PACKED_BACKEND` environment variable
//!   (`scalar`, `avx2`, `avx512`, or `auto`);
//! * [`FrameBlock`] / [`BatchedLayer1`] — the structure-of-arrays
//!   buffer that turns a stream of [`SignalFrame`]s into six per-class
//!   word columns and books whole blocks of cycles through
//!   [`Layer1EnergyModel`] in one packed sweep.
//!
//! # Bit-exactness contract
//!
//! Every backend returns *integer* transition counts, and integers have
//! one representation — so any backend that counts correctly is
//! bit-identical to [`SignalFrame::diff_reference`]'s wire-by-wire
//! walk. The batched engine then replays the scalar engine's exact f64
//! schedule: per cycle, per-class weights accumulate in
//! [`SignalClass::ALL`](hierbus_ec::SignalClass::ALL) order into a
//! fresh `0.0`, then fold into the running totals in cycle order.
//! `to_bits`-equality with the scalar and reference paths is therefore
//! a structural property, pinned (not approximated) by
//! `tests/packed_differential.rs`.
//!
//! [`SignalFrame`]: hierbus_ec::SignalFrame
//! [`SignalFrame::diff_reference`]: hierbus_ec::SignalFrame::diff_reference
//! [`Layer1EnergyModel`]: crate::Layer1EnergyModel

mod block;
mod scalar;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86;

pub use block::{BatchedLayer1, FrameBlock, BLOCK};
pub use scalar::ScalarBits;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub use x86::{Avx2Bits, Avx512Bits};

use std::sync::OnceLock;

/// A lane-parallel `popcount(a ^ b)` kernel.
///
/// Implementations process [`LANES`](Self::LANES) independent `u64`
/// words per packed operation. The trait is deliberately tiny — XOR and
/// population count are the only operations the layer-1 hot loop
/// needs — and every implementation must be exact: the counts it
/// produces are integers compared bit-for-bit against the wire-by-wire
/// reference, never approximately.
pub trait PackedBits: Copy + Send + Sync + 'static {
    /// Words processed per packed operation.
    const LANES: usize;

    /// Stable human-readable backend name (`"scalar"`, `"avx2"`, ...).
    const NAME: &'static str;

    /// Whether the backend's instruction set is present on this CPU.
    /// The scalar backend always is; intrinsic backends consult runtime
    /// feature detection, so a binary compiled for baseline x86-64
    /// still uses them when the hardware allows.
    fn available() -> bool;

    /// `out[i] = popcount(cur[i] ^ prev[i])` for exactly
    /// [`LANES`](Self::LANES) lanes. All three slices must be
    /// `LANES` long.
    fn xor_popcount(cur: &[u64], prev: &[u64], out: &mut [u32]);
}

/// The runtime-selected kernel backend.
///
/// `Backend` is the dynamic face of [`PackedBits`]: detection happens
/// once per process ([`Backend::active`]), and the block engine
/// dispatches through it so one compiled binary serves every CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable `u64::count_ones` loop — always available.
    Scalar,
    /// AVX2 nibble-table popcount, 4 lanes per operation.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx2,
    /// AVX-512 `VPOPCNTQ`, 8 lanes per operation.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx512,
}

impl Backend {
    /// Every backend compiled into this binary, fastest first.
    pub const COMPILED: &'static [Backend] = &[
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Backend::Avx512,
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Backend::Avx2,
        Backend::Scalar,
    ];

    /// Stable name, matching the `HIERBUS_PACKED_BACKEND` values.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => ScalarBits::NAME,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => Avx2Bits::NAME,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx512 => Avx512Bits::NAME,
        }
    }

    /// Lane width of the backend's packed operation.
    pub fn lanes(self) -> usize {
        match self {
            Backend::Scalar => ScalarBits::LANES,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => Avx2Bits::LANES,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx512 => Avx512Bits::LANES,
        }
    }

    /// Whether this backend can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar => ScalarBits::available(),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => Avx2Bits::available(),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx512 => Avx512Bits::available(),
        }
    }

    /// Parses a `HIERBUS_PACKED_BACKEND` value. `auto` (or unset)
    /// means "fastest available"; unknown values are reported so CI
    /// typos fail loudly instead of silently benchmarking the wrong
    /// kernel.
    pub fn from_name(name: &str) -> Option<Backend> {
        Backend::COMPILED.iter().copied().find(|b| b.name() == name)
    }

    /// Detects the backend to use: the `HIERBUS_PACKED_BACKEND`
    /// override if set (panicking on a name that is unknown, not
    /// compiled in, or not available on this CPU), otherwise the
    /// fastest compiled backend the CPU supports.
    pub fn detect() -> Backend {
        match std::env::var("HIERBUS_PACKED_BACKEND") {
            Ok(v) if !v.is_empty() && v != "auto" => {
                let b = Backend::from_name(&v).unwrap_or_else(|| {
                    panic!(
                        "HIERBUS_PACKED_BACKEND={v:?} is not a compiled backend \
                         (have: {:?})",
                        Backend::COMPILED
                            .iter()
                            .map(|b| b.name())
                            .collect::<Vec<_>>()
                    )
                });
                assert!(
                    b.available(),
                    "HIERBUS_PACKED_BACKEND={v:?} is not available on this CPU"
                );
                b
            }
            _ => Backend::COMPILED
                .iter()
                .copied()
                .find(|b| b.available())
                .unwrap_or(Backend::Scalar),
        }
    }

    /// The process-wide active backend (detection cached after the
    /// first call). Everything built on [`BatchedLayer1`] uses this,
    /// so one environment variable flips the whole harness — tests,
    /// campaigns, the serve daemon — onto a chosen kernel.
    pub fn active() -> Backend {
        static ACTIVE: OnceLock<Backend> = OnceLock::new();
        *ACTIVE.get_or_init(Backend::detect)
    }

    /// `out[i] = popcount(cur[i] ^ prev[i])` over slices of any equal
    /// length: whole packed operations first, then a scalar tail for
    /// the remainder lanes.
    pub fn xor_popcount(self, cur: &[u64], prev: &[u64], out: &mut [u32]) {
        assert_eq!(cur.len(), prev.len());
        assert_eq!(cur.len(), out.len());
        match self {
            Backend::Scalar => kernel_loop::<ScalarBits>(cur, prev, out),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx2 => kernel_loop::<Avx2Bits>(cur, prev, out),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Backend::Avx512 => kernel_loop::<Avx512Bits>(cur, prev, out),
        }
    }

    /// Cycle-adjacent transition counts down one class column:
    /// `out[i] = popcount(words[i + 1] ^ words[i])`, requiring
    /// `words.len() == out.len() + 1`. `words[0]` is the carry — the
    /// class word of the frame *before* the block — so block
    /// boundaries are seamless. This is the frame-block engine's whole
    /// inner loop: the shifted-by-one view makes consecutive cycles
    /// into independent lanes.
    pub fn adjacent_popcount(self, words: &[u64], out: &mut [u32]) {
        assert_eq!(words.len(), out.len() + 1);
        self.xor_popcount(&words[1..], &words[..out.len()], out);
    }
}

/// Runs a [`PackedBits`] kernel over full packed operations, then
/// finishes remainder lanes (fewer than `B::LANES`) through the scalar
/// backend — the lane-tail path the differential tests pin.
fn kernel_loop<B: PackedBits>(cur: &[u64], prev: &[u64], out: &mut [u32]) {
    let n = cur.len();
    let whole = if B::LANES > 1 { n - n % B::LANES } else { n };
    let mut i = 0;
    while i < whole {
        B::xor_popcount(
            &cur[i..i + B::LANES],
            &prev[i..i + B::LANES],
            &mut out[i..i + B::LANES],
        );
        i += B::LANES;
    }
    for j in whole..n {
        out[j] = (cur[j] ^ prev[j]).count_ones();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        // SplitMix64 — deterministic fill without external crates.
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn every_compiled_backend_matches_count_ones() {
        for &b in Backend::COMPILED {
            if !b.available() {
                continue;
            }
            for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 31, 64, 127] {
                let cur = words(0xC0FFEE ^ n as u64, n);
                let prev = words(0xBEEF ^ n as u64, n);
                let mut out = vec![0u32; n];
                b.xor_popcount(&cur, &prev, &mut out);
                for i in 0..n {
                    assert_eq!(
                        out[i],
                        (cur[i] ^ prev[i]).count_ones(),
                        "backend {} lane {i} of {n}",
                        b.name()
                    );
                }
            }
        }
    }

    #[test]
    fn adjacent_popcount_is_shifted_xor() {
        for &b in Backend::COMPILED {
            if !b.available() {
                continue;
            }
            let col = words(0xAB, 33);
            let mut out = vec![0u32; 32];
            b.adjacent_popcount(&col, &mut out);
            for i in 0..32 {
                assert_eq!(out[i], (col[i + 1] ^ col[i]).count_ones());
            }
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for &b in Backend::COMPILED {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("mmx"), None);
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(Backend::Scalar.available());
        assert!(Backend::COMPILED.contains(&Backend::Scalar));
    }
}
