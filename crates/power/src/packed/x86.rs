//! x86_64 intrinsic backends (compiled only with the `simd` feature).
//!
//! Both kernels are `#[target_feature]` functions: the crate itself is
//! compiled for baseline x86-64 (which has no `POPCNT` instruction at
//! all — `u64::count_ones` lowers to a multiply-shift bit dance), and
//! the vector instructions are enabled per-function, guarded by the
//! runtime checks in [`PackedBits::available`]. That is what makes one
//! binary portable *and* fast: detection picks the widest kernel the
//! CPU actually has.

use super::PackedBits;
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// AVX2 backend: 4 lanes per operation, byte-sliced popcount.
///
/// AVX2 has no vector popcount instruction, so the kernel uses the
/// classic nibble-table method (Muła): split each byte into nibbles,
/// look both up in an in-register 16-entry table with `PSHUFB`, add,
/// then horizontally sum bytes per 64-bit lane with `PSADBW`.
#[derive(Debug, Clone, Copy)]
pub struct Avx2Bits;

impl PackedBits for Avx2Bits {
    const LANES: usize = 4;
    const NAME: &'static str = "avx2";

    fn available() -> bool {
        is_x86_feature_detected!("avx2")
    }

    #[inline]
    fn xor_popcount(cur: &[u64], prev: &[u64], out: &mut [u32]) {
        debug_assert!(cur.len() >= 4 && prev.len() >= 4 && out.len() >= 4);
        // SAFETY: construction sites check `available()` before
        // dispatching here, so AVX2 is present; the slices hold at
        // least LANES elements per the trait contract.
        unsafe { avx2_xor_popcount(cur.as_ptr(), prev.as_ptr(), out.as_mut_ptr()) }
    }
}

/// One packed AVX2 operation: `out[0..4] = popcount(cur[i] ^ prev[i])`.
///
/// # Safety
/// Requires AVX2 at runtime and 4 readable/writable lanes behind each
/// pointer.
#[target_feature(enable = "avx2")]
unsafe fn avx2_xor_popcount(cur: *const u64, prev: *const u64, out: *mut u32) {
    let a = _mm256_loadu_si256(cur.cast());
    let b = _mm256_loadu_si256(prev.cast());
    let v = _mm256_xor_si256(a, b);
    // Per-nibble popcount table, replicated across both 128-bit halves.
    let table = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
    let cnt8 = _mm256_add_epi8(
        _mm256_shuffle_epi8(table, lo),
        _mm256_shuffle_epi8(table, hi),
    );
    // Horizontal byte sums per 64-bit lane land in the low 16 bits.
    let cnt64 = _mm256_sad_epu8(cnt8, _mm256_setzero_si256());
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr().cast(), cnt64);
    for (i, lane) in lanes.iter().enumerate() {
        *out.add(i) = *lane as u32;
    }
}

/// AVX-512 backend: 8 lanes per operation via the native `VPOPCNTQ`
/// instruction (`AVX512VPOPCNTDQ` extension).
#[derive(Debug, Clone, Copy)]
pub struct Avx512Bits;

impl PackedBits for Avx512Bits {
    const LANES: usize = 8;
    const NAME: &'static str = "avx512";

    fn available() -> bool {
        is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq")
    }

    #[inline]
    fn xor_popcount(cur: &[u64], prev: &[u64], out: &mut [u32]) {
        debug_assert!(cur.len() >= 8 && prev.len() >= 8 && out.len() >= 8);
        // SAFETY: as for AVX2 — gated on `available()`, slices hold
        // LANES elements.
        unsafe { avx512_xor_popcount(cur.as_ptr(), prev.as_ptr(), out.as_mut_ptr()) }
    }
}

/// One packed AVX-512 operation: `out[0..8] = popcount(cur[i] ^ prev[i])`.
///
/// # Safety
/// Requires AVX-512F + AVX512VPOPCNTDQ at runtime and 8 readable/
/// writable lanes behind each pointer.
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn avx512_xor_popcount(cur: *const u64, prev: *const u64, out: *mut u32) {
    let a = _mm512_loadu_si512(cur.cast());
    let b = _mm512_loadu_si512(prev.cast());
    let cnt = _mm512_popcnt_epi64(_mm512_xor_si512(a, b));
    let mut lanes = [0u64; 8];
    _mm512_storeu_si512(lanes.as_mut_ptr().cast(), cnt);
    for (i, lane) in lanes.iter().enumerate() {
        *out.add(i) = *lane as u32;
    }
}
