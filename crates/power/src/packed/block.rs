//! The structure-of-arrays frame block and the batched layer-1 engine.

use super::Backend;
use crate::layer1::Layer1EnergyModel;
use hierbus_ec::{SignalFrame, TogglesByClass};

/// Frames buffered per flush. 64 cycles × 6 classes of `u64` columns
/// plus the count matrix is ~4.6 KiB — deep enough to amortize kernel
/// dispatch, small enough to live in L1.
pub const BLOCK: usize = 64;

/// A block of consecutive frames transposed into per-class word
/// columns (structure-of-arrays).
///
/// The AoS view — one [`SignalFrame`] per cycle — is what the bus
/// produces; transition counting wants the transpose: for each signal
/// class, the column of packed words across cycles, because
/// `popcount(col[i+1] ^ col[i])` for all `i` is one lane-parallel
/// sweep. Index 0 of every column is the *carry*: the class word of
/// the frame before the block, so blocks chain without a seam and an
/// empty flush is a no-op.
#[derive(Debug, Clone)]
pub struct FrameBlock {
    /// `cols[class][1 + cycle]` = packed class word; `cols[class][0]`
    /// is the carry word from before the block.
    cols: [[u64; BLOCK + 1]; 6],
    /// Per-class transition counts produced by the kernel sweep.
    counts: [[u32; BLOCK]; 6],
    /// Buffered (un-flushed) cycles.
    len: usize,
    /// The newest buffered frame, pending [`Layer1EnergyModel`]'s
    /// `prev` update at flush time.
    last: SignalFrame,
}

impl FrameBlock {
    /// An empty block whose carry is the idle (reset) frame.
    pub fn new() -> FrameBlock {
        let last = SignalFrame::default();
        let w = last.packed();
        FrameBlock {
            cols: std::array::from_fn(|c| {
                let mut col = [0u64; BLOCK + 1];
                col[0] = w.words()[c];
                col
            }),
            counts: [[0; BLOCK]; 6],
            len: 0,
            last,
        }
    }

    /// Buffered cycles not yet booked into a model.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no cycles are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops buffered frames and re-seeds the carry from `prev` (used
    /// on model reset).
    fn rewind_to(&mut self, prev: &SignalFrame) {
        let w = prev.packed();
        for (c, col) in self.cols.iter_mut().enumerate() {
            col[0] = w.words()[c];
        }
        self.len = 0;
        self.last = *prev;
    }

    /// Appends one frame's class words. Returns `true` when the block
    /// is full and must be flushed.
    #[inline]
    fn push(&mut self, frame: &SignalFrame) -> bool {
        let w = frame.packed();
        let i = self.len + 1;
        for (c, col) in self.cols.iter_mut().enumerate() {
            col[i] = w.words()[c];
        }
        self.last = *frame;
        self.len = i;
        self.len == BLOCK
    }
}

impl Default for FrameBlock {
    fn default() -> Self {
        FrameBlock::new()
    }
}

/// A [`Layer1EnergyModel`] fed through a [`FrameBlock`]: frames buffer
/// into the SoA columns, and whole blocks of per-class transition
/// counts are computed by one packed sweep per class
/// ([`Backend::adjacent_popcount`]) before being booked cycle-by-cycle
/// in the scalar engine's exact f64 order.
///
/// Queries go through [`model`](Self::model)/[`finish`](Self::finish),
/// which flush buffered cycles first — the wrapped model is only
/// current at flush boundaries.
///
/// ```
/// use hierbus_power::{BatchedLayer1, CharacterizationDb, Layer1EnergyModel};
/// use hierbus_ec::SignalFrame;
///
/// let mut batched = BatchedLayer1::new(Layer1EnergyModel::new(CharacterizationDb::uniform()));
/// let frame = SignalFrame { a_addr: 0xFF, ..SignalFrame::default() };
/// batched.on_frame(&frame); // buffered, not yet booked
/// assert_eq!(batched.model().total_energy(), 8.0); // model() flushes
/// ```
#[derive(Debug, Clone)]
pub struct BatchedLayer1 {
    model: Layer1EnergyModel,
    block: FrameBlock,
    backend: Backend,
}

impl BatchedLayer1 {
    /// Wraps a model with the process-wide [`Backend::active`] kernel.
    pub fn new(model: Layer1EnergyModel) -> BatchedLayer1 {
        BatchedLayer1::with_backend(model, Backend::active())
    }

    /// Wraps a model with an explicit kernel backend (differential
    /// tests drive every compiled backend through this).
    pub fn with_backend(model: Layer1EnergyModel, backend: Backend) -> BatchedLayer1 {
        let mut block = FrameBlock::new();
        block.rewind_to(model.prev_frame());
        BatchedLayer1 {
            model,
            block,
            backend,
        }
    }

    /// The kernel backend in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Feeds the settled frame of one bus cycle (the batched
    /// counterpart of [`Layer1EnergyModel::on_frame`]).
    ///
    /// A fresh block re-seeds its carry from the model's previous
    /// frame, so interleaving direct [`Layer1EnergyModel::on_frame`]
    /// calls (via [`model`](Self::model)) with batched feeding stays
    /// consistent.
    #[inline]
    pub fn on_frame(&mut self, frame: &SignalFrame) {
        if self.block.len == 0 {
            self.block.rewind_to(self.model.prev_frame());
        }
        if self.block.push(frame) {
            self.flush();
        }
    }

    /// Books every buffered cycle into the model: one packed
    /// transition-count sweep per signal class, then per-cycle weight
    /// accumulation in `SignalClass::ALL` order — the identical f64
    /// schedule as the scalar path, so results stay `to_bits`-exact.
    pub fn flush(&mut self) {
        let n = self.block.len;
        if n == 0 {
            return;
        }
        for c in 0..6 {
            self.backend
                .adjacent_popcount(&self.block.cols[c][..n + 1], &mut self.block.counts[c][..n]);
        }
        let counts = &self.block.counts;
        // Indexing six parallel columns at once; an iterator would need
        // a 6-way zip for no clarity gain.
        #[allow(clippy::needless_range_loop)]
        for j in 0..n {
            let diff = TogglesByClass::from_array([
                counts[0][j],
                counts[1][j],
                counts[2][j],
                counts[3][j],
                counts[4][j],
                counts[5][j],
            ]);
            self.model.book_cycle(&diff);
        }
        self.block.len = 0;
        self.model.set_prev(&self.block.last);
    }

    /// Flushes and returns the wrapped model for queries
    /// (`total_energy`, `energy_since_last_call`, `trace`, ...).
    pub fn model(&mut self) -> &mut Layer1EnergyModel {
        self.flush();
        &mut self.model
    }

    /// Flushes and unwraps the model.
    pub fn finish(mut self) -> Layer1EnergyModel {
        self.flush();
        self.model
    }

    /// Resets the wrapped model (see [`Layer1EnergyModel::reset`]) and
    /// discards buffered frames; replaying a stimulus afterwards is
    /// bit-identical to a freshly built engine.
    pub fn reset(&mut self) {
        self.model.reset();
        self.block.rewind_to(self.model.prev_frame());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CharacterizationDb;
    use hierbus_ec::{AccessKind, BurstLen, DataWidth};

    fn stimulus(n: usize, seed: u64) -> Vec<SignalFrame> {
        let mut s = seed;
        let mut rng = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut frames = Vec::with_capacity(n);
        let mut f = SignalFrame::default();
        for _ in 0..n {
            f = f.to_idle();
            match rng() % 4 {
                0 => f.drive_address(
                    rng(),
                    AccessKind::DataRead,
                    DataWidth::W32,
                    BurstLen::Single,
                    true,
                    false,
                ),
                1 => f.drive_read(rng() as u32, (rng() % 8) as u8, true, false),
                2 => f.drive_write(rng() as u32, 0xF, (rng() % 8) as u8, true, false),
                _ => {}
            }
            frames.push(f);
        }
        frames
    }

    #[test]
    fn batched_matches_scalar_across_block_boundaries() {
        // Lengths straddling multiples of BLOCK exercise full blocks,
        // partial tails, and the empty flush.
        for n in [0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 7] {
            let frames = stimulus(n, 0x5EED ^ n as u64);
            let mut scalar = Layer1EnergyModel::new(CharacterizationDb::uniform());
            scalar.enable_trace();
            let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
            model.enable_trace();
            let mut batched = BatchedLayer1::new(model);
            for f in &frames {
                scalar.on_frame(f);
                batched.on_frame(f);
            }
            let m = batched.model();
            assert_eq!(m.total_energy().to_bits(), scalar.total_energy().to_bits());
            assert_eq!(m.toggles(), scalar.toggles());
            assert_eq!(m.trace(), scalar.trace());
        }
    }

    #[test]
    fn reset_replay_is_bit_exact() {
        let frames = stimulus(BLOCK + 9, 0xAB);
        let mut batched = BatchedLayer1::new(Layer1EnergyModel::new(CharacterizationDb::uniform()));
        for f in &frames {
            batched.on_frame(f);
        }
        let first = batched.model().total_energy();
        batched.reset();
        assert_eq!(batched.model().total_energy(), 0.0);
        for f in &frames {
            batched.on_frame(f);
        }
        assert_eq!(batched.model().total_energy().to_bits(), first.to_bits());
    }

    #[test]
    fn mixed_scalar_and_batched_feeding_agrees() {
        // Flush, feed the inner model directly, then batch again —
        // the carry must follow the model's previous frame.
        let frames = stimulus(40, 0xC0DE);
        let mut scalar = Layer1EnergyModel::new(CharacterizationDb::uniform());
        let mut batched = BatchedLayer1::new(Layer1EnergyModel::new(CharacterizationDb::uniform()));
        for (i, f) in frames.iter().enumerate() {
            scalar.on_frame(f);
            if i % 3 == 0 {
                batched.model().on_frame(f);
            } else {
                batched.on_frame(f);
            }
        }
        assert_eq!(
            batched.model().total_energy().to_bits(),
            scalar.total_energy().to_bits()
        );
    }
}
