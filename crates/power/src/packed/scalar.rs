//! The guaranteed-available scalar backend.

use super::PackedBits;

/// Portable one-word-at-a-time backend: `u64::count_ones` on the XOR.
///
/// This is the semantics the intrinsic backends are held to, and the
/// fallback on every target — there is no CPU it cannot run on, so
/// [`available`](PackedBits::available) is unconditionally `true`.
#[derive(Debug, Clone, Copy)]
pub struct ScalarBits;

impl PackedBits for ScalarBits {
    const LANES: usize = 1;
    const NAME: &'static str = "scalar";

    fn available() -> bool {
        true
    }

    #[inline]
    fn xor_popcount(cur: &[u64], prev: &[u64], out: &mut [u32]) {
        out[0] = (cur[0] ^ prev[0]).count_ones();
    }
}
