//! The layer-1 (cycle-accurate) energy model.

use crate::characterize::CharacterizationDb;
use hierbus_ec::{PackedFrame, SignalClass, SignalFrame, TogglesByClass};

/// The layer-1 power module: a TLM-to-RTL adapter.
///
/// It keeps the previous cycle's value of every interface signal; each
/// reconstructed [`SignalFrame`] from the layer-1 bus is diffed against
/// it, the per-class bit transitions are weighted by the characterized
/// average energy per transition, and the result feeds both a running
/// total and the paper's two query methods:
/// [`energy_last_cycle`](Self::energy_last_cycle) (cycle-accurate
/// profiling) and
/// [`energy_since_last_call`](Self::energy_since_last_call) (interval
/// estimation).
///
/// The per-cycle path is the hottest loop in a layer-1 simulation, so
/// the model keeps the previous frame pre-packed ([`PackedFrame`]) and
/// the per-class weights hoisted into an array: one cycle costs six
/// XOR + `count_ones` plus six multiply-adds, with no per-toggle
/// database lookups. [`reset`](Self::reset) returns the model to its
/// post-construction state without dropping the trace allocation, so
/// campaign workers can reuse one model across scenarios.
///
/// ```
/// use hierbus_power::{CharacterizationDb, Layer1EnergyModel};
/// use hierbus_ec::SignalFrame;
///
/// let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
/// let mut frame = SignalFrame::default();
/// frame.a_addr = 0xFF; // 8 address bits rise
/// model.on_frame(&frame);
/// assert!(model.energy_last_cycle() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Layer1EnergyModel {
    db: CharacterizationDb,
    /// Per-class pJ/toggle, indexed by [`SignalClass::index`]; hoisted
    /// out of the per-cycle loop at construction.
    weights: [f64; 6],
    prev: SignalFrame,
    prev_packed: PackedFrame,
    total_pj: f64,
    last_cycle_pj: f64,
    since_last_pj: f64,
    toggles: TogglesByClass,
    /// Per-cycle energy trace, if enabled.
    trace: Option<Vec<f64>>,
}

impl Layer1EnergyModel {
    /// Creates the model over a characterization database; the signal
    /// state starts at the idle (reset) frame.
    pub fn new(db: CharacterizationDb) -> Self {
        let weights = std::array::from_fn(|i| db.energy_per_toggle(SignalClass::ALL[i]));
        let prev = SignalFrame::default();
        Layer1EnergyModel {
            db,
            weights,
            prev,
            prev_packed: prev.packed(),
            total_pj: 0.0,
            last_cycle_pj: 0.0,
            since_last_pj: 0.0,
            toggles: TogglesByClass::default(),
            trace: None,
        }
    }

    /// Enables the per-cycle energy trace (for power-profile analysis).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Enables the trace with room for `cycles` samples, so a run of
    /// known length never reallocates inside the per-cycle loop.
    pub fn enable_trace_with_capacity(&mut self, cycles: usize) {
        self.trace = Some(Vec::with_capacity(cycles));
    }

    /// Returns the model to its post-construction state — idle previous
    /// frame, zero energy and toggle counters — while keeping the
    /// database, the weight cache and any trace *allocation* (an enabled
    /// trace is emptied, not dropped). A reset model replaying a
    /// stimulus produces bit-identical results to a freshly built one.
    pub fn reset(&mut self) {
        self.prev = SignalFrame::default();
        self.prev_packed = self.prev.packed();
        self.total_pj = 0.0;
        self.last_cycle_pj = 0.0;
        self.since_last_pj = 0.0;
        self.toggles = TogglesByClass::default();
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }

    /// Feeds the settled frame of one bus cycle; called by the harness
    /// after every bus-process activation.
    #[inline]
    pub fn on_frame(&mut self, frame: &SignalFrame) {
        let packed = frame.packed();
        let diff = packed.diff(&self.prev_packed);
        self.prev = *frame;
        self.prev_packed = packed;
        self.book_cycle(&diff);
    }

    /// Books one cycle's transition counts: per-class weights
    /// accumulate into a fresh `0.0` in `SignalClass::ALL` order, then
    /// fold into the running totals — the single f64 schedule shared
    /// by the scalar path ([`on_frame`](Self::on_frame)) and the
    /// batched engine ([`BatchedLayer1`](crate::BatchedLayer1)), which
    /// is what keeps the two `to_bits`-exact. Does *not* advance the
    /// previous-frame state; batched callers pair it with
    /// [`set_prev`](Self::set_prev) at flush boundaries.
    #[inline]
    pub(crate) fn book_cycle(&mut self, diff: &TogglesByClass) {
        let mut energy = 0.0;
        for (i, &toggles) in diff.as_array().iter().enumerate() {
            energy += toggles as f64 * self.weights[i];
        }
        self.toggles.accumulate(diff);
        self.last_cycle_pj = energy;
        self.since_last_pj += energy;
        self.total_pj += energy;
        if let Some(t) = &mut self.trace {
            t.push(energy);
        }
    }

    /// Overwrites the previous-frame signal state (both views). Used
    /// by the batched engine after booking a block whose transition
    /// counts were computed outside the model.
    pub(crate) fn set_prev(&mut self, frame: &SignalFrame) {
        self.prev = *frame;
        self.prev_packed = frame.packed();
    }

    /// The previous cycle's settled frame (the batched engine seeds
    /// its carry lane from this).
    pub(crate) fn prev_frame(&self) -> &SignalFrame {
        &self.prev
    }

    /// [`on_frame`](Self::on_frame) via the bit-loop reference diff and
    /// per-toggle database lookups — the pre-optimization code path,
    /// kept as the differential-test and benchmark baseline. Must stay
    /// observationally identical to `on_frame`.
    pub fn on_frame_reference(&mut self, frame: &SignalFrame) {
        let diff = frame.diff_reference(&self.prev);
        let mut energy = 0.0;
        for (class, toggles) in diff.iter() {
            energy += toggles as f64 * self.db.energy_per_toggle(class);
        }
        self.toggles.accumulate(&diff);
        self.prev = *frame;
        self.prev_packed = frame.packed();
        self.last_cycle_pj = energy;
        self.since_last_pj += energy;
        self.total_pj += energy;
        if let Some(t) = &mut self.trace {
            t.push(energy);
        }
    }

    /// Energy dissipated during the last clock cycle, in pJ (the paper's
    /// first interface method — cycle-accurate energy profiling).
    pub fn energy_last_cycle(&self) -> f64 {
        self.last_cycle_pj
    }

    /// Energy dissipated since the previous call of this method, in pJ
    /// (the paper's second interface method — interval estimation).
    pub fn energy_since_last_call(&mut self) -> f64 {
        std::mem::take(&mut self.since_last_pj)
    }

    /// Total estimated energy in pJ.
    pub fn total_energy(&self) -> f64 {
        self.total_pj
    }

    /// Cycle-boundary transitions counted so far, per class.
    pub fn toggles(&self) -> &TogglesByClass {
        &self.toggles
    }

    /// The per-cycle trace, if enabled.
    pub fn trace(&self) -> Option<&[f64]> {
        self.trace.as_deref()
    }

    /// Decomposes the recorded per-cycle trace into an energy
    /// attribution ledger along `slave → phase → access class`, using
    /// the span record of the same run (`hierbus-obs` collector spans
    /// share the trace's cycle numbering). Returns `None` unless
    /// [`enable_trace`](Self::enable_trace) was on. Attribution is a
    /// partition of the trace, so the ledger total matches
    /// [`total_energy`](Self::total_energy) up to f64 regrouping.
    pub fn ledger(
        &self,
        spans: &[hierbus_obs::SpanEvent],
        slaves: &hierbus_obs::SlaveMap,
    ) -> Option<hierbus_obs::EnergyLedger> {
        Some(hierbus_obs::attribute_cycles(
            "tlm1",
            spans,
            self.trace()?,
            slaves,
        ))
    }

    /// The characterization database in use.
    pub fn db(&self) -> &CharacterizationDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::{AccessKind, BurstLen, DataWidth, SignalClass};

    fn frame_with_addr(addr: u64) -> SignalFrame {
        let mut f = SignalFrame::default();
        f.drive_address(
            addr,
            AccessKind::DataRead,
            DataWidth::W32,
            BurstLen::Single,
            true,
            false,
        );
        f
    }

    #[test]
    fn idle_frames_cost_nothing() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.on_frame(&SignalFrame::default());
        m.on_frame(&SignalFrame::default());
        assert_eq!(m.total_energy(), 0.0);
        assert_eq!(m.energy_last_cycle(), 0.0);
    }

    #[test]
    fn energy_tracks_hamming_distance() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.on_frame(&frame_with_addr(0x1)); // few addr bits + ctl
        let small = m.energy_last_cycle();
        let mut m2 = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m2.on_frame(&frame_with_addr(0xFFFF_FFFF)); // many addr bits + ctl
        assert!(m2.energy_last_cycle() > small);
    }

    #[test]
    fn since_last_call_resets() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.on_frame(&frame_with_addr(0xFF));
        let first = m.energy_since_last_call();
        assert!(first > 0.0);
        assert_eq!(m.energy_since_last_call(), 0.0);
        m.on_frame(&frame_with_addr(0x00).to_idle());
        assert!(m.energy_since_last_call() > 0.0);
        // The running total is unaffected by sampling.
        assert!(m.total_energy() >= first);
    }

    #[test]
    fn trace_records_each_cycle() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.enable_trace();
        m.on_frame(&frame_with_addr(0x3));
        m.on_frame(&SignalFrame::default());
        let trace = m.trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert!(trace[0] > 0.0);
        assert!(trace[1] > 0.0); // handshake flags fall back to idle
    }

    #[test]
    fn toggles_accumulate_by_class() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.on_frame(&frame_with_addr(0b111));
        assert_eq!(m.toggles().get(SignalClass::AddrBus), 3);
        assert_eq!(m.toggles().get(SignalClass::ReadData), 0);
    }

    #[test]
    fn class_weights_apply() {
        use crate::characterize::PhaseCounts;
        // Address toggles cost 10 pJ, everything else 0.
        let stats = vec![(SignalClass::AddrBus, 100.0, 10u64)];
        let db = CharacterizationDb::from_class_stats(&stats, PhaseCounts::default());
        let mut m = Layer1EnergyModel::new(db);
        m.on_frame(&frame_with_addr(0b11));
        // 2 address-bus toggles × 10 pJ; control toggles are free here.
        assert_eq!(m.energy_last_cycle(), 20.0);
    }

    #[test]
    fn reference_path_matches_fast_path_bit_exact() {
        let frames = [
            frame_with_addr(0xFF),
            SignalFrame::default(),
            frame_with_addr(0xDEAD_BEEF),
            frame_with_addr(0xDEAD_BEEF).to_idle(),
        ];
        let mut fast = Layer1EnergyModel::new(CharacterizationDb::uniform());
        let mut slow = Layer1EnergyModel::new(CharacterizationDb::uniform());
        fast.enable_trace();
        slow.enable_trace();
        for f in &frames {
            fast.on_frame(f);
            slow.on_frame_reference(f);
            assert_eq!(
                fast.energy_last_cycle().to_bits(),
                slow.energy_last_cycle().to_bits()
            );
        }
        assert_eq!(fast.total_energy().to_bits(), slow.total_energy().to_bits());
        assert_eq!(fast.toggles(), slow.toggles());
        assert_eq!(fast.trace(), slow.trace());
    }

    #[test]
    fn reset_replay_is_bit_exact() {
        let frames = [
            frame_with_addr(0x123),
            frame_with_addr(0xFFFF),
            SignalFrame::default(),
        ];
        let mut reused = Layer1EnergyModel::new(CharacterizationDb::uniform());
        reused.enable_trace();
        for f in &frames {
            reused.on_frame(f);
        }
        let _ = reused.energy_since_last_call();
        reused.reset();
        assert_eq!(reused.total_energy(), 0.0);
        assert_eq!(reused.trace(), Some(&[][..]));
        let mut fresh = Layer1EnergyModel::new(CharacterizationDb::uniform());
        fresh.enable_trace();
        for f in &frames {
            reused.on_frame(f);
            fresh.on_frame(f);
        }
        assert_eq!(
            fresh.total_energy().to_bits(),
            reused.total_energy().to_bits()
        );
        assert_eq!(
            fresh.energy_since_last_call().to_bits(),
            reused.energy_since_last_call().to_bits()
        );
        assert_eq!(fresh.trace(), reused.trace());
    }
}
