//! The layer-1 (cycle-accurate) energy model.

use crate::characterize::CharacterizationDb;
use hierbus_ec::{SignalFrame, TogglesByClass};

/// The layer-1 power module: a TLM-to-RTL adapter.
///
/// It keeps the previous cycle's value of every interface signal; each
/// reconstructed [`SignalFrame`] from the layer-1 bus is diffed against
/// it, the per-class bit transitions are weighted by the characterized
/// average energy per transition, and the result feeds both a running
/// total and the paper's two query methods:
/// [`energy_last_cycle`](Self::energy_last_cycle) (cycle-accurate
/// profiling) and
/// [`energy_since_last_call`](Self::energy_since_last_call) (interval
/// estimation).
///
/// ```
/// use hierbus_power::{CharacterizationDb, Layer1EnergyModel};
/// use hierbus_ec::SignalFrame;
///
/// let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
/// let mut frame = SignalFrame::default();
/// frame.a_addr = 0xFF; // 8 address bits rise
/// model.on_frame(&frame);
/// assert!(model.energy_last_cycle() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Layer1EnergyModel {
    db: CharacterizationDb,
    prev: SignalFrame,
    total_pj: f64,
    last_cycle_pj: f64,
    since_last_pj: f64,
    toggles: TogglesByClass,
    /// Per-cycle energy trace, if enabled.
    trace: Option<Vec<f64>>,
}

impl Layer1EnergyModel {
    /// Creates the model over a characterization database; the signal
    /// state starts at the idle (reset) frame.
    pub fn new(db: CharacterizationDb) -> Self {
        Layer1EnergyModel {
            db,
            prev: SignalFrame::default(),
            total_pj: 0.0,
            last_cycle_pj: 0.0,
            since_last_pj: 0.0,
            toggles: TogglesByClass::default(),
            trace: None,
        }
    }

    /// Enables the per-cycle energy trace (for power-profile analysis).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Feeds the settled frame of one bus cycle; called by the harness
    /// after every bus-process activation.
    pub fn on_frame(&mut self, frame: &SignalFrame) {
        let diff = frame.diff(&self.prev);
        let mut energy = 0.0;
        for (class, toggles) in diff.iter() {
            energy += toggles as f64 * self.db.energy_per_toggle(class);
        }
        self.toggles.accumulate(&diff);
        self.prev = *frame;
        self.last_cycle_pj = energy;
        self.since_last_pj += energy;
        self.total_pj += energy;
        if let Some(t) = &mut self.trace {
            t.push(energy);
        }
    }

    /// Energy dissipated during the last clock cycle, in pJ (the paper's
    /// first interface method — cycle-accurate energy profiling).
    pub fn energy_last_cycle(&self) -> f64 {
        self.last_cycle_pj
    }

    /// Energy dissipated since the previous call of this method, in pJ
    /// (the paper's second interface method — interval estimation).
    pub fn energy_since_last_call(&mut self) -> f64 {
        std::mem::take(&mut self.since_last_pj)
    }

    /// Total estimated energy in pJ.
    pub fn total_energy(&self) -> f64 {
        self.total_pj
    }

    /// Cycle-boundary transitions counted so far, per class.
    pub fn toggles(&self) -> &TogglesByClass {
        &self.toggles
    }

    /// The per-cycle trace, if enabled.
    pub fn trace(&self) -> Option<&[f64]> {
        self.trace.as_deref()
    }

    /// The characterization database in use.
    pub fn db(&self) -> &CharacterizationDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierbus_ec::{AccessKind, BurstLen, DataWidth, SignalClass};

    fn frame_with_addr(addr: u64) -> SignalFrame {
        let mut f = SignalFrame::default();
        f.drive_address(
            addr,
            AccessKind::DataRead,
            DataWidth::W32,
            BurstLen::Single,
            true,
            false,
        );
        f
    }

    #[test]
    fn idle_frames_cost_nothing() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.on_frame(&SignalFrame::default());
        m.on_frame(&SignalFrame::default());
        assert_eq!(m.total_energy(), 0.0);
        assert_eq!(m.energy_last_cycle(), 0.0);
    }

    #[test]
    fn energy_tracks_hamming_distance() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.on_frame(&frame_with_addr(0x1)); // few addr bits + ctl
        let small = m.energy_last_cycle();
        let mut m2 = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m2.on_frame(&frame_with_addr(0xFFFF_FFFF)); // many addr bits + ctl
        assert!(m2.energy_last_cycle() > small);
    }

    #[test]
    fn since_last_call_resets() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.on_frame(&frame_with_addr(0xFF));
        let first = m.energy_since_last_call();
        assert!(first > 0.0);
        assert_eq!(m.energy_since_last_call(), 0.0);
        m.on_frame(&frame_with_addr(0x00).to_idle());
        assert!(m.energy_since_last_call() > 0.0);
        // The running total is unaffected by sampling.
        assert!(m.total_energy() >= first);
    }

    #[test]
    fn trace_records_each_cycle() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.enable_trace();
        m.on_frame(&frame_with_addr(0x3));
        m.on_frame(&SignalFrame::default());
        let trace = m.trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert!(trace[0] > 0.0);
        assert!(trace[1] > 0.0); // handshake flags fall back to idle
    }

    #[test]
    fn toggles_accumulate_by_class() {
        let mut m = Layer1EnergyModel::new(CharacterizationDb::uniform());
        m.on_frame(&frame_with_addr(0b111));
        assert_eq!(m.toggles().get(SignalClass::AddrBus), 3);
        assert_eq!(m.toggles().get(SignalClass::ReadData), 0);
    }

    #[test]
    fn class_weights_apply() {
        use crate::characterize::PhaseCounts;
        // Address toggles cost 10 pJ, everything else 0.
        let stats = vec![(SignalClass::AddrBus, 100.0, 10u64)];
        let db = CharacterizationDb::from_class_stats(&stats, PhaseCounts::default());
        let mut m = Layer1EnergyModel::new(db);
        m.on_frame(&frame_with_addr(0b11));
        // 2 address-bus toggles × 10 pJ; control toggles are free here.
        assert_eq!(m.energy_last_cycle(), 20.0);
    }
}
