//! Micro-benchmarks for the Java Card VM case study: the cost of the
//! functional (soft-stack) model versus the refined bus-attached
//! hardware stack, per workload.
//!
//! Plain `std::time` timers (best-of-N) instead of criterion so the
//! workspace builds with no registry access. Run with
//! `cargo bench -p hierbus-bench --bench jcvm_interpreter`.

use hierbus_bench::{time_best, TextTable};
use hierbus_core::Tlm1Bus;
use hierbus_ec::{Address, AddressRange};
use hierbus_jcvm::workloads::standard_workloads;
use hierbus_jcvm::{BusStack, HwStackSlave, IfaceConfig, Interpreter, SoftStack};

const STACK_BASE: u64 = 0x8000;
const REPS: usize = 5;

fn main() {
    let mut table = TextTable::new(["workload", "model", "best time"]);
    for workload in standard_workloads() {
        let soft = time_best(REPS, || {
            let mut vm = Interpreter::new();
            let (entry, args) = (workload.build)(&mut vm);
            let mut stack = SoftStack::new(512);
            vm.run(entry, &args, &mut stack, 50_000_000)
                .expect("workload runs")
        });
        table.row([
            workload.name.to_owned(),
            "soft_stack".to_owned(),
            format!("{soft:.2?}"),
        ]);

        let hw = time_best(REPS, || {
            let config = IfaceConfig::baseline(STACK_BASE);
            let slave = HwStackSlave::new(
                AddressRange::new(Address::new(STACK_BASE), 0x100),
                config.width,
                512,
                config.waits(),
            );
            let bus = Tlm1Bus::new(vec![Box::new(slave)]);
            let mut stack = BusStack::new(
                bus,
                IfaceConfig {
                    capacity: 512,
                    ..config
                },
            );
            let mut vm = Interpreter::new();
            let (entry, args) = (workload.build)(&mut vm);
            vm.run(entry, &args, &mut stack, 50_000_000)
                .expect("workload runs")
        });
        table.row([
            workload.name.to_owned(),
            "hw_stack_tlm1".to_owned(),
            format!("{hw:.2?}"),
        ]);
    }
    println!("jcvm interpreter micro-benchmarks (best of {REPS}):\n");
    println!("{}", table.render());
}
