//! Criterion micro-benchmarks for the Java Card VM case study: the cost
//! of the functional (soft-stack) model versus the refined bus-attached
//! hardware stack, per workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hierbus_core::Tlm1Bus;
use hierbus_ec::{Address, AddressRange};
use hierbus_jcvm::workloads::standard_workloads;
use hierbus_jcvm::{BusStack, HwStackSlave, IfaceConfig, Interpreter, SoftStack};

const STACK_BASE: u64 = 0x8000;

fn bench_soft_vs_hw(c: &mut Criterion) {
    let mut group = c.benchmark_group("jcvm");
    group.sample_size(10);
    for workload in standard_workloads() {
        group.bench_function(BenchmarkId::new("soft_stack", workload.name), |b| {
            b.iter(|| {
                let mut vm = Interpreter::new();
                let (entry, args) = (workload.build)(&mut vm);
                let mut stack = SoftStack::new(512);
                vm.run(entry, &args, &mut stack, 50_000_000)
                    .expect("workload runs")
            })
        });
        group.bench_function(BenchmarkId::new("hw_stack_tlm1", workload.name), |b| {
            b.iter(|| {
                let config = IfaceConfig::baseline(STACK_BASE);
                let slave = HwStackSlave::new(
                    AddressRange::new(Address::new(STACK_BASE), 0x100),
                    config.width,
                    512,
                    config.waits(),
                );
                let bus = Tlm1Bus::new(vec![Box::new(slave)]);
                let mut stack = BusStack::new(
                    bus,
                    IfaceConfig {
                        capacity: 512,
                        ..config
                    },
                );
                let mut vm = Interpreter::new();
                let (entry, args) = (workload.build)(&mut vm);
                vm.run(entry, &args, &mut stack, 50_000_000)
                    .expect("workload runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_soft_vs_hw);
criterion_main!(benches);
