//! Criterion micro-benchmarks behind Table 3: bus-model throughput in
//! transactions per second, with and without energy estimation, plus the
//! RTL reference for the §4.2 acceleration context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hierbus::harness;
use hierbus_ec::sequences::{random_mix, MixParams};
use hierbus_power::CharacterizationDb;

const TXNS: usize = 4_000;

fn mix() -> hierbus_ec::Scenario {
    random_mix(
        0xBE9C,
        MixParams {
            count: TXNS,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    )
}

fn bench_tlm(c: &mut Criterion) {
    let scenario = mix();
    let db = harness::standard_db();
    let mut group = c.benchmark_group("bus_throughput");
    group.throughput(Throughput::Elements(TXNS as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("tlm1", "with_estimation"), |b| {
        b.iter(|| harness::run_layer1(&scenario, &db).records.len())
    });
    group.bench_function(BenchmarkId::new("tlm1", "without_estimation"), |b| {
        b.iter(|| harness::run_layer1_timing_only(&scenario).records.len())
    });
    group.bench_function(BenchmarkId::new("tlm2", "with_estimation"), |b| {
        b.iter(|| harness::run_layer2(&scenario, &db, false).records.len())
    });
    group.bench_function(BenchmarkId::new("tlm2", "without_estimation"), |b| {
        b.iter(|| harness::run_layer2_timing_only(&scenario).records.len())
    });
    group.finish();
}

fn bench_rtl(c: &mut Criterion) {
    let scenario = random_mix(
        0xBE9C,
        MixParams {
            count: 1_000,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    );
    let mut group = c.benchmark_group("rtl_reference");
    group.throughput(Throughput::Elements(1_000));
    group.sample_size(10);
    group.bench_function("glitches_on", |b| {
        b.iter(|| harness::run_reference(&scenario, false).records.len())
    });
    group.bench_function("ideal_netlist", |b| {
        b.iter(|| harness::run_reference(&scenario, true).records.len())
    });
    group.finish();
}

fn bench_energy_models(c: &mut Criterion) {
    use hierbus_ec::SignalFrame;
    use hierbus_power::Layer1EnergyModel;
    let mut group = c.benchmark_group("energy_model");
    group.throughput(Throughput::Elements(10_000));
    group.sample_size(20);
    group.bench_function("layer1_frame_diff", |b| {
        let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
        let mut frame = SignalFrame::default();
        b.iter(|| {
            for i in 0..10_000u64 {
                frame.a_addr = i.wrapping_mul(0x9E37_79B9);
                frame.r_data = (i as u32).rotate_left(7);
                model.on_frame(&frame);
            }
            model.total_energy()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tlm, bench_rtl, bench_energy_models);
criterion_main!(benches);
