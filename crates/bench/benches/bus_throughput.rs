//! Micro-benchmarks behind Table 3: bus-model throughput in
//! transactions per second, with and without energy estimation, plus the
//! RTL reference for the §4.2 acceleration context.
//!
//! Plain `std::time` timers (best-of-N) instead of criterion so the
//! workspace builds with no registry access. Run with
//! `cargo bench -p hierbus-bench --bench bus_throughput`.

use hierbus::harness;
use hierbus_bench::{grouped, throughput, time_best, TextTable};
use hierbus_ec::sequences::{random_mix, MixParams};
use hierbus_ec::SignalFrame;
use hierbus_power::{CharacterizationDb, Layer1EnergyModel};

const TXNS: usize = 4_000;
const REPS: usize = 5;

fn mix(count: usize) -> hierbus_ec::Scenario {
    random_mix(
        0xBE9C,
        MixParams {
            count,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    )
}

fn main() {
    let scenario = mix(TXNS);
    let db = harness::standard_db();
    let mut table = TextTable::new(["benchmark", "best time", "txns/s"]);
    let mut bench = |name: &str, txns: u64, f: &mut dyn FnMut() -> usize| {
        let dt = time_best(REPS, &mut *f);
        table.row([
            name.to_owned(),
            format!("{dt:.2?}"),
            grouped(throughput(txns, dt) as u64),
        ]);
    };

    bench("tlm1/with_estimation", TXNS as u64, &mut || {
        harness::run_layer1(&scenario, &db).records.len()
    });
    bench("tlm1/without_estimation", TXNS as u64, &mut || {
        harness::run_layer1_timing_only(&scenario).records.len()
    });
    bench("tlm2/with_estimation", TXNS as u64, &mut || {
        harness::run_layer2(&scenario, &db, false).records.len()
    });
    bench("tlm2/without_estimation", TXNS as u64, &mut || {
        harness::run_layer2_timing_only(&scenario).records.len()
    });

    let rtl_scenario = mix(1_000);
    bench("rtl/glitches_on", 1_000, &mut || {
        harness::run_reference(&rtl_scenario, false).records.len()
    });
    bench("rtl/ideal_netlist", 1_000, &mut || {
        harness::run_reference(&rtl_scenario, true).records.len()
    });

    let frames: u64 = 10_000;
    bench("energy_model/layer1_frame_diff", frames, &mut || {
        let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
        let mut frame = SignalFrame::default();
        for i in 0..frames {
            frame.a_addr = i.wrapping_mul(0x9E37_79B9);
            frame.r_data = (i as u32).rotate_left(7);
            model.on_frame(&frame);
        }
        model.total_energy() as usize
    });

    println!("bus_throughput micro-benchmarks (best of {REPS}):\n");
    println!("{}", table.render());
}
