//! Micro-benchmarks behind Table 3: bus-model throughput in
//! transactions per second, with and without energy estimation, plus the
//! RTL reference for the §4.2 acceleration context — and the
//! campaign-engine scaling of a bus-level scenario sweep (1/2/4/N
//! workers), appended to `BENCH_throughput.json`.
//!
//! Plain `std::time` timers (best-of-N) instead of criterion so the
//! workspace builds with no registry access. Run with
//! `cargo bench -p hierbus-bench --bench bus_throughput`.

use hierbus::harness;
use hierbus_bench::{grouped, throughput, time_best, TextTable, THROUGHPUT_JSON};
use hierbus_campaign::{CampaignPayload, ClaimStrategy, Json, Matrix};
use hierbus_ec::sequences::{random_mix, MixParams};
use hierbus_ec::SignalFrame;
use hierbus_power::{Backend, BatchedLayer1, CharacterizationDb, Layer1EnergyModel};

const TXNS: usize = 4_000;
const REPS: usize = 5;

fn mix(count: usize) -> hierbus_ec::Scenario {
    random_mix(
        0xBE9C,
        MixParams {
            count,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    )
}

/// One cell of the bus-level campaign: a seeded random mix through the
/// estimating layer-1 model.
struct MixCell {
    cycles: u64,
    energy_pj: f64,
}

impl CampaignPayload for MixCell {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles".to_owned(), Json::Num(self.cycles as f64)),
            ("energy_pj".to_owned(), Json::Num(self.energy_pj)),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        Some(MixCell {
            cycles: json.get("cycles")?.as_u64()?,
            energy_pj: json.get("energy_pj")?.as_f64()?,
        })
    }
}

fn main() {
    let scenario = mix(TXNS);
    let db = harness::standard_db();
    let mut table = TextTable::new(["benchmark", "best time", "txns/s"]);
    let mut bench = |name: &str, txns: u64, f: &mut dyn FnMut() -> usize| {
        let dt = time_best(REPS, &mut *f);
        table.row([
            name.to_owned(),
            format!("{dt:.2?}"),
            grouped(throughput(txns, dt) as u64),
        ]);
    };

    bench("tlm1/with_estimation", TXNS as u64, &mut || {
        harness::run_layer1(&scenario, &db).records.len()
    });
    bench("tlm1/without_estimation", TXNS as u64, &mut || {
        harness::run_layer1_timing_only(&scenario).records.len()
    });
    bench("tlm2/with_estimation", TXNS as u64, &mut || {
        harness::run_layer2(&scenario, &db, false).records.len()
    });
    bench("tlm2/without_estimation", TXNS as u64, &mut || {
        harness::run_layer2_timing_only(&scenario).records.len()
    });

    let rtl_scenario = mix(1_000);
    bench("rtl/glitches_on", 1_000, &mut || {
        harness::run_reference(&rtl_scenario, false).records.len()
    });
    bench("rtl/ideal_netlist", 1_000, &mut || {
        harness::run_reference(&rtl_scenario, true).records.len()
    });

    let frames: u64 = 10_000;
    bench("energy_model/layer1_frame_diff", frames, &mut || {
        let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
        let mut frame = SignalFrame::default();
        for i in 0..frames {
            frame.a_addr = i.wrapping_mul(0x9E37_79B9);
            frame.r_data = (i as u32).rotate_left(7);
            model.on_frame(&frame);
        }
        model.total_energy() as usize
    });
    // The packed-vs-scalar pair on the pure model path (no bus): the
    // same frame stream through the lane-parallel block engine and
    // through the pre-optimization bit-loop reference — the regression
    // anchors behind `packed_speedup` without simulation cost diluting
    // the ratio.
    let packed_label = format!("energy_model/layer1_packed ({})", Backend::active().name());
    bench(&packed_label, frames, &mut || {
        let mut batched = BatchedLayer1::new(Layer1EnergyModel::new(CharacterizationDb::uniform()));
        let mut frame = SignalFrame::default();
        for i in 0..frames {
            frame.a_addr = i.wrapping_mul(0x9E37_79B9);
            frame.r_data = (i as u32).rotate_left(7);
            batched.on_frame(&frame);
        }
        batched.model().total_energy() as usize
    });
    bench("energy_model/layer1_bitloop_reference", frames, &mut || {
        let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
        let mut frame = SignalFrame::default();
        for i in 0..frames {
            frame.a_addr = i.wrapping_mul(0x9E37_79B9);
            frame.r_data = (i as u32).rotate_left(7);
            model.on_frame_reference(&frame);
        }
        model.total_energy() as usize
    });

    println!("bus_throughput micro-benchmarks (best of {REPS}):\n");
    println!("{}", table.render());

    // Campaign scaling at the bus level: 16 independently seeded mixes
    // through the estimating layer-1 model, fanned out on the campaign
    // worker pool. Unlike the single-simulation rows above, this is the
    // batch shape a characterization or regression sweep has.
    let seeds: Vec<u64> = (0..16).map(|i| 0xBE9C + 0x101 * i).collect();
    let matrix = Matrix::new().axis("seed", seeds.iter().map(|s| format!("{s:#06x}")));
    let scenarios: Vec<_> = seeds
        .iter()
        .map(|&s| {
            random_mix(
                s,
                MixParams {
                    count: 1_000,
                    read_pct: 50,
                    burst_pct: 40,
                    fetch_pct: 30,
                    max_idle: 0,
                    ..MixParams::default()
                },
            )
        })
        .collect();
    let mut worker_counts = vec![1, 2, 4];
    if let Ok(n) = std::thread::available_parallelism() {
        worker_counts.push(n.get());
    }
    worker_counts.sort_unstable();
    worker_counts.dedup();
    // Old engine arm: per-scenario atomic claiming, a fresh model per
    // scenario and the bit-loop reference diff — the code path the
    // committed baseline was measured on.
    let old_scaling = hierbus_campaign::measure_scaling_with::<(), MixCell, _, _>(
        &matrix,
        "bus_throughput_campaign_old",
        &worker_counts,
        ClaimStrategy::PerScenario,
        || (),
        |(), point| {
            let run = harness::run_layer1_reference(&scenarios[point.coords[0]], &db);
            MixCell {
                cycles: run.cycles,
                energy_pj: run.energy_pj,
            }
        },
    );
    // New engine arm: chunked claiming and one reset-reused lean session
    // per worker over the packed hot path — no per-transaction records
    // and no per-cycle trace, because the payload keeps neither. Cycles
    // and energy stay bit-identical to the old arm's
    // (`proptest_invariants::lean_session_matches_full_runner_bit_exact`).
    let scaling = hierbus_campaign::measure_scaling_with::<harness::Layer1LeanSession, MixCell, _, _>(
        &matrix,
        "bus_throughput_campaign",
        &worker_counts,
        ClaimStrategy::Chunked,
        || harness::Layer1LeanSession::new(&db),
        |session, point| {
            let run = session.run(&scenarios[point.coords[0]]);
            MixCell {
                cycles: run.cycles,
                energy_pj: run.energy_pj,
            }
        },
    );
    let base = scaling[0].scenarios_per_sec;
    let mut scale_table = TextTable::new([
        "workers",
        "wall",
        "scenarios/s",
        "old scen/s",
        "speedup (new/old)",
        "scaling (vs 1w)",
        "busy",
    ]);
    for (p, old) in scaling.iter().zip(&old_scaling) {
        scale_table.row([
            p.workers.to_string(),
            format!("{:.2?}", p.wall),
            format!("{:.1}", p.scenarios_per_sec),
            format!("{:.1}", old.scenarios_per_sec),
            format!("{:.2}x", p.scenarios_per_sec / old.scenarios_per_sec),
            format!("{:.2}x", p.scenarios_per_sec / base),
            format!("{:.0}%", p.busy_frac * 100.0),
        ]);
    }
    println!(
        "campaign scaling ({} bus scenarios per run):\n",
        seeds.len()
    );
    println!("{}", scale_table.render());

    let fields = vec![
        ("scenarios".to_owned(), Json::Num(seeds.len() as f64)),
        (
            "workers".to_owned(),
            Json::Arr(
                scaling
                    .iter()
                    .zip(&old_scaling)
                    .map(|(p, old)| {
                        Json::Obj(vec![
                            ("workers".to_owned(), Json::Num(p.workers as f64)),
                            ("scenarios_per_s".to_owned(), Json::Num(p.scenarios_per_sec)),
                            (
                                "old_scenarios_per_s".to_owned(),
                                Json::Num(old.scenarios_per_sec),
                            ),
                            (
                                "speedup".to_owned(),
                                Json::Num(p.scenarios_per_sec / old.scenarios_per_sec),
                            ),
                            ("scaling".to_owned(), Json::Num(p.scenarios_per_sec / base)),
                            ("busy_frac".to_owned(), Json::Num(p.busy_frac)),
                            ("utilization".to_owned(), Json::Num(p.utilization)),
                            ("idle_workers".to_owned(), Json::Num(p.idle_workers as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    match hierbus_bench::write_throughput_section(
        hierbus_bench::throughput_json_path(),
        "campaign_bus",
        fields,
    ) {
        Ok(()) => println!("campaign scaling appended to {THROUGHPUT_JSON}"),
        Err(e) => eprintln!("warning: could not write {THROUGHPUT_JSON}: {e}"),
    }
}
