//! Schema gate for `results/obs/attribution_*.json` — part of the
//! `ci.sh` staleness checks.
//!
//! The attribution artifacts are regression-diffed across revisions, so
//! every file must carry the same shape: `schema_version` 1, the
//! scenario slug, exactly three layer ledgers (`rtl`, `tlm1`, `tlm2`)
//! whose buckets sum to the reported `total_pj`, and the divergence
//! section with both layer-pair audits. Exits non-zero naming the first
//! violating file and field.
//!
//! Run with `cargo run --release -p hierbus-bench --bin
//! check_attribution` after the `attribution` binary has populated
//! `results/obs/`.

use hierbus_campaign::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const LAYERS: [&str; 3] = ["rtl", "tlm1", "tlm2"];
const BUCKET_FIELDS: [&str; 3] = ["slave", "phase", "class"];
const AUDIT_PAIRS: [&str; 2] = ["rtl_tlm1", "tlm1_tlm2"];
const AUDIT_FIELDS: [&str; 2] = ["checked", "divergent"];

fn check_ledger(ledger: &Json, want_layer: &str) -> Result<(), String> {
    let layer = ledger
        .get("layer")
        .and_then(Json::as_str)
        .ok_or("ledger missing layer".to_owned())?;
    if layer != want_layer {
        return Err(format!("expected layer {want_layer}, found {layer}"));
    }
    ledger
        .get("cycles")
        .and_then(Json::as_u64)
        .ok_or(format!("{layer}: missing cycles"))?;
    if !matches!(ledger.get("software"), Some(Json::Null | Json::Str(_))) {
        return Err(format!("{layer}: software must be null or a string"));
    }
    let total = ledger
        .get("total_pj")
        .and_then(Json::as_f64)
        .ok_or(format!("{layer}: missing total_pj"))?;
    let buckets = ledger
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or(format!("{layer}: missing buckets array"))?;
    let mut sum = 0.0;
    for (i, bucket) in buckets.iter().enumerate() {
        for field in BUCKET_FIELDS {
            bucket
                .get(field)
                .and_then(Json::as_str)
                .ok_or(format!("{layer}: buckets[{i}] missing field {field}"))?;
        }
        sum += bucket
            .get("energy_pj")
            .and_then(Json::as_f64)
            .ok_or(format!("{layer}: buckets[{i}] missing energy_pj"))?;
    }
    if (sum - total).abs() > 1e-6 * total.abs().max(1.0) {
        return Err(format!(
            "{layer}: buckets sum to {sum} but total_pj says {total}"
        ));
    }
    Ok(())
}

fn check(root: &Json) -> Result<(), String> {
    let version = root
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version".to_owned())?;
    if version != 1 {
        return Err(format!("unsupported schema_version {version}"));
    }
    root.get("scenario")
        .and_then(Json::as_str)
        .ok_or("missing scenario".to_owned())?;
    let layers = root
        .get("layers")
        .and_then(Json::as_arr)
        .ok_or("missing layers array".to_owned())?;
    if layers.len() != LAYERS.len() {
        return Err(format!(
            "expected {} layers, found {}",
            LAYERS.len(),
            layers.len()
        ));
    }
    for (ledger, want) in layers.iter().zip(LAYERS) {
        check_ledger(ledger, want)?;
    }
    let divergence = root
        .get("divergence")
        .ok_or("missing divergence section".to_owned())?;
    for pair in AUDIT_PAIRS {
        let audit = divergence
            .get(pair)
            .ok_or(format!("divergence: missing pair {pair}"))?;
        for field in AUDIT_FIELDS {
            audit
                .get(field)
                .and_then(Json::as_u64)
                .ok_or(format!("divergence.{pair}: missing field {field}"))?;
        }
        for field in ["first", "worst"] {
            if audit.get(field).is_none() {
                return Err(format!("divergence.{pair}: missing field {field}"));
            }
        }
    }
    Ok(())
}

fn check_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let root = Json::parse(&text).map_err(|e| format!("not valid JSON: {e}"))?;
    check(&root)
}

fn main() -> ExitCode {
    let dir = PathBuf::from("results/obs");
    let mut files: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("attribution_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("check_attribution: cannot list {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!(
            "check_attribution: no attribution_*.json under {} — run the attribution binary",
            dir.display()
        );
        return ExitCode::FAILURE;
    }
    for path in &files {
        if let Err(msg) = check_file(path) {
            eprintln!("check_attribution: {}: {msg}", path.display());
            eprintln!("regenerate with: cargo run --release -p hierbus-bench --bin attribution");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "check_attribution: {} attribution file(s) under {} schema OK",
        files.len(),
        dir.display()
    );
    ExitCode::SUCCESS
}
