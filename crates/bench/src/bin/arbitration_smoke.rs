//! Arbitration smoke gate — part of the `ci.sh` checks.
//!
//! Runs a seeded CPU+DMA contention workload under every arbitration
//! policy, with the DMA engine both active and idle, through all three
//! model layers, and verifies the cross-layer equivalence contract the
//! full `arbitration_equivalence` suite pins in depth:
//!
//! * identical per-master outcomes and committed memory at every layer;
//! * layer 1 cycle-exact and grant-line-exact against the RTL
//!   reference;
//! * the layer-1 characterized energy reproduced over the RTL frame
//!   log to 1e-9 relative;
//! * each layer's master-tagged ledger slices summing back to its own
//!   attributed total;
//! * with the DMA idle, every grant going to the CPU (the multi-master
//!   path degrades to the single-master one).
//!
//! Prints one line per configuration and exits non-zero with a
//! description of the first violation. Fast enough to run on every
//! commit (four small workloads, three layers each).
//!
//! Run with `cargo run --release -p hierbus-bench --bin arbitration_smoke`.

use hierbus::harness::multi::{run_layer1, run_layer2, run_reference, MultiRun};
use hierbus::harness::shared_db;
use hierbus_ec::sequences::{self, MixParams};
use hierbus_ec::{ArbitrationPolicy, DmaParams, DmaProgram, MultiScenario};
use std::process::ExitCode;

const SEED: u64 = 0x5D0C;

fn workload(policy: ArbitrationPolicy, dma_active: bool) -> MultiScenario {
    let cpu = sequences::random_mix(
        SEED,
        MixParams {
            count: 40,
            ..MixParams::default()
        },
    );
    let dma = DmaProgram::seeded(
        SEED ^ 0xD31A,
        DmaParams {
            descriptors: if dma_active { 8 } else { 0 },
            ..DmaParams::default()
        },
    );
    MultiScenario::new("arbitration-smoke", cpu, &dma, policy)
}

fn assert_close(tag: &str, a: f64, b: f64) -> Result<(), String> {
    let denom = a.abs().max(b.abs()).max(1e-12);
    if (a - b).abs() / denom < 1e-9 {
        Ok(())
    } else {
        Err(format!("{tag}: {a} vs {b} diverge beyond 1e-9 relative"))
    }
}

fn check(tag: &str, rtl: &MultiRun, l1: &MultiRun, l2: &MultiRun) -> Result<(), String> {
    if rtl.outcomes() != l1.outcomes() || l1.outcomes() != l2.outcomes() {
        return Err(format!("{tag}: per-master outcomes diverge across layers"));
    }
    if rtl.memory != l1.memory || l1.memory != l2.memory {
        return Err(format!("{tag}: committed memory diverges across layers"));
    }
    if rtl.cycles != l1.cycles {
        return Err(format!(
            "{tag}: layer 1 not cycle-exact ({} vs {})",
            l1.cycles, rtl.cycles
        ));
    }
    if rtl.grants != l1.grants {
        return Err(format!(
            "{tag}: grant lines diverge between RTL and layer 1"
        ));
    }
    let frames_energy = rtl
        .l1_frames_energy_pj
        .ok_or_else(|| format!("{tag}: reference run carries no frame-log energy"))?;
    assert_close(
        &format!("{tag}: l1-over-frames"),
        frames_energy,
        l1.energy_pj,
    )?;
    for (name, run, total) in [
        ("rtl", rtl, frames_energy),
        ("tlm1", l1, l1.energy_pj),
        ("tlm2", l2, l2.energy_pj),
    ] {
        let ledger_sum: f64 = run.ledger.master_totals().iter().map(|(_, e)| e).sum();
        assert_close(
            &format!("{tag}/{name}: ledger vs slices"),
            run.ledger.total_pj(),
            ledger_sum,
        )?;
        assert_close(
            &format!("{tag}/{name}: ledger vs layer total"),
            run.ledger.total_pj(),
            total,
        )?;
    }
    Ok(())
}

fn run_one(policy: ArbitrationPolicy, dma_active: bool) -> Result<(), String> {
    let db = shared_db();
    let ms = workload(policy, dma_active);
    let tag = format!(
        "{}/dma-{}",
        policy.name(),
        if dma_active { "on" } else { "off" }
    );
    let rtl = run_reference(&ms, &db, &[]);
    let l1 = run_layer1(&ms, &db, &[]);
    let l2 = run_layer2(&ms, &db, &[]);
    check(&tag, &rtl, &l1, &l2)?;
    if !dma_active && rtl.grants.iter().any(|&(_, m)| m != 0) {
        return Err(format!("{tag}: idle DMA master won a grant"));
    }
    println!(
        "arbitration_smoke: {tag}: cycles={} grants={:?} contended={} energy_pj={:.3} backend={}",
        rtl.cycles,
        rtl.stats.grants,
        rtl.stats.contended_cycles,
        l1.energy_pj,
        hierbus::power::Backend::active().name(),
    );
    Ok(())
}

fn main() -> ExitCode {
    for policy in ArbitrationPolicy::ALL {
        for dma_active in [true, false] {
            if let Err(msg) = run_one(policy, dma_active) {
                eprintln!("arbitration_smoke: FAIL: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("arbitration_smoke: all layers agree under both policies, DMA on and off");
    ExitCode::SUCCESS
}
