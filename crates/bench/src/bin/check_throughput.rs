//! Schema gate for `BENCH_throughput.json` — part of the `ci.sh`
//! staleness checks.
//!
//! The throughput trajectory is only useful for regression tracking if
//! every revision writes the same shape, so this binary verifies the
//! committed file parses and carries the fields the scaling analysis
//! depends on: each `campaign_*` section must list per-worker entries
//! with `workers`, `scenarios_per_s`, `old_scenarios_per_s`, `speedup`
//! (new-engine vs old-engine throughput at the same worker count) and
//! `scaling` (new-engine throughput vs its own 1-worker point), and the
//! `layers` section must carry the Table 3 kT/s numbers including the
//! hot-path old-vs-new pair. Worker entries may additionally carry the
//! profiler-derived `busy_frac` and `utilization` fractions; files
//! written before the profiler existed omit them, so they are optional —
//! but when present they must be numeric and in `[0, 1]`. The `serve`
//! section (written by `serve_bench`) must list per-worker cold/warm
//! request latencies with the warm one strictly below the cold one —
//! the daemon's result cache earning its keep. The `layers` section is
//! additionally gated on `packed_speedup` — the lane-parallel layer-1
//! arm must hold its floor over the bit-loop reference unless the file
//! was produced by a scalar-forced run. Exits non-zero with a
//! description of the first violation.
//!
//! Run with `cargo run --release -p hierbus-bench --bin check_throughput`.

use hierbus_campaign::Json;
use std::process::ExitCode;

const LAYER_FIELDS: &[&str] = &[
    "tlm1_with_kts",
    "tlm1_packed_kts",
    "packed_speedup",
    "tlm1_with_reference_kts",
    "tlm1_hotpath_speedup",
    "tlm1_without_kts",
    "tlm1_observed_kts",
    "tlm2_with_kts",
    "tlm2_without_kts",
    "tlm3_kts",
];

/// The lane-parallel engine must beat the bit-loop reference by at
/// least this factor in the same `table3_simperf` run. Only enforced
/// when the recorded `packed_backend` is a SIMD kernel — a scalar-forced
/// run (e.g. `HIERBUS_PACKED_BACKEND=scalar` in CI's portability leg)
/// still validates the schema without pretending to have vector lanes.
const MIN_PACKED_SPEEDUP: f64 = 2.0;

const WORKER_FIELDS: &[&str] = &[
    "workers",
    "scenarios_per_s",
    "old_scenarios_per_s",
    "speedup",
    "scaling",
];

/// Fields added by the pool profiler: optional for backwards
/// compatibility with pre-profiler files, but unit-interval fractions
/// whenever they appear.
const OPTIONAL_FRACTION_FIELDS: &[&str] = &["busy_frac", "utilization"];

/// Per-worker fields of the daemon's steady-state serving section.
const SERVE_FIELDS: &[&str] = &[
    "workers",
    "cold_ms",
    "warm_ms",
    "warm_telemetry_ms",
    "warm_speedup",
    "requests_per_s",
];

/// Relative headroom the telemetry-armed warm latency gets over the
/// plain one: the plane must stay within 2% of the request path.
const TELEMETRY_OVERHEAD_FRAC: f64 = 0.02;

/// Absolute timer-noise allowance (ms) on top of the relative bound —
/// best-of-N warm latencies are single-digit milliseconds, where 2%
/// is within scheduler jitter.
const TELEMETRY_SLACK_MS: f64 = 0.25;

fn check(root: &Json) -> Result<(), String> {
    let layers = root
        .get("layers")
        .ok_or("missing section: layers".to_owned())?;
    for field in LAYER_FIELDS {
        layers
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("layers: missing or non-numeric field {field}"))?;
    }
    let backend = layers
        .get("packed_backend")
        .and_then(Json::as_str)
        .ok_or("layers: missing packed_backend name")?;
    let speedup = layers.get("packed_speedup").unwrap().as_f64().unwrap();
    if backend != "scalar" && speedup < MIN_PACKED_SPEEDUP {
        return Err(format!(
            "layers: packed_speedup {speedup:.2} below the {MIN_PACKED_SPEEDUP:.1}x floor \
             for the {backend} backend (tlm1_packed_kts vs tlm1_with_reference_kts, same run)"
        ));
    }
    for section in ["campaign_bus", "campaign_explore"] {
        let s = root
            .get(section)
            .ok_or(format!("missing section: {section}"))?;
        s.get("scenarios")
            .and_then(Json::as_u64)
            .ok_or(format!("{section}: missing scenarios count"))?;
        let workers = s
            .get("workers")
            .and_then(Json::as_arr)
            .ok_or(format!("{section}: missing workers array"))?;
        if workers.is_empty() {
            return Err(format!("{section}: empty workers array"));
        }
        for (i, entry) in workers.iter().enumerate() {
            for field in WORKER_FIELDS {
                entry.get(field).and_then(Json::as_f64).ok_or(format!(
                    "{section}: workers[{i}] missing or non-numeric field {field}"
                ))?;
            }
            for field in OPTIONAL_FRACTION_FIELDS {
                if let Some(value) = entry.get(field) {
                    let v = value
                        .as_f64()
                        .ok_or(format!("{section}: workers[{i}] non-numeric field {field}"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!(
                            "{section}: workers[{i}] field {field} = {v} outside [0, 1]"
                        ));
                    }
                }
            }
            // Optional like the fractions (pre-daemon files omit it),
            // but a whole worker count when present.
            if let Some(value) = entry.get("idle_workers") {
                value.as_u64().ok_or(format!(
                    "{section}: workers[{i}] idle_workers must be a non-negative integer"
                ))?;
            }
        }
    }
    check_serve(root)
}

/// The daemon's steady-state serving section: per-worker cold/warm
/// request latency and sustained request throughput, written by
/// `serve_bench`. Warm requests replay from the content-addressed
/// cache, so a warm latency at or above the cold one means the cache
/// stopped doing its job — gate on it.
fn check_serve(root: &Json) -> Result<(), String> {
    let serve = root
        .get("serve")
        .ok_or("missing section: serve".to_owned())?;
    serve
        .get("scenarios_per_request")
        .and_then(Json::as_u64)
        .ok_or("serve: missing scenarios_per_request")?;
    let workers = serve
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("serve: missing workers array".to_owned())?;
    if workers.is_empty() {
        return Err("serve: empty workers array".to_owned());
    }
    for (i, entry) in workers.iter().enumerate() {
        for field in SERVE_FIELDS {
            entry.get(field).and_then(Json::as_f64).ok_or(format!(
                "serve: workers[{i}] missing or non-numeric field {field}"
            ))?;
        }
        let cold = entry.get("cold_ms").unwrap().as_f64().unwrap();
        let warm = entry.get("warm_ms").unwrap().as_f64().unwrap();
        if warm >= cold {
            return Err(format!(
                "serve: workers[{i}] warm latency {warm} ms is not below cold {cold} ms \
                 — the result cache is not paying off"
            ));
        }
        let warm_telemetry = entry.get("warm_telemetry_ms").unwrap().as_f64().unwrap();
        let bound = warm * (1.0 + TELEMETRY_OVERHEAD_FRAC) + TELEMETRY_SLACK_MS;
        if warm_telemetry > bound {
            return Err(format!(
                "serve: workers[{i}] telemetry-armed warm latency {warm_telemetry} ms exceeds \
                 {bound:.3} ms (plain warm {warm} ms + {:.0}% + {TELEMETRY_SLACK_MS} ms slack) \
                 — the telemetry plane is no longer near-free on the request path",
                TELEMETRY_OVERHEAD_FRAC * 100.0
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = hierbus_bench::throughput_json_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_throughput: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let root = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!(
                "check_throughput: {} is not valid JSON: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    match check(&root) {
        Ok(()) => {
            println!("check_throughput: {} schema OK", path.display());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("check_throughput: {}: {msg}", path.display());
            eprintln!("regenerate with the bench bins (see README \"Benchmarking\")");
            ExitCode::FAILURE
        }
    }
}
