//! **Table 3** — simulation performance of the TLM models in executed
//! bus transactions per second, with and without energy estimation.
//!
//! Paper values: layer 1 85.3 kT/s (with) / 94.6 kT/s (without, ×1.1);
//! layer 2 129.6 kT/s (×1.52) / 145.8 kT/s (×1.7). Plus the §4.2 text:
//! RTL→TLM acceleration around two orders of magnitude. Absolute numbers
//! depend on the host; the factors are the reproducible shape. Run with
//! `cargo run --release -p hierbus-bench --bin table3_simperf`.

use hierbus::harness;
use hierbus_bench::{grouped, TextTable};
use hierbus_ec::sequences::{random_mix, MixParams};
use std::time::Instant;

/// Transactions in the measured mix ("all combinations between single
/// read, single write, burst read, and burst write transactions").
const TXNS: usize = 60_000;
const REPS: u32 = 3;

fn mix() -> hierbus_ec::Scenario {
    random_mix(
        0xBE9C,
        MixParams {
            count: TXNS,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    )
}

/// Runs `f` `REPS` times and returns the best kT/s.
fn measure(f: impl Fn() -> u64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let start = Instant::now();
        let txns = f();
        let secs = start.elapsed().as_secs_f64();
        best = best.max(txns as f64 / secs / 1000.0);
    }
    best
}

fn main() {
    println!(
        "Measuring {} transactions per run, {REPS} repetitions each...\n",
        grouped(TXNS as u64)
    );
    let scenario = mix();
    let db = harness::standard_db();

    let l1_with = measure(|| harness::perf::layer1(&scenario, &db));
    let l1_without = measure(|| harness::perf::layer1_timing(&scenario));
    let l2_with = measure(|| harness::perf::layer2(&scenario, &db));
    let l2_without = measure(|| harness::perf::layer2_timing(&scenario));
    let l3 = measure(|| harness::perf::layer3(&scenario));

    let base = l1_with;
    let mut table3 = TextTable::new([
        "model",
        "with est. kT/s",
        "factor",
        "without est. kT/s",
        "factor",
    ]);
    table3.row([
        "TL layer 1".to_owned(),
        format!("{l1_with:.1}"),
        format!("{:.2}", l1_with / base),
        format!("{l1_without:.1}"),
        format!("{:.2}", l1_without / base),
    ]);
    table3.row([
        "TL layer 2".to_owned(),
        format!("{l2_with:.1}"),
        format!("{:.2}", l2_with / base),
        format!("{l2_without:.1}"),
        format!("{:.2}", l2_without / base),
    ]);
    table3.row([
        "TL layer 3 (untimed)".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        format!("{l3:.1}"),
        format!("{:.2}", l3 / base),
    ]);
    println!("Table 3 — simulation performance (paper factors: 1 / 1.1 / 1.52 / 1.7):\n");
    println!("{}", table3.render());

    // Observability overhead: the span/counter probes are compiled into
    // every bus model and branch on a `enabled` flag. With obs off the
    // instrumented path *is* the shipping path, so re-measuring it
    // against the baseline above quantifies the branch-off cost plus
    // measurement noise; the enabled run shows the full collection cost.
    let l1_obs_off = measure(|| harness::perf::layer1(&scenario, &db));
    let l1_obs_on = measure(|| harness::perf::layer1_observed(&scenario, &db));
    let off_regression = 100.0 * (l1_with - l1_obs_off) / l1_with;
    println!("Observability overhead (TL layer 1, with estimation):");
    println!("  obs off (baseline):  {l1_with:.1} kT/s");
    println!(
        "  obs off (re-run):    {l1_obs_off:.1} kT/s  ({off_regression:+.1}% vs baseline, budget <=5.0%: {})",
        if off_regression <= 5.0 { "OK" } else { "EXCEEDED" }
    );
    println!(
        "  obs on (spans):      {l1_obs_on:.1} kT/s  ({:+.1}% vs baseline)\n",
        100.0 * (l1_obs_on - l1_with) / l1_with
    );

    // Export an observed run of a small slice of the mix so the span
    // layout behind these numbers can be inspected in Perfetto.
    let obs_mix = random_mix(
        0xBE9C,
        MixParams {
            count: 60,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    );
    let mut run = hierbus::observe::run_observed(&obs_mix, &db);
    run.name = "table3_simperf".to_owned();
    match hierbus::observe::export(&run, &hierbus::observe::default_dir()) {
        Ok((trace, csv)) => println!(
            "Observability artifacts:\n  {}\n  {}\n",
            trace.display(),
            csv.display()
        ),
        Err(e) => eprintln!("warning: could not write results/obs artifacts: {e}"),
    }

    // §4.2 context: the RTL reference's throughput on a smaller run.
    let small = random_mix(
        0xBE9C,
        MixParams {
            count: 6_000,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    );
    let rtl = measure(|| {
        let r = harness::run_reference(&small, false);
        r.records.len() as u64
    });
    let rtl_ideal = measure(|| {
        let r = harness::run_reference(&small, true);
        r.records.len() as u64
    });
    println!("Context (§4.2): signal-level reference with gate-level estimation:");
    println!(
        "  reference (glitches on):   {rtl:.1} kT/s  (TL1-with is {:.2}x faster)",
        l1_with / rtl
    );
    println!("  reference (ideal netlist): {rtl_ideal:.1} kT/s");
    println!(
        "\nNote: the paper cites a ~100x RTL-to-TLM acceleration from prior work\n\
         measured against an event-driven RTL simulator evaluating a full\n\
         netlist. Our layer-0 substitute is a behavioral signal-level model\n\
         (see DESIGN.md), so only the estimation overhead — not the netlist\n\
         evaluation cost — appears in its throughput."
    );
}
