//! **Table 3** — simulation performance of the TLM models in executed
//! bus transactions per second, with and without energy estimation.
//!
//! Paper values: layer 1 85.3 kT/s (with) / 94.6 kT/s (without, ×1.1);
//! layer 2 129.6 kT/s (×1.52) / 145.8 kT/s (×1.7). Plus the §4.2 text:
//! RTL→TLM acceleration around two orders of magnitude. Absolute numbers
//! depend on the host; the factors are the reproducible shape.
//!
//! Beyond the paper, the binary measures *campaign* throughput — the
//! §4.3 exploration matrix on the `hierbus-campaign` worker pool at
//! 1/2/4/N workers — and writes the whole perf trajectory to
//! `BENCH_throughput.json` at the repo root so future revisions can be
//! diffed for regressions. Run with
//! `cargo run --release -p hierbus-bench --bin table3_simperf`.

use hierbus::harness;
use hierbus_bench::{grouped, TextTable, THROUGHPUT_JSON};
use hierbus_campaign::Json;
use hierbus_ec::sequences::{random_mix, MixParams};
use hierbus_jcvm::workloads::standard_workloads;
use hierbus_jcvm::{explore_matrix, IfaceConfig};
use std::time::Instant;

/// Transactions in the measured mix ("all combinations between single
/// read, single write, burst read, and burst write transactions").
const TXNS: usize = 60_000;
const REPS: u32 = 3;

fn mix() -> hierbus_ec::Scenario {
    random_mix(
        0xBE9C,
        MixParams {
            count: TXNS,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    )
}

/// Runs `f` `REPS` times and returns the best kT/s.
fn measure(f: impl Fn() -> u64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let start = Instant::now();
        let txns = f();
        let secs = start.elapsed().as_secs_f64();
        best = best.max(txns as f64 / secs / 1000.0);
    }
    best
}

/// Worker counts for the campaign scaling measurement: 1, 2, 4 and the
/// host's available parallelism (deduplicated, ascending).
fn scaling_worker_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Ok(n) = std::thread::available_parallelism() {
        counts.push(n.get());
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn main() {
    println!(
        "Measuring {} transactions per run, {REPS} repetitions each...\n",
        grouped(TXNS as u64)
    );
    let scenario = mix();
    let db = harness::shared_db();

    let l1_with = measure(|| harness::perf::layer1(&scenario, &db));
    let l1_packed = measure(|| harness::perf::layer1_packed(&scenario, &db));
    let l1_with_reference = measure(|| harness::perf::layer1_reference(&scenario, &db));
    let packed_backend = hierbus::power::Backend::active();
    let l1_without = measure(|| harness::perf::layer1_timing(&scenario));
    let l2_with = measure(|| harness::perf::layer2(&scenario, &db));
    let l2_without = measure(|| harness::perf::layer2_timing(&scenario));
    let l3 = measure(|| harness::perf::layer3(&scenario));

    let base = l1_with;
    let mut table3 = TextTable::new([
        "model",
        "with est. kT/s",
        "factor",
        "without est. kT/s",
        "factor",
    ]);
    table3.row([
        "TL layer 1".to_owned(),
        format!("{l1_with:.1}"),
        format!("{:.2}", l1_with / base),
        format!("{l1_without:.1}"),
        format!("{:.2}", l1_without / base),
    ]);
    table3.row([
        "TL layer 2".to_owned(),
        format!("{l2_with:.1}"),
        format!("{:.2}", l2_with / base),
        format!("{l2_without:.1}"),
        format!("{:.2}", l2_without / base),
    ]);
    table3.row([
        "TL layer 3 (untimed)".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        format!("{l3:.1}"),
        format!("{:.2}", l3 / base),
    ]);
    println!("Table 3 — simulation performance (paper factors: 1 / 1.1 / 1.52 / 1.7):\n");
    println!("{}", table3.render());
    println!(
        "Layer-1 hot path: {l1_packed:.1} kT/s packed ({} backend, {} lanes) vs \
         {l1_with:.1} kT/s scalar vs {l1_with_reference:.1} kT/s bit-loop reference \
         ({:.2}x over reference)\n",
        packed_backend.name(),
        packed_backend.lanes(),
        l1_packed / l1_with_reference
    );

    // Observability overhead: the span/counter probes are compiled into
    // every bus model and branch on a `enabled` flag. With obs off the
    // instrumented path *is* the shipping path, so re-measuring it
    // against the baseline above quantifies the branch-off cost plus
    // measurement noise; the enabled run shows the full collection cost.
    let l1_obs_off = measure(|| harness::perf::layer1(&scenario, &db));
    let l1_obs_on = measure(|| harness::perf::layer1_observed(&scenario, &db));
    let off_regression = 100.0 * (l1_with - l1_obs_off) / l1_with;
    println!("Observability overhead (TL layer 1, with estimation):");
    println!("  obs off (baseline):  {l1_with:.1} kT/s");
    println!(
        "  obs off (re-run):    {l1_obs_off:.1} kT/s  ({off_regression:+.1}% vs baseline, budget <=5.0%: {})",
        if off_regression <= 5.0 { "OK" } else { "EXCEEDED" }
    );
    println!(
        "  obs on (spans):      {l1_obs_on:.1} kT/s  ({:+.1}% vs baseline)\n",
        100.0 * (l1_obs_on - l1_with) / l1_with
    );

    // Export an observed run of a small slice of the mix so the span
    // layout behind these numbers can be inspected in Perfetto.
    let obs_mix = random_mix(
        0xBE9C,
        MixParams {
            count: 60,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    );
    let mut run = hierbus::observe::run_observed(&obs_mix, &db);
    run.name = "table3_simperf".to_owned();
    match hierbus::observe::export(&run, &hierbus::observe::default_dir()) {
        Ok((trace, csv)) => println!(
            "Observability artifacts:\n  {}\n  {}\n",
            trace.display(),
            csv.display()
        ),
        Err(e) => eprintln!("warning: could not write results/obs artifacts: {e}"),
    }

    // Campaign throughput scaling: the §4.3 exploration matrix on the
    // worker pool. The matrix is a slice of the full sweep (8 interface
    // configurations × every workload) so the measurement stays quick;
    // scenarios/s is what a designer's exploration loop actually feels.
    let mut configs = IfaceConfig::all_variants(0x8000);
    configs.truncate(8);
    let workloads = standard_workloads();
    let matrix = explore_matrix(&configs, &workloads);
    let worker_counts = scaling_worker_counts();
    // Old engine arm: per-scenario claiming with a fresh energy model
    // per scenario driving the bit-loop reference diff — the code path
    // the committed baseline measured.
    let old_scaling =
        hierbus_campaign::measure_scaling_with::<(), hierbus_jcvm::ExplorationRow, _, _>(
            &matrix,
            "table3_campaign_old",
            &worker_counts,
            hierbus_campaign::ClaimStrategy::PerScenario,
            || (),
            |(), point| {
                hierbus_jcvm::run_config_reference(
                    configs[point.coords[0]],
                    &workloads[point.coords[1]],
                    &db,
                )
                .expect("exploration scenario runs")
            },
        );
    // New engine arm: chunked claiming, one reset-reused session per
    // worker.
    let scaling = hierbus_campaign::measure_scaling_with::<
        hierbus_jcvm::ExploreSession,
        hierbus_jcvm::ExplorationRow,
        _,
        _,
    >(
        &matrix,
        "table3_campaign",
        &worker_counts,
        hierbus_campaign::ClaimStrategy::Chunked,
        || hierbus_jcvm::ExploreSession::new(&db),
        |session, point| {
            session
                .run(configs[point.coords[0]], &workloads[point.coords[1]])
                .expect("exploration scenario runs")
        },
    );
    let base_sps = scaling[0].scenarios_per_sec;
    let mut scale_table = TextTable::new([
        "workers",
        "wall",
        "scenarios/s",
        "old scen/s",
        "speedup (new/old)",
        "scaling (vs 1w)",
        "busy",
    ]);
    for (p, old) in scaling.iter().zip(&old_scaling) {
        scale_table.row([
            p.workers.to_string(),
            format!("{:.2?}", p.wall),
            format!("{:.1}", p.scenarios_per_sec),
            format!("{:.1}", old.scenarios_per_sec),
            format!("{:.2}x", p.scenarios_per_sec / old.scenarios_per_sec),
            format!("{:.2}x", p.scenarios_per_sec / base_sps),
            format!("{:.0}%", p.busy_frac * 100.0),
        ]);
    }
    println!(
        "Campaign scaling ({} exploration scenarios per run):\n",
        matrix.len()
    );
    println!("{}", scale_table.render());

    // Machine-readable perf trajectory for regression tracking.
    let layer_fields = vec![
        ("tlm1_with_kts".to_owned(), Json::Num(l1_with)),
        ("tlm1_packed_kts".to_owned(), Json::Num(l1_packed)),
        (
            "packed_backend".to_owned(),
            Json::Str(packed_backend.name().to_owned()),
        ),
        (
            "packed_speedup".to_owned(),
            Json::Num(l1_packed / l1_with_reference),
        ),
        (
            "tlm1_with_reference_kts".to_owned(),
            Json::Num(l1_with_reference),
        ),
        (
            "tlm1_hotpath_speedup".to_owned(),
            Json::Num(l1_with / l1_with_reference),
        ),
        ("tlm1_without_kts".to_owned(), Json::Num(l1_without)),
        ("tlm1_observed_kts".to_owned(), Json::Num(l1_obs_on)),
        ("tlm2_with_kts".to_owned(), Json::Num(l2_with)),
        ("tlm2_without_kts".to_owned(), Json::Num(l2_without)),
        ("tlm3_kts".to_owned(), Json::Num(l3)),
    ];
    let campaign_fields = vec![
        ("scenarios".to_owned(), Json::Num(matrix.len() as f64)),
        (
            "workers".to_owned(),
            Json::Arr(
                scaling
                    .iter()
                    .zip(&old_scaling)
                    .map(|(p, old)| {
                        Json::Obj(vec![
                            ("workers".to_owned(), Json::Num(p.workers as f64)),
                            ("scenarios_per_s".to_owned(), Json::Num(p.scenarios_per_sec)),
                            (
                                "old_scenarios_per_s".to_owned(),
                                Json::Num(old.scenarios_per_sec),
                            ),
                            (
                                "speedup".to_owned(),
                                Json::Num(p.scenarios_per_sec / old.scenarios_per_sec),
                            ),
                            (
                                "scaling".to_owned(),
                                Json::Num(p.scenarios_per_sec / base_sps),
                            ),
                            ("busy_frac".to_owned(), Json::Num(p.busy_frac)),
                            ("utilization".to_owned(), Json::Num(p.utilization)),
                            ("idle_workers".to_owned(), Json::Num(p.idle_workers as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    match hierbus_bench::write_throughput_section(
        hierbus_bench::throughput_json_path(),
        "layers",
        layer_fields,
    )
    .and_then(|()| {
        hierbus_bench::write_throughput_section(
            hierbus_bench::throughput_json_path(),
            "campaign_explore",
            campaign_fields,
        )
    }) {
        Ok(()) => println!("Perf trajectory written to {THROUGHPUT_JSON}\n"),
        Err(e) => eprintln!("warning: could not write {THROUGHPUT_JSON}: {e}"),
    }

    // §4.2 context: the RTL reference's throughput on a smaller run.
    let small = random_mix(
        0xBE9C,
        MixParams {
            count: 6_000,
            read_pct: 50,
            burst_pct: 40,
            fetch_pct: 30,
            max_idle: 0,
            ..MixParams::default()
        },
    );
    let rtl = measure(|| {
        let r = harness::run_reference(&small, false);
        r.records.len() as u64
    });
    let rtl_ideal = measure(|| {
        let r = harness::run_reference(&small, true);
        r.records.len() as u64
    });
    println!("Context (§4.2): signal-level reference with gate-level estimation:");
    println!(
        "  reference (glitches on):   {rtl:.1} kT/s  (TL1-with is {:.2}x faster)",
        l1_with / rtl
    );
    println!("  reference (ideal netlist): {rtl_ideal:.1} kT/s");
    println!(
        "\nNote: the paper cites a ~100x RTL-to-TLM acceleration from prior work\n\
         measured against an event-driven RTL simulator evaluating a full\n\
         netlist. Our layer-0 substitute is a behavioral signal-level model\n\
         (see DESIGN.md), so only the estimation overhead — not the netlist\n\
         evaluation cost — appears in its throughput."
    );
}
