//! **Fig. 7 / §4.3** — HW/SW interface exploration for the Java Card VM.
//!
//! The refined model (bytecode interpreter → master adapter → energy-
//! aware layer-1 TLM bus → slave adapter → hardware stack) runs every
//! workload on every interface configuration; the resulting table ranks
//! the design points by cycles and energy — the evaluation the paper
//! built its models for.
//!
//! The sweep executes as a campaign on the `hierbus-campaign` engine:
//!
//! ```text
//! cargo run --release -p hierbus-bench --bin explore_jcvm            # sequential
//! cargo run --release -p hierbus-bench --bin explore_jcvm -- --workers 4
//! cargo run --release -p hierbus-bench --bin explore_jcvm -- \
//!     --workers 4 --manifest results/explore_jcvm.manifest.json      # resumable
//! cargo run --release -p hierbus-bench --bin explore_jcvm -- --smoke # tiny matrix (CI)
//! ```
//!
//! `CAMPAIGN_WORKERS=N` is honoured when `--workers` is absent. The
//! merged table is byte-identical for every worker count.

use hierbus::harness;
use hierbus_bench::TextTable;
use hierbus_campaign::CampaignOptions;
use hierbus_jcvm::workloads::standard_workloads;
use hierbus_jcvm::{explore_campaign, IfaceConfig};
use std::path::PathBuf;

const STACK_BASE: u64 = 0x8000;

struct Args {
    workers: Option<usize>,
    manifest: Option<PathBuf>,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: None,
        manifest: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                args.workers = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--workers takes a positive integer"),
                );
            }
            "--manifest" => {
                args.manifest = Some(PathBuf::from(it.next().expect("--manifest takes a path")));
            }
            "--smoke" => args.smoke = true,
            other => panic!("unknown argument {other:?} (see the module docs)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!("Characterizing the energy models (gate-level training run)...\n");
    let db = harness::shared_db();

    let mut configs = IfaceConfig::all_variants(STACK_BASE);
    // Plus the burst-transfer variants ("used bus transactions" axis):
    // call arguments move as burst transactions; on the slow window the
    // once-per-block address phase is where bursts win cycles.
    configs.push(IfaceConfig::with_bursts(STACK_BASE));
    configs.push(IfaceConfig {
        slow_window: true,
        ..IfaceConfig::with_bursts(STACK_BASE)
    });
    let mut workloads = standard_workloads();
    if args.smoke {
        configs.truncate(2);
        workloads.truncate(2);
    }
    let workers = hierbus_campaign::worker_count(args.workers);
    println!(
        "Exploring {} interface configurations x {} workloads...\n",
        configs.len(),
        workloads.len()
    );
    let opts = CampaignOptions {
        manifest_path: args.manifest.clone(),
        ..CampaignOptions::with_workers("explore_jcvm", workers)
    };
    let (rows, stats) =
        explore_campaign(&configs, &workloads, &db, &opts).expect("campaign manifest I/O");
    // Worker count and wall-clock go to stderr so stdout (captured into
    // results/) is byte-identical for every worker count.
    eprintln!(
        "campaign: {} scenarios on {} worker(s) in {:.2?} ({:.1} scenarios/s, {} executed, {} resumed)",
        stats.total,
        stats.workers,
        stats.wall,
        stats.scenarios_per_sec(),
        stats.executed,
        stats.resumed
    );
    for (i, w) in stats.per_worker.iter().enumerate() {
        eprintln!(
            "  worker {i}: {} claimed, {} completed, {:.0}% busy",
            w.claimed,
            w.completed,
            100.0 * w.utilization(stats.wall)
        );
    }

    // Full table, with the stack-access energy attribution from each
    // row's ledger. Back-to-back stack traffic is pipelined (address
    // cycles fold into the overlapping data phases), so a nonzero
    // address share is the signature of wait states — the slow window.
    let mut table = TextTable::new([
        "interface",
        "workload",
        "cycles",
        "txns",
        "energy pJ",
        "pJ/cycle",
        "addr",
        "rd",
        "wr",
        "idle",
    ]);
    for row in &rows {
        let share = |p: &str| format!("{:.0}%", 100.0 * row.phase_share(p));
        table.row([
            row.config.clone(),
            row.workload.clone(),
            row.cycles.to_string(),
            row.transactions.to_string(),
            format!("{:.0}", row.energy_pj),
            format!("{:.2}", row.energy_per_cycle()),
            share("address"),
            share("read-data"),
            share("write-data"),
            share("idle"),
        ]);
    }
    println!("{}", table.render());

    // Per-workload ranking summary.
    let mut summary = TextTable::new([
        "workload",
        "best (cycles)",
        "cycles",
        "worst (cycles)",
        "cycles",
        "energy spread",
    ]);
    for w in &workloads {
        let mut of_w: Vec<_> = rows.iter().filter(|r| r.workload == w.name).collect();
        of_w.sort_by_key(|r| r.cycles);
        let best = of_w.first().expect("rows exist");
        let worst = of_w.last().expect("rows exist");
        let e_min = of_w
            .iter()
            .map(|r| r.energy_pj)
            .fold(f64::INFINITY, f64::min);
        let e_max = of_w.iter().map(|r| r.energy_pj).fold(0.0f64, f64::max);
        summary.row([
            w.name.to_owned(),
            best.config.clone(),
            best.cycles.to_string(),
            worst.config.clone(),
            worst.cycles.to_string(),
            format!("{:.1}x", e_max / e_min),
        ]);
    }
    println!("Per-workload extremes:\n");
    println!("{}", summary.render());

    if args.smoke {
        println!("Smoke matrix only — run without --smoke for the full sweep.");
        return;
    }
    println!(
        "Expected shape: 32-bit access on the fast window without polling\n\
         wins everywhere; 8-bit access, status polling and the slow window\n\
         each multiply cost; the register organisation only separates on\n\
         peek-heavy code (dup_squares), where the single-data-register\n\
         interface pays a pop + re-push per Dup."
    );
}
