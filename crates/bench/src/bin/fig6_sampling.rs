//! **Figure 6** — the layer-2 energy sampling semantics.
//!
//! The layer-2 power interface has a single method returning the energy
//! consumed since the last call, booked at *phase completion*: a sample
//! taken at t1 contains the address phases of requests 1 and 2; a sample
//! at t2 contains the address phase of request 3 plus the read phase of
//! request 1 and the write phase of request 2 — but not the read phase
//! of request 3, which has not completed yet. The layer-1 model, by
//! contrast, can profile every single cycle. Run with
//! `cargo run -p hierbus-bench --bin fig6_sampling`.

use hierbus_core::{MemSlave, Tlm1Bus, Tlm2Bus, TlmSystem};
use hierbus_ec::sequences::MasterOp;
use hierbus_ec::{
    AccessRights, Address, AddressRange, BurstLen, Scenario, SlaveConfig, WaitProfile,
};
use hierbus_power::{CharacterizationDb, Layer1EnergyModel, Layer2EnergyModel};

/// The three-request scenario of the figure: two waited transactions
/// back to back, then a third — their address and data phases interleave.
fn fig6_scenario() -> Scenario {
    Scenario {
        name: "fig6",
        ops: vec![
            MasterOp::read(0x100),                          // request 1 (read)
            MasterOp::burst_write(0x200, vec![0xAA, 0x55]), // request 2 (write)
            MasterOp::burst_read(0x300, BurstLen::B2),      // request 3 (read)
        ]
        .into(),
        waits: WaitProfile::new(1, 2, 2),
    }
}

fn slave(waits: WaitProfile) -> MemSlave {
    MemSlave::new(SlaveConfig::new(
        AddressRange::new(Address::new(0), 0x1_0000),
        waits,
        AccessRights::RWX,
    ))
}

fn main() {
    let db = CharacterizationDb::uniform();
    let scenario = fig6_scenario();

    // ---- layer 2: phase-granular sampling -------------------------------
    let mut bus = Tlm2Bus::new(vec![Box::new(slave(scenario.waits))]);
    bus.enable_events();
    let mut sys = TlmSystem::new(bus, scenario.ops.clone());
    let mut model = Layer2EnergyModel::new(db.clone());
    let mut timeline: Vec<(u64, String)> = Vec::new();

    let mut cycle = 0u64;
    let mut samples: Vec<(u64, f64, Vec<String>)> = Vec::new();
    let mut pending_labels: Vec<String> = Vec::new();
    // Sample times bracketing the figure's t1 and t2 (plus a final one).
    let sample_at = [3u64, 10, 14];
    while !sys.is_finished() {
        sys.step_cycle(&mut |bus: &mut Tlm2Bus| {
            for ev in bus.drain_events() {
                let label = format!("{:?}-phase @cycle {}", ev.kind, ev.at_cycle);
                timeline.push((ev.at_cycle, label.clone()));
                pending_labels.push(label);
                model.on_event(&ev);
            }
        });
        cycle += 1;
        if sample_at.contains(&cycle) {
            let e = model.energy_since_last_call();
            samples.push((cycle, e, std::mem::take(&mut pending_labels)));
        }
    }
    let leftover = model.energy_since_last_call();

    println!("Figure 6 — layer-2 energy sampling (phase completions):\n");
    println!("phase completion timeline:");
    for (at, label) in &timeline {
        println!("  cycle {at:>2}: {label}");
    }
    println!();
    for (i, (cycle, energy, phases)) in samples.iter().enumerate() {
        println!(
            "sample t{} (cycle {cycle:>2}): {energy:7.1} pJ  <- {}",
            i + 1,
            if phases.is_empty() {
                "no phase completed in this interval".to_owned()
            } else {
                phases.join(", ")
            }
        );
    }
    if leftover > 0.0 {
        println!("after the run:    {leftover:7.1} pJ still unsampled (phases completing late)");
    }

    // ---- layer 1: cycle-accurate profile for contrast --------------------
    let mut bus = Tlm1Bus::new(vec![Box::new(slave(scenario.waits))]);
    bus.enable_frames();
    let mut sys = TlmSystem::new(bus, scenario.ops);
    let mut l1 = Layer1EnergyModel::new(db);
    l1.enable_trace();
    sys.run(10_000, |bus: &mut Tlm1Bus| l1.on_frame(bus.last_frame()));
    println!("\nLayer-1 contrast — per-cycle energy profile (pJ):");
    let trace = l1.trace().expect("trace enabled");
    for (i, e) in trace.iter().enumerate() {
        let bar = "#".repeat((e / 4.0).round() as usize);
        println!("  cycle {i:>2}: {e:6.1}  {bar}");
    }
    println!(
        "\nThe layer-2 interface cannot produce the per-cycle profile above —\n\
         its samples aggregate whole phases, as the figure shows."
    );
}
