//! **Table 1** — timing error of the transaction-level models against
//! the (gate-level-equivalent) cycle-true reference.
//!
//! Paper values: gate level 100 %, layer 1 100 % (0 % error), layer 2
//! 100.5 % (+0.5 % error). Run with
//! `cargo run -p hierbus-bench --bin table1_timing`.

use hierbus::harness;
use hierbus_bench::{pct, TextTable};

fn main() {
    let mut per_scenario = TextTable::new(["scenario", "ref cy", "L1 cy", "L2 cy", "L2 err"]);
    let mut total = (0u64, 0u64, 0u64);
    for scenario in harness::evaluation_scenarios() {
        let r = harness::run_reference(&scenario, false);
        let l1 = harness::run_layer1_timing_only(&scenario);
        let l2 = harness::run_layer2_timing_only(&scenario);
        per_scenario.row([
            scenario.name.to_owned(),
            r.cycles.to_string(),
            l1.cycles.to_string(),
            l2.cycles.to_string(),
            pct((l2.cycles as f64 - r.cycles as f64) / r.cycles as f64),
        ]);
        total.0 += r.cycles;
        total.1 += l1.cycles;
        total.2 += l2.cycles;
    }

    println!("Per-scenario timing (verification suite + sequential mix):\n");
    println!("{}", per_scenario.render());

    let (r, l1, l2) = total;
    let mut table1 = TextTable::new(["abstraction level", "cycles", "error"]);
    table1.row([
        "gate-level model".to_owned(),
        "100%".to_owned(),
        "-".to_owned(),
    ]);
    table1.row([
        "layer one model".to_owned(),
        format!("{:.2}%", 100.0 * l1 as f64 / r as f64),
        pct((l1 as f64 - r as f64) / r as f64),
    ]);
    table1.row([
        "layer two model".to_owned(),
        format!("{:.2}%", 100.0 * l2 as f64 / r as f64),
        pct((l2 as f64 - r as f64) / r as f64),
    ]);
    println!("Table 1 — timing error (paper: 100% / 100%+0% / 100.5%+0.5%):\n");
    println!("{}", table1.render());

    // Export one observed run so the per-phase timing behind the table
    // can be inspected span-by-span across layers in Perfetto. A uniform
    // characterization keeps this bin training-free; the energy counter
    // tracks are indicative only (see table2_energy for calibrated ones).
    let db = hierbus::power::CharacterizationDb::uniform();
    let scenario = hierbus::ec::sequences::burst_reads();
    let mut run = hierbus::observe::run_observed(&scenario, &db);
    run.name = "table1_timing".to_owned();
    match hierbus::observe::export(&run, &hierbus::observe::default_dir()) {
        Ok((trace, csv)) => println!(
            "Observability artifacts:\n  {}\n  {}",
            trace.display(),
            csv.display()
        ),
        Err(e) => eprintln!("warning: could not write results/obs artifacts: {e}"),
    }
}
