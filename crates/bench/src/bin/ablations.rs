//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. layer-1 energy with characterized vs uniform per-class energies,
//! 2. layer-2 with vs without the inter-transaction correlation
//!    correction,
//! 3. glitch modeling on vs off in the gate-level reference,
//! 4. outstanding-transaction depth vs throughput.
//!
//! 5. instruction cache vs bus traffic,
//! 6. robustness under injected faults: what retries, stalls and card
//!    tears cost in cycles and energy, at every model layer.
//!
//! Ablations 1–3 need one energy number per `scenario × model` cell, so
//! the cells run as a campaign on the `hierbus-campaign` engine (every
//! cell is an independent simulation; `CAMPAIGN_WORKERS=N` parallelises
//! them) and the aggregate statistics are folded from the merged cells
//! in matrix order — the printed numbers are identical for any worker
//! count. Ablation 6 runs as a second campaign over the
//! `fault-preset × layer` matrix. Run with
//! `cargo run --release -p hierbus-bench --bin ablations`.

use hierbus::harness;
use hierbus_bench::{pct, TextTable};
use hierbus_campaign::{CampaignOptions, CampaignPayload, Json, Matrix};
use hierbus_core::{MemSlave, Tlm1Bus, TlmMaster, TlmSystem};
use hierbus_ec::sequences::{random_mix, MixParams};
use hierbus_ec::OutstandingLimits;
use hierbus_power::{CharacterizationDb, Layer1EnergyModel};

/// The model axis of the ablation campaign.
const MODELS: [&str; 6] = [
    "gate",
    "ideal_netlist",
    "layer1",
    "layer1_uniform",
    "layer2_plain",
    "layer2_corrected",
];

/// One campaign cell: the energy one model estimates for one scenario.
struct EnergyCell {
    energy_pj: f64,
}

impl CampaignPayload for EnergyCell {
    fn to_json(&self) -> Json {
        Json::Obj(vec![("energy_pj".to_owned(), Json::Num(self.energy_pj))])
    }

    fn from_json(json: &Json) -> Option<Self> {
        Some(EnergyCell {
            energy_pj: json.get("energy_pj")?.as_f64()?,
        })
    }
}

/// Layer-1 run with the scale-free uniform database (1 pJ/toggle).
fn run_layer1_uniform(s: &hierbus_ec::Scenario) -> f64 {
    let mem = MemSlave::new(harness::scenario_slave(s));
    let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
    bus.enable_frames();
    let mut sys = TlmSystem::new(bus, s.ops.clone());
    let mut model = Layer1EnergyModel::new(CharacterizationDb::uniform());
    sys.run(50_000_000, |b: &mut Tlm1Bus| model.on_frame(b.last_frame()));
    model.total_energy()
}

fn main() {
    let db = harness::shared_db();
    let scenarios = harness::evaluation_scenarios();

    // ---- the scenario × model energy matrix (ablations 1–3) -------------
    let matrix = Matrix::new()
        .axis("scenario", scenarios.iter().map(|s| s.name))
        .axis("model", MODELS);
    let workers = hierbus_campaign::worker_count(None);
    let runner_db = std::sync::Arc::clone(&db);
    let report = hierbus_campaign::run(
        &matrix,
        &CampaignOptions::with_workers("ablations", workers),
        move |point| {
            let s = &scenarios[point.coords[0]];
            let energy_pj = match MODELS[point.coords[1]] {
                "gate" => harness::run_reference(s, false).energy_pj,
                "ideal_netlist" => harness::run_reference(s, true).energy_pj,
                "layer1" => harness::run_layer1(s, &runner_db).energy_pj,
                "layer1_uniform" => run_layer1_uniform(s),
                "layer2_plain" => harness::run_layer2(s, &runner_db, false).energy_pj,
                "layer2_corrected" => harness::run_layer2(s, &runner_db, true).energy_pj,
                other => unreachable!("unknown model {other}"),
            };
            EnergyCell { energy_pj }
        },
    )
    .expect("manifest-less campaign cannot fail on I/O");
    eprintln!(
        "campaign: {} cells in {:.2?} ({} workers)",
        report.stats.total, report.stats.wall, report.stats.workers
    );
    for (i, w) in report.stats.per_worker.iter().enumerate() {
        eprintln!(
            "  worker {i}: {} claimed, {} completed, {:.0}% busy",
            w.claimed,
            w.completed,
            100.0 * w.utilization(report.stats.wall)
        );
    }
    // cells[scenario][model], merged in matrix order.
    let cell = |scenario: usize, model: &str| -> f64 {
        let m = MODELS.iter().position(|&x| x == model).expect("model");
        report.results[scenario * MODELS.len() + m]
            .as_ref()
            .expect("complete campaign")
            .energy_pj
    };
    let n_scen = report.stats.total / MODELS.len();

    // ---- 1. characterization value --------------------------------------
    let mut gate = 0.0;
    let mut l1_unif = 0.0;
    for s in 0..n_scen {
        gate += cell(s, "gate");
        // Uniform db: 1 pJ/toggle everywhere — scale-free, so compare the
        // per-scenario *distribution* by normalising totals to gate.
        l1_unif += cell(s, "layer1_uniform");
    }
    // Scale the uniform model to match total gate energy, then compare
    // per-scenario errors — characterization should win on distribution.
    let unif_scale = gate / l1_unif;
    let mut char_sq = 0.0;
    let mut unif_sq = 0.0;
    for s in 0..n_scen {
        let g = cell(s, "gate");
        let c = cell(s, "layer1");
        let u = cell(s, "layer1_uniform") * unif_scale;
        char_sq += ((c - g) / g).powi(2);
        unif_sq += ((u - g) / g).powi(2);
    }
    let n = n_scen as f64;
    println!("Ablation 1 — value of per-class characterization (layer 1):");
    println!(
        "  rms per-scenario error: characterized {:.1}% vs oracle-rescaled uniform {:.1}%",
        (char_sq / n).sqrt() * 100.0,
        (unif_sq / n).sqrt() * 100.0
    );
    println!(
        "  (the uniform column needs the gate-level total as a scaling oracle:\n\
         \x20  characterization's value is the absolute pJ calibration, which\n\
         \x20  no rescale is available for in real use)\n"
    );

    // ---- 2. layer-2 correlation correction ------------------------------
    let mut plain = 0.0;
    let mut corrected = 0.0;
    for s in 0..n_scen {
        plain += cell(s, "layer2_plain");
        corrected += cell(s, "layer2_corrected");
    }
    println!("Ablation 2 — layer-2 inter-transaction correlation:");
    println!(
        "  plain layer 2: {} vs gate; with correction: {} vs gate",
        pct((plain - gate) / gate),
        pct((corrected - gate) / gate)
    );
    println!(
        "  -> {:.1} percentage points of the overestimate are correlation blindness\n",
        (plain - corrected) / gate * 100.0
    );

    // ---- 3. glitch modeling ----------------------------------------------
    let mut ideal = 0.0;
    let mut l1 = 0.0;
    for s in 0..n_scen {
        ideal += cell(s, "ideal_netlist");
        l1 += cell(s, "layer1");
    }
    println!("Ablation 3 — glitch modeling in the reference:");
    println!(
        "  gate energy with glitches: {gate:.0} pJ; ideal netlist: {ideal:.0} pJ ({} of energy is hazards)",
        pct((gate - ideal) / gate)
    );
    println!(
        "  layer-1 error vs glitchy gate: {}; vs ideal netlist: {}\n",
        pct((l1 - gate) / gate),
        pct((l1 - ideal) / ideal)
    );

    // ---- 4. outstanding-transaction depth --------------------------------
    let mix = random_mix(
        0xD0A1,
        MixParams {
            count: 5_000,
            max_idle: 0,
            burst_pct: 40,
            ..MixParams::default()
        },
    );
    let mut table = TextTable::new(["outstanding limit", "cycles", "speedup"]);
    let mut base_cycles = 0u64;
    for limit in [1u32, 2, 4] {
        let limits = OutstandingLimits {
            instr_reads: limit,
            data_reads: limit,
            writes: limit,
        };
        let mem = MemSlave::new(harness::scenario_slave(&mix));
        let mut bus = Tlm1Bus::new(vec![Box::new(mem)]);
        let mut master = TlmMaster::with_limits(mix.ops.clone(), limits);
        let mut cycle = 0u64;
        use hierbus_core::CycleBus;
        while !master.is_finished() {
            master.rising_edge(&mut bus, cycle);
            if !bus.is_idle() {
                bus.bus_process(cycle);
            }
            cycle += 1;
            assert!(cycle < 10_000_000, "deadlock");
        }
        let cycles = master
            .records()
            .iter()
            .filter_map(|r| r.done_cycle)
            .max()
            .map_or(0, |c| c + 1);
        if limit == 1 {
            base_cycles = cycles;
        }
        table.row([
            limit.to_string(),
            cycles.to_string(),
            format!("{:.3}x", base_cycles as f64 / cycles as f64),
        ]);
    }
    println!("Ablation 4 — outstanding-transaction depth vs throughput:\n");
    println!("{}", table.render());

    // ---- 5. instruction cache vs bus traffic -----------------------------
    use hierbus_power::Layer1EnergyModel as L1Model;
    use hierbus_soc::{CpuSystem, Platform, PlatformMap, Program, Reg};
    let program = {
        let mut p = Program::new(PlatformMap::RESET_PC);
        p.li(Reg::T0, 500);
        p.li(Reg::T1, 0);
        p.label("loop");
        p.addu(Reg::T1, Reg::T1, Reg::T0);
        p.addiu(Reg::T0, Reg::T0, -1);
        p.bne(Reg::T0, Reg::ZERO, "loop");
        p.halt();
        p.assemble().expect("loop assembles")
    };
    let run_core = |cache_lines: Option<usize>| {
        let mut platform = Platform::new();
        platform.load_boot_program(&program);
        let mut bus = platform.into_tlm1();
        bus.enable_frames();
        let mut sys = match cache_lines {
            Some(n) => CpuSystem::with_icache(bus, PlatformMap::RESET_PC, n),
            None => CpuSystem::new(bus, PlatformMap::RESET_PC),
        };
        let mut model = L1Model::new((*db).clone());
        let report = sys.run_until_halt(10_000_000, |bus: &mut Tlm1Bus| {
            model.on_frame(bus.last_frame());
        });
        (report.cycles, report.cpi(), model.total_energy())
    };
    let (cyc_off, cpi_off, e_off) = run_core(None);
    let (cyc_on, cpi_on, e_on) = run_core(Some(16));
    println!("Ablation 5 — instruction cache (16 lines) on a tight loop:");
    println!("  uncached: {cyc_off} cycles (CPI {cpi_off:.2}), {e_off:.0} pJ of bus energy");
    println!(
        "  cached:   {cyc_on} cycles (CPI {cpi_on:.2}), {e_on:.0} pJ ({:.1}% of the bus energy)",
        100.0 * e_on / e_off
    );
    println!();

    // ---- 6. robustness under injected faults -----------------------------
    fault_ablation(&db);
}

/// One cell of the fault-sweep campaign.
struct FaultCell {
    cycles: f64,
    energy_pj: f64,
    ok: f64,
    errors: f64,
    aborted: f64,
    retried: f64,
}

impl CampaignPayload for FaultCell {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles".to_owned(), Json::Num(self.cycles)),
            ("energy_pj".to_owned(), Json::Num(self.energy_pj)),
            ("ok".to_owned(), Json::Num(self.ok)),
            ("errors".to_owned(), Json::Num(self.errors)),
            ("aborted".to_owned(), Json::Num(self.aborted)),
            ("retried".to_owned(), Json::Num(self.retried)),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        Some(FaultCell {
            cycles: json.get("cycles")?.as_f64()?,
            energy_pj: json.get("energy_pj")?.as_f64()?,
            ok: json.get("ok")?.as_f64()?,
            errors: json.get("errors")?.as_f64()?,
            aborted: json.get("aborted")?.as_f64()?,
            retried: json.get("retried")?.as_f64()?,
        })
    }
}

/// The fault-preset × layer sweep: the same seeded [`FaultPlan`]s
/// replayed at every abstraction level, reporting what robustness costs.
///
/// [`FaultPlan`]: hierbus_ec::FaultPlan
fn fault_ablation(db: &std::sync::Arc<CharacterizationDb>) {
    use hierbus::harness::fault as fh;
    use hierbus_ec::{FaultParams, FaultPlan, RetryPolicy, TxnOutcome};

    const PRESETS: [&str; 5] = [
        "clean",
        "errors+retry",
        "errors_no_retry",
        "stalls",
        "tear@50%",
    ];
    const LAYERS: [&str; 3] = ["gate", "layer1", "layer2"];
    const SEED: u64 = 0xFA57;

    let mix = random_mix(
        SEED,
        MixParams {
            count: 400,
            ..MixParams::default()
        },
    );
    // Transient errors (recoverable inside a 3-retry budget) and pure
    // stall plans, both reproducible from the printed seed.
    let error_plan = FaultPlan::random(
        SEED,
        mix.ops.len(),
        FaultParams {
            fault_pct: 20,
            error_pct: 100,
            ..FaultParams::default()
        },
    );
    let stall_plan = FaultPlan::random(
        SEED,
        mix.ops.len(),
        FaultParams {
            fault_pct: 20,
            error_pct: 0,
            ..FaultParams::default()
        },
    );
    let clean_cycles = fh::run_reference(&mix, &FaultPlan::new(), RetryPolicy::NONE).cycles;
    let tear_plan = FaultPlan::new().with_tear(clean_cycles / 2);
    let setup = |preset: &str| -> (FaultPlan, RetryPolicy) {
        match preset {
            "clean" => (FaultPlan::new(), RetryPolicy::NONE),
            "errors+retry" => (error_plan.clone(), RetryPolicy::retries(3)),
            "errors_no_retry" => (error_plan.clone(), RetryPolicy::NONE),
            "stalls" => (stall_plan.clone(), RetryPolicy::NONE),
            "tear@50%" => (tear_plan.clone(), RetryPolicy::NONE),
            other => unreachable!("unknown preset {other}"),
        }
    };

    // Captured before the campaign closure takes `setup` and `mix`.
    let attr_mix = mix.clone();
    let attr_setups: Vec<(FaultPlan, RetryPolicy)> = PRESETS.iter().map(|p| setup(p)).collect();

    let matrix = Matrix::new().axis("fault", PRESETS).axis("layer", LAYERS);
    let workers = hierbus_campaign::worker_count(None);
    let runner_db = std::sync::Arc::clone(db);
    let report = hierbus_campaign::run(
        &matrix,
        &CampaignOptions::with_workers("fault-ablation", workers),
        move |point| {
            let (plan, policy) = setup(PRESETS[point.coords[0]]);
            let run = match LAYERS[point.coords[1]] {
                "gate" => fh::run_reference(&mix, &plan, policy),
                "layer1" => fh::run_layer1(&mix, &runner_db, &plan, policy),
                "layer2" => fh::run_layer2(&mix, &runner_db, &plan, policy),
                other => unreachable!("unknown layer {other}"),
            };
            let count = |f: &dyn Fn(&TxnOutcome) -> bool| {
                run.outcomes.iter().filter(|o| f(o)).count() as f64
            };
            FaultCell {
                cycles: run.cycles as f64,
                energy_pj: run.energy_pj,
                ok: count(&|o| o.is_ok()),
                errors: count(&|o| matches!(o, TxnOutcome::Error(_))),
                aborted: count(&|o| matches!(o, TxnOutcome::Aborted)),
                retried: run.counters.retried as f64,
            }
        },
    )
    .expect("manifest-less campaign cannot fail on I/O");
    eprintln!(
        "fault campaign: {} cells in {:.2?} ({} workers)",
        report.stats.total, report.stats.wall, report.stats.workers
    );
    for (i, w) in report.stats.per_worker.iter().enumerate() {
        eprintln!(
            "  worker {i}: {} claimed, {} completed, {:.0}% busy",
            w.claimed,
            w.completed,
            100.0 * w.utilization(report.stats.wall)
        );
    }
    let cell = |preset: usize, layer: usize| -> &FaultCell {
        report.results[preset * LAYERS.len() + layer]
            .as_ref()
            .expect("complete campaign")
    };

    let mut table = TextTable::new([
        "fault preset",
        "layer",
        "cycles",
        "energy pJ",
        "ok/err/abort",
        "retries",
    ]);
    for (p, preset) in PRESETS.iter().enumerate() {
        for (l, layer) in LAYERS.iter().enumerate() {
            let c = cell(p, l);
            table.row([
                if l == 0 {
                    preset.to_string()
                } else {
                    String::new()
                },
                layer.to_string(),
                format!("{:.0}", c.cycles),
                format!("{:.0}", c.energy_pj),
                format!("{:.0}/{:.0}/{:.0}", c.ok, c.errors, c.aborted),
                format!("{:.0}", c.retried),
            ]);
        }
    }
    println!("Ablation 6 — robustness under injected faults (seed {SEED:#x}):\n");
    println!("{}", table.render());
    let clean = cell(0, 0);
    let retry = cell(1, 0);
    println!(
        "  recovering all {} transient errors cost {} extra cycles and {} of the\n\
         \x20 clean run's energy (gate level, retry budget 3, backoff 2/4/8)",
        retry.retried,
        retry.cycles - clean.cycles,
        pct((retry.energy_pj - clean.energy_pj) / clean.energy_pj)
    );

    // Where the fault overhead lands: the layer-1 attribution ledger
    // splits each preset's energy by bus phase, so retries (replayed
    // address+data phases) and stalls (wait-state idle) separate.
    let mut attr = TextTable::new([
        "fault preset",
        "energy pJ",
        "address",
        "read",
        "write",
        "idle",
    ]);
    for (preset, (plan, policy)) in PRESETS.iter().zip(&attr_setups) {
        let run = fh::run_layer1_attributed(&attr_mix, db, plan, *policy);
        let total = run.ledger.total_pj();
        let mut row = vec![preset.to_string(), format!("{total:.0}")];
        for (_, pj) in run.ledger.phase_totals() {
            row.push(format!("{:.1}%", 100.0 * pj / total));
        }
        attr.row(row);
    }
    println!("\n  Layer-1 energy attribution by bus phase per preset:\n");
    println!("{}", attr.render());
}
