//! Steady-state serving benchmark for the `hierbus-serve` daemon.
//!
//! Drives in-process protocol sessions against a [`Daemon`] at 1/2/4
//! workers and measures, per worker count:
//!
//! - `cold_ms` — wall-clock of one `run` request whose scenarios all
//!   miss the result cache (best of a few fresh seed blocks),
//! - `warm_ms` — the same request resubmitted against the warm cache
//!   (every scenario replays byte-identically, no worker touched),
//! - `warm_telemetry_ms` — the same warm request against a daemon with
//!   the full telemetry plane armed (request tracing, info-level event
//!   log, SLO window, watchdog),
//! - `warm_speedup` — cold over warm,
//! - `requests_per_s` — sustained throughput over a pipelined session
//!   of distinct-seed (all-miss) requests.
//!
//! The numbers land in the `serve` section of `BENCH_throughput.json`,
//! where `check_throughput` gates warm latency strictly below cold —
//! the content-addressed cache visibly paying off — and the telemetry
//! warm latency within a few percent of the plain one, pinning the
//! telemetry plane's request-path overhead.
//!
//! Run with `cargo run --release -p hierbus-bench --bin serve_bench`.

use hierbus::harness;
use hierbus::serve::{Daemon, DaemonOptions, ScenarioSpec};
use hierbus_bench::{TextTable, THROUGHPUT_JSON};
use hierbus_campaign::Json;
use hierbus_ec::MixParams;
use hierbus_obs::telemetry::Level;
use std::io::Cursor;
use std::time::{Duration, Instant};

/// Scenarios per `run` request.
const SCENARIOS: u64 = 16;
/// Operations per random-mix scenario.
const OPS: u64 = 200;
/// Fresh seed blocks tried for the cold measurement (best-of).
const COLD_REPS: u64 = 3;
/// Warm resubmissions (best-of).
const WARM_REPS: usize = 5;
/// Distinct-seed requests in the sustained-throughput session.
const SUSTAINED_REQUESTS: u64 = 8;

/// One protocol `run` line over `SCENARIOS` mixes seeded from `base`.
fn run_line(id: &str, base: u64) -> String {
    let specs: Vec<Json> = (0..SCENARIOS)
        .map(|i| {
            ScenarioSpec::Mix {
                seed: base + i,
                params: MixParams {
                    count: OPS as usize,
                    ..MixParams::default()
                },
                waits: None,
            }
            .to_json()
        })
        .collect();
    Json::Obj(vec![
        ("v".to_owned(), Json::Num(1.0)),
        ("id".to_owned(), Json::Str(id.to_owned())),
        ("op".to_owned(), Json::Str("run".to_owned())),
        ("scenarios".to_owned(), Json::Arr(specs)),
    ])
    .to_string_compact()
}

/// Runs one session over in-memory buffers and returns its wall clock
/// plus the cache hits it scored.
fn timed_session(daemon: &Daemon, script: String) -> (Duration, u64) {
    let mut sink = Vec::new();
    let t0 = Instant::now();
    let summary = daemon
        .serve(Cursor::new(script), &mut sink)
        .expect("in-memory session");
    (t0.elapsed(), summary.cache_hits)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let db = harness::shared_db();
    println!(
        "Daemon serving latency ({SCENARIOS} x {OPS}-op mixes per request, db {})\n",
        hierbus::serve::db_fingerprint(&db)
    );

    let mut table = TextTable::new([
        "workers",
        "cold ms",
        "warm ms",
        "warm+tel ms",
        "speedup",
        "req/s",
    ]);
    let mut entries = Vec::new();
    for workers in [1usize, 2, 4] {
        let daemon = Daemon::new(
            db.clone(),
            DaemonOptions {
                workers,
                ..DaemonOptions::default()
            },
        );
        // Cold: fresh seed blocks, everything misses.
        let mut cold = Duration::MAX;
        for rep in 0..COLD_REPS {
            let (wall, hits) = timed_session(&daemon, run_line("cold", rep * 1000));
            assert_eq!(hits, 0, "cold request must not hit the cache");
            cold = cold.min(wall);
        }
        // Warm: resubmit the last cold block; pure cache replay.
        let mut warm = Duration::MAX;
        for _ in 0..WARM_REPS {
            let (wall, hits) = timed_session(&daemon, run_line("warm", (COLD_REPS - 1) * 1000));
            assert_eq!(hits, SCENARIOS, "warm request must replay from cache");
            warm = warm.min(wall);
        }
        // The same warm replay with every telemetry subsystem armed:
        // request tracing, info-level structured log, SLO window, and
        // the watchdog monitor ticking. Tracing is the plane's most
        // expensive piece on the request path, so this is the
        // worst-case per-request cost the check gates.
        let telemetry_daemon = Daemon::new(
            db.clone(),
            DaemonOptions {
                workers,
                trace_requests: 8,
                log_level: Some(Level::Info),
                deadline_ms: 30_000,
                ..DaemonOptions::default()
            },
        );
        let (_, hits) = timed_session(&telemetry_daemon, run_line("fill", (COLD_REPS - 1) * 1000));
        assert_eq!(hits, 0, "fill request populates the telemetry daemon");
        let mut warm_telemetry = Duration::MAX;
        for _ in 0..WARM_REPS {
            let (wall, hits) =
                timed_session(&telemetry_daemon, run_line("warm", (COLD_REPS - 1) * 1000));
            assert_eq!(hits, SCENARIOS, "warm request must replay from cache");
            warm_telemetry = warm_telemetry.min(wall);
        }
        // Sustained: one pipelined session of distinct-seed requests.
        let script: Vec<String> = (0..SUSTAINED_REQUESTS)
            .map(|r| run_line(&format!("s{r}"), 10_000 + r * 1000))
            .collect();
        let (wall, _) = timed_session(&daemon, script.join("\n"));
        let req_per_s = SUSTAINED_REQUESTS as f64 / wall.as_secs_f64();

        table.row([
            workers.to_string(),
            format!("{:.3}", ms(cold)),
            format!("{:.3}", ms(warm)),
            format!("{:.3}", ms(warm_telemetry)),
            format!("{:.1}x", ms(cold) / ms(warm)),
            format!("{req_per_s:.1}"),
        ]);
        entries.push(Json::Obj(vec![
            ("workers".to_owned(), Json::Num(workers as f64)),
            ("cold_ms".to_owned(), Json::Num(ms(cold))),
            ("warm_ms".to_owned(), Json::Num(ms(warm))),
            (
                "warm_telemetry_ms".to_owned(),
                Json::Num(ms(warm_telemetry)),
            ),
            ("warm_speedup".to_owned(), Json::Num(ms(cold) / ms(warm))),
            ("requests_per_s".to_owned(), Json::Num(req_per_s)),
        ]));
    }
    println!("{}", table.render());

    let fields = vec![
        (
            "scenarios_per_request".to_owned(),
            Json::Num(SCENARIOS as f64),
        ),
        ("workers".to_owned(), Json::Arr(entries)),
    ];
    match hierbus_bench::write_throughput_section(
        hierbus_bench::throughput_json_path(),
        "serve",
        fields,
    ) {
        Ok(()) => println!("serving latency appended to {THROUGHPUT_JSON}"),
        Err(e) => eprintln!("warning: could not write {THROUGHPUT_JSON}: {e}"),
    }
}
