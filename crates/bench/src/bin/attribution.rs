//! Energy-attribution ledger + cross-layer divergence report.
//!
//! Runs the evaluation scenarios through all three model layers with
//! attribution enabled, prints per-layer bucket decompositions, and
//! audits RTL↔TLM1 / TLM1↔TLM2 divergence per scenario. Structured
//! artifacts (`attribution_<scenario>.json` / `.folded`) land in
//! `results/obs/`; stdout is deterministic and captured into
//! `results/attribution.txt` by `all_tables`.
//!
//! Run with `cargo run --release -p hierbus-bench --bin attribution`.

use hierbus::harness;
use hierbus::observe;
use hierbus_bench::{pct, TextTable};
use hierbus_obs::{DivergenceAuditor, EnergyLedger};

/// Per-bucket comparison tolerance. The layers diverge by design
/// (Table 2's point is quantifying that), so the report uses a loose
/// relative tolerance and counts how many buckets disagree beyond it
/// rather than expecting zero.
const REL_TOL: f64 = 0.02;

fn phase_row(ledger: &EnergyLedger) -> [String; 6] {
    let total = ledger.total_pj();
    let share = |pj: f64| {
        if total > 0.0 {
            format!("{:.1}%", 100.0 * pj / total)
        } else {
            "-".to_owned()
        }
    };
    let [addr, rd, wr, idle] = ledger.phase_totals().map(|(_, pj)| pj);
    [
        ledger.layer().to_owned(),
        format!("{total:.1}"),
        share(addr),
        share(rd),
        share(wr),
        share(idle),
    ]
}

fn main() {
    println!("Characterizing on the training set (gate-level run)...\n");
    let db = harness::standard_db();
    let auditor = DivergenceAuditor::new(REL_TOL, 1e-9);
    let dir = observe::default_dir();
    let mut artifacts: Vec<String> = Vec::new();

    for scenario in &harness::evaluation_scenarios() {
        let run = observe::run_observed(scenario, &db);
        println!("== {} ==\n", scenario.name);

        let mut phases = TextTable::new(["layer", "total pJ", "address", "read", "write", "idle"]);
        for ledger in &run.ledgers {
            phases.row(phase_row(ledger));
        }
        println!("Phase attribution (share of layer total):\n");
        println!("{}", phases.render());

        let mut top = TextTable::new(["layer", "slave", "phase", "class", "pJ", "share"]);
        for ledger in &run.ledgers {
            let total = ledger.total_pj();
            for (key, pj) in ledger.top(3) {
                top.row([
                    ledger.layer().to_owned(),
                    key.slave.clone(),
                    key.phase.name().to_owned(),
                    key.class_name().to_owned(),
                    format!("{pj:.1}"),
                    pct(pj / total),
                ]);
            }
        }
        println!("Top buckets per layer:\n");
        println!("{}", top.render());

        let rtl_tlm1 = auditor.audit_ledgers(&run.ledgers[0], &run.ledgers[1]);
        let tlm1_tlm2 = auditor.audit_ledgers(&run.ledgers[1], &run.ledgers[2]);
        for (pair, audit) in [("rtl<->tlm1", &rtl_tlm1), ("tlm1<->tlm2", &tlm1_tlm2)] {
            match &audit.worst {
                Some(w) => println!(
                    "{pair}: {}/{} buckets beyond {:.0}% — worst {} ({:.1} vs {:.1} pJ)",
                    audit.divergent,
                    audit.checked,
                    100.0 * REL_TOL,
                    w.key.folded_key(),
                    w.a_pj,
                    w.b_pj
                ),
                None => println!(
                    "{pair}: {}/{} buckets beyond {:.0}% — within tolerance",
                    audit.divergent,
                    audit.checked,
                    100.0 * REL_TOL
                ),
            }
        }
        println!();

        match observe::export_attribution(&run, &dir, &auditor) {
            Ok((json, folded)) => {
                artifacts.push(json.display().to_string());
                artifacts.push(folded.display().to_string());
            }
            Err(e) => eprintln!("warning: could not write results/obs artifacts: {e}"),
        }
    }

    println!("Attribution artifacts:");
    for a in &artifacts {
        println!("  {a}");
    }
    println!(
        "\nExpected shape: RTL and TLM1 attribute the same cycles, so\n\
         their phase shares track each other and the rtl<->tlm1 report\n\
         localizes the layer-1 underestimate (Table 2's -8%) to the\n\
         data-phase buckets; TLM2 prices whole phases from the\n\
         characterization averages, so its address share is traffic-\n\
         independent and it books no idle at all."
    );
}
