//! Schema gate for `results/obs/scaling_audit.json` — part of the
//! `ci.sh` staleness checks.
//!
//! The audit artifact is wall-clock based, so its *numbers* are not
//! regression-diffed — but its *shape* is load-bearing for anyone
//! scripting against it, and its arithmetic contract
//! (`serial + imbalance + contention + residual = loss` at every worker
//! count, within 10% of the measured gap) is what makes the
//! decomposition trustworthy. This binary verifies `schema_version` 1,
//! the fitted serial fraction in `[0, 1]`, a non-empty `workers` array
//! whose entries carry every decomposition field, and the sum contract.
//! Exits non-zero naming the first violation.
//!
//! Run with `cargo run --release -p hierbus-bench --bin
//! check_scaling_audit` after the `scaling_audit` binary has written
//! the artifact.

use hierbus_campaign::Json;
use std::process::ExitCode;

const POINT_FIELDS: &[&str] = &[
    "workers",
    "wall_ns",
    "scenarios_per_s",
    "efficiency",
    "loss",
    "serial_loss",
    "imbalance_loss",
    "contention_loss",
    "residual_loss",
    "busy_frac",
    "balance",
    "claim_retries",
    "db_accesses",
    "allocations",
];

const PHASE_FIELDS: &[&str] = &[
    "claim",
    "db_access",
    "simulate",
    "serialize",
    "merge_wait",
    "idle",
    "merge",
];

const PERCENTILE_FIELDS: &[&str] = &["p50", "p90", "p99"];

fn field(entry: &Json, i: usize, name: &str) -> Result<f64, String> {
    entry
        .get(name)
        .and_then(Json::as_f64)
        .ok_or(format!("workers[{i}]: missing or non-numeric field {name}"))
}

fn check(root: &Json) -> Result<(), String> {
    let version = root
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version".to_owned())?;
    if version != 1 {
        return Err(format!("unsupported schema_version {version}"));
    }
    root.get("campaign")
        .and_then(Json::as_str)
        .ok_or("missing campaign".to_owned())?;
    root.get("scenarios")
        .and_then(Json::as_u64)
        .ok_or("missing scenarios count".to_owned())?;
    let serial = root
        .get("serial_fraction")
        .and_then(Json::as_f64)
        .ok_or("missing serial_fraction".to_owned())?;
    if !(0.0..=1.0).contains(&serial) {
        return Err(format!("serial_fraction {serial} outside [0, 1]"));
    }
    let workers = root
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("missing workers array".to_owned())?;
    if workers.is_empty() {
        return Err("empty workers array".to_owned());
    }
    for (i, entry) in workers.iter().enumerate() {
        for name in POINT_FIELDS {
            field(entry, i, name)?;
        }
        let phases = entry
            .get("phase_ns")
            .ok_or(format!("workers[{i}]: missing phase_ns section"))?;
        for name in PHASE_FIELDS {
            phases.get(name).and_then(Json::as_u64).ok_or(format!(
                "workers[{i}]: phase_ns missing or non-numeric field {name}"
            ))?;
        }
        let chunks = entry
            .get("chunk_latency_ns")
            .ok_or(format!("workers[{i}]: missing chunk_latency_ns section"))?;
        for name in PERCENTILE_FIELDS {
            chunks.get(name).and_then(Json::as_u64).ok_or(format!(
                "workers[{i}]: chunk_latency_ns missing or non-numeric field {name}"
            ))?;
        }
        // The decomposition contract: the attributed shares plus the
        // residual must reconstruct the measured efficiency gap.
        let loss = field(entry, i, "loss")?;
        let sum = field(entry, i, "serial_loss")?
            + field(entry, i, "imbalance_loss")?
            + field(entry, i, "contention_loss")?
            + field(entry, i, "residual_loss")?;
        if (sum - loss).abs() > (0.1 * loss.abs()).max(1e-9) {
            return Err(format!(
                "workers[{i}]: decomposition sums to {sum} but loss says {loss}"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::path::Path::new("results/obs/scaling_audit.json");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_scaling_audit: cannot read {}: {e}", path.display());
            eprintln!("regenerate with: cargo run --release -p hierbus-bench --bin scaling_audit");
            return ExitCode::FAILURE;
        }
    };
    let root = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!(
                "check_scaling_audit: {} is not valid JSON: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    match check(&root) {
        Ok(()) => {
            println!("check_scaling_audit: {} schema OK", path.display());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("check_scaling_audit: {}: {msg}", path.display());
            eprintln!("regenerate with: cargo run --release -p hierbus-bench --bin scaling_audit");
            ExitCode::FAILURE
        }
    }
}
