//! The automated scaling audit: runs the bus-level characterization
//! campaign at 1/2/4 workers with the pool profiler on, decomposes the
//! efficiency loss at each worker count into serial / imbalance /
//! contention / residual shares, and writes
//! `results/obs/scaling_audit.json` (schema_version 1, validated by
//! `check_scaling_audit`) plus one multi-track Perfetto trace per
//! worker count (`scaling_audit_w{N}.trace.json`).
//!
//! The binary installs the counting global allocator so the per-worker
//! allocation counters in the audit are real, not zero.
//!
//! Run with `cargo run --release -p hierbus-bench --bin scaling_audit`
//! (append `--smoke` for the fast CI shape: fewer seeds, shorter
//! mixes — same schema, noisier numbers).

use hierbus::harness;
use hierbus::observe;
use hierbus_bench::TextTable;
use hierbus_campaign::{CampaignPayload, ClaimStrategy, Json, Matrix};
use hierbus_ec::sequences::{random_mix, MixParams};
use hierbus_obs::profiling::{scaling_audit, AuditInput, CountingAlloc};
use std::path::Path;
use std::process::ExitCode;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// One cell of the audited campaign: a seeded random mix through the
/// lean layer-1 session.
struct MixCell {
    cycles: u64,
    energy_pj: f64,
}

impl CampaignPayload for MixCell {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles".to_owned(), Json::Num(self.cycles as f64)),
            ("energy_pj".to_owned(), Json::Num(self.energy_pj)),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        Some(MixCell {
            cycles: json.get("cycles")?.as_u64()?,
            energy_pj: json.get("energy_pj")?.as_f64()?,
        })
    }
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seed_count, txns) = if smoke { (8u64, 200) } else { (16u64, 1_000) };

    let seeds: Vec<u64> = (0..seed_count).map(|i| 0xBE9C + 0x101 * i).collect();
    let matrix = Matrix::new().axis("seed", seeds.iter().map(|s| format!("{s:#06x}")));
    let scenarios: Vec<_> = seeds
        .iter()
        .map(|&s| {
            random_mix(
                s,
                MixParams {
                    count: txns,
                    read_pct: 50,
                    burst_pct: 40,
                    fetch_pct: 30,
                    max_idle: 0,
                    ..MixParams::default()
                },
            )
        })
        .collect();
    let db = harness::standard_db();

    let points =
        hierbus_campaign::measure_scaling_profiled::<harness::Layer1LeanSession, MixCell, _, _>(
            &matrix,
            "scaling_audit_bus",
            &WORKER_COUNTS,
            ClaimStrategy::Chunked,
            true,
            || harness::Layer1LeanSession::new(&db),
            |session, point| {
                let run = session.run(&scenarios[point.coords[0]]);
                MixCell {
                    cycles: run.cycles,
                    energy_pj: run.energy_pj,
                }
            },
        );

    let inputs: Vec<AuditInput> = points
        .iter()
        .map(|p| AuditInput {
            workers: p.workers,
            wall_ns: p.wall.as_nanos() as u64,
            scenarios_per_sec: p.scenarios_per_sec,
            profile: p
                .profile
                .clone()
                .expect("measure_scaling_profiled(profile=true) always attaches a profile"),
        })
        .collect();
    let audit = scaling_audit("scaling_audit_bus", seeds.len(), &inputs);

    let dir = observe::default_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("scaling_audit: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let json_path = dir.join("scaling_audit.json");
    if let Err(e) = std::fs::write(&json_path, audit.to_json()) {
        eprintln!("scaling_audit: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    for input in &inputs {
        let name = format!("scaling_audit_w{}", input.workers);
        if let Err(e) = observe::export_pool_profile(&input.profile, Path::new(&dir), &name) {
            eprintln!("scaling_audit: cannot export {name}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut table = TextTable::new([
        "workers",
        "wall",
        "scen/s",
        "efficiency",
        "loss",
        "serial",
        "imbalance",
        "contention",
        "residual",
        "balance",
        "retries",
        "chunk p50/p99",
    ]);
    for p in &audit.points {
        table.row([
            p.workers.to_string(),
            format!("{:.2?}", std::time::Duration::from_nanos(p.wall_ns)),
            format!("{:.1}", p.scenarios_per_sec),
            pct(p.efficiency),
            pct(p.loss),
            pct(p.serial_loss),
            pct(p.imbalance_loss),
            pct(p.contention_loss),
            pct(p.residual_loss),
            format!("{:.2}", p.balance),
            p.claim_retries.to_string(),
            format!(
                "{:.1}/{:.1}µs",
                p.chunk_p50_ns as f64 / 1_000.0,
                p.chunk_p99_ns as f64 / 1_000.0
            ),
        ]);
    }
    println!(
        "scaling audit ({} bus scenarios per run, Amdahl serial fraction {:.3}):\n",
        seeds.len(),
        audit.serial_fraction
    );
    println!("{}", table.render());
    println!("audit written to {}", json_path.display());
    ExitCode::SUCCESS
}
