//! **Table 2** — energy-estimation error of the hierarchical models
//! against the gate-level estimator.
//!
//! Paper values (relative to gate level = 100): layer 1 = 92.1 (−7.8 %),
//! layer 2 = 114.7 (+14.7 %). Run with
//! `cargo run -p hierbus-bench --bin table2_energy`.

use hierbus::harness;
use hierbus_bench::{pct, TextTable};

fn main() {
    println!("Characterizing on the training set (gate-level run)...");
    let db = harness::standard_db();
    println!("{db}\n");

    let scenarios = harness::evaluation_scenarios();
    let mut per_scenario =
        TextTable::new(["scenario", "gate pJ", "L1 pJ", "L1 err", "L2 pJ", "L2 err"]);
    let mut totals = (0.0f64, 0.0f64, 0.0f64);
    for scenario in &scenarios {
        let r = harness::run_reference(scenario, false);
        let l1 = harness::run_layer1(scenario, &db);
        let l2 = harness::run_layer2(scenario, &db, false);
        per_scenario.row([
            scenario.name.to_owned(),
            format!("{:.1}", r.energy_pj),
            format!("{:.1}", l1.energy_pj),
            pct((l1.energy_pj - r.energy_pj) / r.energy_pj),
            format!("{:.1}", l2.energy_pj),
            pct((l2.energy_pj - r.energy_pj) / r.energy_pj),
        ]);
        totals.0 += r.energy_pj;
        totals.1 += l1.energy_pj;
        totals.2 += l2.energy_pj;
    }
    println!("Per-scenario energy (suite + sequential mix):\n");
    println!("{}", per_scenario.render());

    let (r, l1, l2) = totals;
    let mut table2 = TextTable::new(["abstraction level", "energy", "error"]);
    table2.row([
        "gate-level estimation".to_owned(),
        "100".to_owned(),
        "-".to_owned(),
    ]);
    table2.row([
        "TL layer 1 estimation".to_owned(),
        format!("{:.1}", 100.0 * l1 / r),
        pct((l1 - r) / r),
    ]);
    table2.row([
        "TL layer 2 estimation".to_owned(),
        format!("{:.1}", 100.0 * l2 / r),
        pct((l2 - r) / r),
    ]);
    println!("Table 2 — energy estimation error (paper: 100 / 92.1 −7.8% / 114.7 +14.7%):\n");
    println!("{}", table2.render());

    // Export one observed run with the calibrated characterization so
    // the cumulative `energy_pj` counter tracks of all three estimators
    // can be compared side by side in Perfetto.
    let scenario = hierbus::ec::sequences::write_after_read();
    let mut run = hierbus::observe::run_observed(&scenario, &db);
    run.name = "table2_energy".to_owned();
    match hierbus::observe::export(&run, &hierbus::observe::default_dir()) {
        Ok((trace, csv)) => println!(
            "Observability artifacts:\n  {}\n  {}",
            trace.display(),
            csv.display()
        ),
        Err(e) => eprintln!("warning: could not write results/obs artifacts: {e}"),
    }
}
