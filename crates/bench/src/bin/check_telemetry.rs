//! Schema gate for the serve telemetry plane — part of the `ci.sh`
//! checks.
//!
//! Drives one fully-armed in-process daemon session (request tracing,
//! debug-level event log, subscription, watchdog, metrics file) through
//! the v2 protocol and validates every externally-consumed surface:
//!
//! - the Prometheus text exposition (`--metrics-file` content): every
//!   family declared with `# TYPE`, histogram bucket series cumulative
//!   and ending at the `+Inf` bucket equal to `_count`,
//! - the structured event log: every line JSON with `schema_version` 1
//!   and strictly monotone `seq`,
//! - the protocol events: `done` carrying its trace id, the `subscribe`
//!   ack snapshot with health and rolling-window fields, `health`
//!   answering `ok`, and `dump-trace` writing non-empty trace files
//!   whose spans carry the request's trace id.
//!
//! Exits non-zero with a description of the first violation. Run with
//! `cargo run --release -p hierbus-bench --bin check_telemetry`.

use hierbus::harness;
use hierbus::serve::{Daemon, DaemonOptions};
use hierbus_campaign::Json;
use hierbus_obs::telemetry::Level;
use std::io::Cursor;
use std::process::ExitCode;

fn field<'a>(event: &'a Json, name: &str) -> Result<&'a Json, String> {
    event
        .get(name)
        .ok_or_else(|| format!("event missing field {name}: {}", event.to_string_compact()))
}

fn find<'a>(events: &'a [Json], name: &str) -> Result<&'a Json, String> {
    events
        .iter()
        .find(|e| e.get("event").and_then(Json::as_str) == Some(name))
        .ok_or_else(|| format!("no {name} event in the session output"))
}

/// One histogram family of the exposition must be cumulative and
/// consistent: bucket counts nondecreasing, `+Inf` bucket == `_count`.
fn check_histogram(text: &str, name: &str) -> Result<(), String> {
    if !text.contains(&format!("# TYPE {name} histogram")) {
        return Err(format!("exposition missing '# TYPE {name} histogram'"));
    }
    let mut last = 0u64;
    let mut inf = None;
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&format!("{name}_bucket{{le=\"")) else {
            continue;
        };
        let (le, count) = rest
            .split_once("\"} ")
            .ok_or_else(|| format!("malformed bucket line: {line}"))?;
        let count: u64 = count
            .parse()
            .map_err(|e| format!("bucket count in {line:?}: {e}"))?;
        if count < last {
            return Err(format!("{name} buckets are not cumulative at le={le}"));
        }
        last = count;
        if le == "+Inf" {
            inf = Some(count);
        }
    }
    let inf = inf.ok_or_else(|| format!("{name} has no +Inf bucket"))?;
    let count_line = format!("{name}_count ");
    let total: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix(&count_line))
        .ok_or_else(|| format!("{name} has no _count sample"))?
        .parse()
        .map_err(|e| format!("{name}_count: {e}"))?;
    if total != inf {
        return Err(format!(
            "{name}_count {total} disagrees with its +Inf bucket {inf}"
        ));
    }
    if !text.contains(&format!("{name}_sum ")) {
        return Err(format!("{name} has no _sum sample"));
    }
    Ok(())
}

fn check(dir: &std::path::Path) -> Result<(), String> {
    let metrics_file = dir.join("serve.prom");
    let daemon = Daemon::new(
        harness::shared_db(),
        DaemonOptions {
            workers: 2,
            trace_requests: 8,
            trace_dir: Some(dir.to_path_buf()),
            log_level: Some(Level::Debug),
            metrics_file: Some(metrics_file.clone()),
            deadline_ms: 30_000,
            ..DaemonOptions::default()
        },
    );
    let script = [
        r#"{"v":2,"id":"sub","op":"subscribe","every_ms":60000}"#,
        r#"{"v":2,"id":"r1","op":"run","scenarios":[{"kind":"named","name":"burst_reads"},{"kind":"mix","seed":7,"count":60}]}"#,
        r#"{"v":2,"id":"h","op":"health"}"#,
        r#"{"v":2,"id":"d","op":"dump-trace"}"#,
        r#"{"v":2,"id":"s","op":"stats"}"#,
    ]
    .join("\n");
    let mut output = Vec::new();
    daemon
        .serve(Cursor::new(script), &mut output)
        .map_err(|e| format!("session failed: {e}"))?;
    let events: Vec<Json> = String::from_utf8(output)
        .map_err(|e| format!("non-utf8 output: {e}"))?
        .lines()
        .map(|l| Json::parse(l).map_err(|e| format!("response line is not JSON: {e}: {l}")))
        .collect::<Result<_, _>>()?;

    // Protocol surface: trace-tagged done, snapshot, health, stats.
    let done = find(&events, "done")?;
    let trace_id = field(done, "trace")?
        .as_str()
        .ok_or("done trace id is not a string")?
        .to_owned();
    let snapshot = find(&events, "snapshot")?;
    for name in ["health", "win_requests", "cache_occupancy", "queue_depth"] {
        field(snapshot, name)?;
    }
    let health = find(&events, "health")?;
    if field(health, "status")?.as_str() != Some("ok") {
        return Err(format!(
            "idle daemon reports unhealthy: {}",
            health.to_string_compact()
        ));
    }
    let stats = find(&events, "stats")?;
    for name in [
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "cache_occupancy",
        "single_scenarios",
        "multi_scenarios",
        "watchdog_stalls",
        "watchdog_idle",
        "flush_failures",
        "win_hit_ratio",
        "win_total_p99_us",
        "health_reasons",
    ] {
        field(stats, name)?;
    }

    // The dumped trace: non-empty, request-connected.
    let traces = find(&events, "traces")?;
    let files = field(traces, "files")?
        .as_arr()
        .ok_or("traces files is not an array")?;
    if files.is_empty() {
        return Err("dump-trace wrote no files".to_owned());
    }
    for file in files {
        let path = file.as_str().ok_or("trace file path is not a string")?;
        let contents = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        if !contents.contains(&format!(r#""trace":"{trace_id}""#)) {
            return Err(format!("{path} has no spans tagged with {trace_id}"));
        }
        for span in ["queued", "cache-check", "execute", "serialize"] {
            if !contents.contains(&format!(r#""name":"{span}""#)) {
                return Err(format!("{path} is missing the daemon {span} span"));
            }
        }
        if !contents.contains(r#""cat":"bus""#) {
            return Err(format!("{path} has no model-layer spans"));
        }
    }

    // The event log: schema-versioned JSONL with monotone sequencing.
    let jsonl = daemon.telemetry_jsonl();
    if jsonl.is_empty() {
        return Err("event log captured nothing at debug level".to_owned());
    }
    let mut last_seq = None;
    for line in jsonl.lines() {
        let event = Json::parse(line).map_err(|e| format!("event log line not JSON: {e}"))?;
        if field(&event, "schema_version")?.as_u64() != Some(1) {
            return Err(format!("event log schema_version is not 1: {line}"));
        }
        let seq = field(&event, "seq")?
            .as_u64()
            .ok_or_else(|| format!("non-integer seq: {line}"))?;
        if last_seq.is_some_and(|prev| seq <= prev) {
            return Err(format!("event log seq not strictly monotone at {line}"));
        }
        last_seq = Some(seq);
        for name in ["ts_us", "level", "event", "fields"] {
            field(&event, name)?;
        }
    }
    for needle in ["session.start", "request.done", "session.end"] {
        if !jsonl.contains(&format!(r#""event":"{needle}""#)) {
            return Err(format!("event log is missing the {needle} event"));
        }
    }

    // The Prometheus exposition: final session-end rewrite on disk
    // matches the in-memory registry and is structurally sound.
    let text = std::fs::read_to_string(&metrics_file)
        .map_err(|e| format!("reading {}: {e}", metrics_file.display()))?;
    if text != daemon.metrics_prometheus() {
        return Err("metrics file is stale against the registry".to_owned());
    }
    for family in ["serve_requests", "serve_cache_hit", "serve_cache_miss"] {
        if !text.contains(&format!("# TYPE {family} counter")) {
            return Err(format!("exposition missing '# TYPE {family} counter'"));
        }
    }
    if !text.contains("# TYPE serve_queue_depth gauge") {
        return Err("exposition missing the queue-depth gauge".to_owned());
    }
    for hist in [
        "serve_request_latency_us",
        "serve_queue_wait_us",
        "serve_execute_us",
    ] {
        check_histogram(&text, hist)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let dir = std::env::temp_dir().join(format!("hierbus_check_telemetry_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("check_telemetry: creating {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let result = check(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(()) => {
            println!("check_telemetry: traces, event log and exposition OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("check_telemetry: {msg}");
            ExitCode::FAILURE
        }
    }
}
