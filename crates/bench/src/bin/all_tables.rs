//! Convenience runner: regenerates every table and figure in one go,
//! writing each binary's output to `results/<name>.txt` (and echoing to
//! stdout). The binaries run as a campaign on the `hierbus-campaign`
//! engine — `CAMPAIGN_WORKERS=N` regenerates up to N tables
//! concurrently, and the echoed/written output is merged in the fixed
//! table order either way.
//! `cargo run --release -p hierbus-bench --bin all_tables`.

use hierbus_campaign::{CampaignOptions, CampaignPayload, Json, Matrix};
use std::fs;
use std::process::Command;

const BINARIES: [&str; 7] = [
    "table1_timing",
    "table2_energy",
    "table3_simperf",
    "fig6_sampling",
    "explore_jcvm",
    "ablations",
    "attribution",
];

/// One regenerated table: the binary's name and its stdout.
struct TableOutput {
    name: String,
    text: String,
}

impl CampaignPayload for TableOutput {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("text".to_owned(), Json::Str(self.text.clone())),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        Some(TableOutput {
            name: json.get("name")?.as_str()?.to_owned(),
            text: json.get("text")?.as_str()?.to_owned(),
        })
    }
}

fn main() {
    let results = hierbus_bench::results_dir(None).expect("create results directory");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin directory")
        .to_path_buf();
    let matrix = Matrix::new().axis("table", BINARIES);
    let workers = hierbus_campaign::worker_count(None);
    let report = hierbus_campaign::run(
        &matrix,
        &CampaignOptions::with_workers("all_tables", workers),
        |point| {
            let name = BINARIES[point.coords[0]];
            let output = Command::new(exe_dir.join(name))
                .output()
                .unwrap_or_else(|e| panic!("running {name}: {e}"));
            assert!(
                output.status.success(),
                "{name} failed:\n{}",
                String::from_utf8_lossy(&output.stderr)
            );
            TableOutput {
                name: name.to_owned(),
                text: String::from_utf8_lossy(&output.stdout).into_owned(),
            }
        },
    )
    .expect("manifest-less campaign cannot fail on I/O");
    eprintln!(
        "campaign: {} tables in {:.2?} ({} workers)",
        report.stats.total, report.stats.wall, report.stats.workers
    );
    for (_, table) in report.completed() {
        println!("==== {} ====", table.name);
        println!("{}", table.text);
        fs::write(results.join(format!("{}.txt", table.name)), &table.text)
            .unwrap_or_else(|e| panic!("writing results/{}.txt: {e}", table.name));
    }
    println!("wrote results/<name>.txt for: {}", BINARIES.join(", "));
}
