//! Convenience runner: regenerates every table and figure in one go,
//! writing each binary's output to `results/<name>.txt` (and echoing to
//! stdout). `cargo run --release -p hierbus-bench --bin all_tables`.

use std::fs;
use std::process::Command;

const BINARIES: [&str; 6] = [
    "table1_timing",
    "table2_energy",
    "table3_simperf",
    "fig6_sampling",
    "explore_jcvm",
    "ablations",
];

fn main() {
    fs::create_dir_all("results").expect("create results directory");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin directory")
        .to_path_buf();
    for name in BINARIES {
        println!("==== {name} ====");
        let output = Command::new(exe_dir.join(name))
            .output()
            .unwrap_or_else(|e| panic!("running {name}: {e}"));
        assert!(
            output.status.success(),
            "{name} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let text = String::from_utf8_lossy(&output.stdout);
        println!("{text}");
        fs::write(format!("results/{name}.txt"), text.as_bytes())
            .unwrap_or_else(|e| panic!("writing results/{name}.txt: {e}"));
    }
    println!("wrote results/<name>.txt for: {}", BINARIES.join(", "));
}
