//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index); this library holds the text
//! table formatter and the workload definitions they share, so the
//! binaries stay small and the numbers stay consistent across tables.

use hierbus_campaign::Json;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "column count mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i];
                if i == 0 {
                    let _ = write!(out, "{cell:<pad$}");
                } else {
                    let _ = write!(out, "  {cell:>pad$}");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') {
                format!("\"{s}\"")
            } else {
                s.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Times `f` over `reps` repetitions and returns the best (minimum)
/// wall-clock duration — the plain-`std` replacement for the old
/// criterion harness, suitable for the coarse throughput comparisons
/// the tables need.
pub fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> std::time::Duration {
    assert!(reps > 0);
    let mut best = std::time::Duration::MAX;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let r = f();
        let dt = t0.elapsed();
        std::hint::black_box(r);
        best = best.min(dt);
    }
    best
}

/// Elements-per-second throughput for a measured duration.
pub fn throughput(elements: u64, dt: std::time::Duration) -> f64 {
    elements as f64 / dt.as_secs_f64()
}

/// Returns the results directory (optionally a subdirectory of it),
/// created if missing — the one place every table binary goes through
/// for its output files.
///
/// # Errors
///
/// Any I/O error from creating the directory.
pub fn results_dir(sub: Option<&str>) -> std::io::Result<PathBuf> {
    let mut dir = PathBuf::from("results");
    if let Some(sub) = sub {
        dir.push(sub);
    }
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// The machine-readable perf trajectory file, written at the repo root
/// so future PRs can diff throughput across revisions.
pub const THROUGHPUT_JSON: &str = "BENCH_throughput.json";

/// Absolute location of [`THROUGHPUT_JSON`]: the nearest ancestor
/// directory holding a `Cargo.lock` (the workspace root, whether the
/// writer runs as a bin from the repo root or as a bench with the
/// package directory as cwd), falling back to the current directory.
pub fn throughput_json_path() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(THROUGHPUT_JSON);
        }
        if !dir.pop() {
            return PathBuf::from(THROUGHPUT_JSON);
        }
    }
}

/// Merges `section` into the top-level object of `path` (read-modify-
/// write; other sections are preserved, an unreadable or malformed
/// file is replaced). Keys inside the section come from the caller in
/// a deterministic order.
///
/// # Errors
///
/// Any I/O error from writing the file.
pub fn write_throughput_section(
    path: impl AsRef<Path>,
    section: &str,
    fields: Vec<(String, Json)>,
) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .filter(|v| v.as_obj().is_some())
        .unwrap_or(Json::Obj(Vec::new()));
    doc.set(section, Json::Obj(fields));
    std::fs::write(path, doc.to_string_pretty())
}

/// Formats a ratio as a percentage with sign, e.g. `+14.7%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Formats a count with thousands separators (ASCII underscore).
pub fn grouped(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["model", "cycles"]);
        t.row(["layer 1", "100"]);
        t.row(["layer 2", "100.5"]);
        let s = t.render();
        assert!(s.contains("model"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["x,y", "1"]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = TextTable::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn throughput_sections_merge_not_clobber() {
        let dir = std::env::temp_dir().join("hierbus_bench_lib_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(THROUGHPUT_JSON);
        let _ = std::fs::remove_file(&path);
        write_throughput_section(
            &path,
            "layers",
            vec![("tlm1_with_kts".to_owned(), Json::Num(85.3))],
        )
        .unwrap();
        write_throughput_section(
            &path,
            "campaign",
            vec![("workers_1".to_owned(), Json::Num(2.0))],
        )
        .unwrap();
        // Rewriting one section keeps the other.
        write_throughput_section(
            &path,
            "layers",
            vec![("tlm1_with_kts".to_owned(), Json::Num(90.0))],
        )
        .unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("layers")
                .unwrap()
                .get("tlm1_with_kts")
                .unwrap()
                .as_f64(),
            Some(90.0)
        );
        assert_eq!(
            doc.get("campaign")
                .unwrap()
                .get("workers_1")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pct_and_grouped() {
        assert_eq!(pct(0.147), "+14.7%");
        assert_eq!(pct(-0.078), "-7.8%");
        assert_eq!(grouped(1234567), "1_234_567");
        assert_eq!(grouped(42), "42");
    }
}
